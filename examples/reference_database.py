#!/usr/bin/env python
"""Curated reference database: learn once, monitor many endurance tests.

The paper notes that "a curated database of reference traces can be
constituted in order to skip the learning step".  This example shows that
workflow:

1. run a short, known-good decoding session and learn a reference model;
2. store the model in a :class:`~repro.analysis.refdb.ReferenceDatabase`;
3. later (possibly on another machine), load the model by name and monitor a
   new endurance run without re-learning.

Run with::

    python examples/reference_database.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import DetectorConfig, EventTypeRegistry, MonitorConfig, TraceMonitor
from repro.analysis.refdb import ReferenceDatabase
from repro.config import EnduranceConfig, MediaConfig, MonitorConfig as MonCfg, PerturbationConfig
from repro.media.app import EnduranceRun
from repro.trace.stream import TraceStream


def learn_reference_model(registry: EventTypeRegistry):
    """Simulate a short, perturbation-free decoding session and learn from it."""
    config = EnduranceConfig(
        monitor=MonCfg(reference_duration_us=50_000_000),
        media=MediaConfig(duration_s=60.0, seed=11),
        # a single perturbation placed after the part we learn from; the
        # reference windows themselves are clean
        perturbation=PerturbationConfig(start_offset_s=55.0, period_s=120.0, duration_s=4.0),
    )
    trace = EnduranceRun(config).run()
    monitor = TraceMonitor(
        DetectorConfig(k_neighbours=20),
        MonitorConfig(window_duration_us=40_000, reference_duration_us=50_000_000),
        registry,
    )
    reference_windows, _ = trace.stream().split_reference(50_000_000, 40_000)
    return monitor.learn_reference(reference_windows)


def monitor_new_run(database: ReferenceDatabase, registry: EventTypeRegistry) -> None:
    """Monitor a fresh endurance run using the stored model (no learning)."""
    model = database.get("gstreamer-1080p-decode")
    config = EnduranceConfig(
        monitor=MonCfg(reference_duration_us=30_000_000),
        media=MediaConfig(duration_s=240.0, seed=99),
        perturbation=PerturbationConfig(start_offset_s=60.0, period_s=90.0, duration_s=20.0),
    )
    print("simulating a new 240s endurance run ...")
    trace = EnduranceRun(config).run()
    monitor = TraceMonitor(
        DetectorConfig(k_neighbours=20, lof_threshold=1.2),
        MonitorConfig(window_duration_us=40_000),
        registry,
    )
    result = monitor.run_on_stream(TraceStream(iter(trace.events)), model=model)
    report = result.report
    print(f"windows monitored : {result.n_windows} (0 spent on learning)")
    print(f"anomalous windows : {result.n_anomalous}")
    print(f"reduction factor  : {report.reduction_factor:.1f}x")
    flagged_seconds = sorted({int(d.start_us / 1e6) for d in result.anomalous_windows()})
    print(f"flagged seconds   : {flagged_seconds[:20]} ...")
    print("ground-truth perturbations:", [(i.start_s, i.end_s) for i in trace.perturbation_intervals])


def main() -> None:
    registry = EventTypeRegistry.with_default_types()
    with tempfile.TemporaryDirectory() as tmp:
        database = ReferenceDatabase(Path(tmp) / "reference-models")

        print("learning the reference model from a known-good session ...")
        model = learn_reference_model(registry)
        database.add(
            "gstreamer-1080p-decode",
            model,
            description="Healthy 1080p25 decode on one core",
            tags=("video", "single-core"),
            metadata={"window_ms": 40, "k": 20},
        )
        print(f"stored models: {database.names()}")
        print()
        monitor_new_run(database, registry)


if __name__ == "__main__":
    main()
