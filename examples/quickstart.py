#!/usr/bin/env python
"""Quickstart: monitor a trace stream and record only the suspicious windows.

This example uses a small synthetic trace (a regular "decoding" event mix
with two injected anomalous intervals) so it runs in a couple of seconds.
See ``endurance_test.py`` for the full paper experiment on the simulated
MPSoC + GStreamer-like pipeline.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import DetectorConfig, EventTypeRegistry, MonitorConfig, TraceMonitor, TraceStream
from repro.trace.generator import PeriodicTraceGenerator

#: Event mix of a healthy decoding window.
NORMAL_MIX = {
    "mb_row_decode": 10.0,
    "frame_decode_start": 1.0,
    "frame_decode_end": 1.0,
    "frame_display": 1.0,
    "vsync": 1.0,
    "audio_decode": 2.0,
    "buffer_push": 1.0,
    "buffer_pop": 1.0,
    "demux_packet": 1.0,
}

#: Event mix of a starved decoder (what a CPU perturbation produces).
ANOMALY_MIX = {
    **NORMAL_MIX,
    "mb_row_decode": 1.0,
    "frame_display": 0.2,
    "buffer_underrun": 3.0,
    "frame_drop": 2.0,
}


def main() -> None:
    # 1. A trace stream: 60 s of regular decoding with two anomalous bursts.
    generator = PeriodicTraceGenerator(
        NORMAL_MIX,
        ANOMALY_MIX,
        anomaly_intervals=[(25.0, 30.0), (45.0, 48.0)],
        rate_per_s=2_000,
        seed=7,
    )
    stream = TraceStream(generator.events(60.0))

    # 2. A monitor: 40 ms windows, learn the first 10 s, K=20, alpha=1.5
    #    (the synthetic stream is noisier per window than the simulated
    #    pipeline, so a slightly stricter threshold keeps the demo clean).
    monitor = TraceMonitor(
        DetectorConfig(k_neighbours=20, lof_threshold=1.5),
        MonitorConfig(window_duration_us=40_000, reference_duration_us=10_000_000),
        EventTypeRegistry.with_default_types(),
    )

    # 3. Learn + monitor in one call; only anomalous windows are recorded.
    result = monitor.run_on_stream(stream, output_path="quickstart_recorded.jsonl")

    report = result.report
    print(f"monitored windows   : {result.n_windows}")
    print(f"anomalous windows   : {result.n_anomalous}")
    print(f"full trace size     : {report.total_bytes / 1e6:.2f} MB")
    print(f"recorded trace size : {report.recorded_bytes / 1e6:.2f} MB")
    print(f"reduction factor    : {report.reduction_factor:.1f}x")
    print()
    print("first flagged windows (time in seconds, LOF score):")
    for decision in result.anomalous_windows()[:10]:
        print(f"  t={decision.start_us / 1e6:7.2f}s  LOF={decision.lof_score:5.2f}")
    print()
    print("recorded events written to quickstart_recorded.jsonl")


if __name__ == "__main__":
    main()
