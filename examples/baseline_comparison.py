#!/usr/bin/env python
"""Compare the paper's pmf + LOF monitor against naive recording strategies.

The comparison uses one simulated endurance run and evaluates, with the same
ground truth (perturbation intervals + QoS error log):

* the paper's detector (KL gate + LOF against a learned reference),
* random window sampling at the same recording budget,
* periodic sampling (1 window out of N),
* a z-score monitor on the per-window event count,
* the KL gate alone (no LOF).

Run with::

    python examples/baseline_comparison.py
"""

from __future__ import annotations

from repro.analysis.baselines import (
    KlOnlyDetectorBaseline,
    PeriodicSamplingBaseline,
    RandomSamplingBaseline,
    ZScoreBaseline,
    run_baseline,
)
from repro.analysis.labeling import label_windows
from repro.analysis.metrics import compute_metrics
from repro.config import EnduranceConfig
from repro.experiments.endurance import run_endurance_experiment
from repro.experiments.report import format_table
from repro.trace.event import EventTypeRegistry

DURATION_S = 600.0
REFERENCE_S = 180.0


def main() -> None:
    config = EnduranceConfig.scaled_paper_setup(
        duration_s=DURATION_S, reference_s=REFERENCE_S, seed=2024
    )
    print(f"simulating and monitoring a {DURATION_S:.0f}s endurance run ...")
    experiment = run_endurance_experiment(config)
    ground_truth = experiment.ground_truth

    # Re-window the same trace for the baselines.
    reference, live = experiment.trace.stream().split_reference(
        config.monitor.reference_duration_us, config.monitor.window_duration_us
    )
    live = list(live)

    report = experiment.monitor_result.report
    budget = report.recorded_windows / max(report.total_windows, 1)
    baselines = {
        "random sampling": RandomSamplingBaseline(budget_fraction=budget, seed=5),
        "periodic sampling": PeriodicSamplingBaseline(max(1, int(round(1 / budget)))),
        "z-score on event count": ZScoreBaseline(z_threshold=3.0),
        "KL gate only (no LOF)": KlOnlyDetectorBaseline(
            kl_threshold=config.detector.kl_threshold * 4,
            registry=EventTypeRegistry.with_default_types(),
        ),
    }

    rows = [
        [
            "pmf + LOF (paper)",
            experiment.metrics.precision,
            experiment.metrics.recall,
            experiment.metrics.f1,
            report.reduction_factor,
        ]
    ]
    for name, baseline in baselines.items():
        result = run_baseline(baseline, live, reference)
        labels = label_windows(result.decisions, ground_truth)
        metrics = compute_metrics(labels, result.report)
        rows.append([name, metrics.precision, metrics.recall, metrics.f1, metrics.reduction_factor])

    print()
    print(format_table(["strategy", "precision", "recall", "f1", "reduction"], rows))
    print()
    print(
        "The blind samplers record the same volume but almost never capture the\n"
        "perturbation windows; the count-only monitor misses mix changes that keep\n"
        "the event rate stable, which is exactly the gap the pmf + LOF approach fills."
    )


if __name__ == "__main__":
    main()
