#!/usr/bin/env python
"""The paper's endurance experiment (Section III), end to end.

Simulates a GStreamer-like decoding pipeline on a single-core MPSoC for a
few minutes of media time, perturbs it with a CPU-hungry competitor every
3 minutes, monitors the trace online and reports:

* the precision / recall of the anomaly detection at alpha = 1.2,
* the recorded-vs-full trace size (the paper's 14x headline), and
* the precision/recall-vs-alpha curve (the paper's Figure 1).

The defaults below keep the run to roughly half a minute of wall-clock time;
increase ``DURATION_S`` for a longer (more paper-faithful) run.

Run with::

    python examples/endurance_test.py
"""

from __future__ import annotations

from repro import EnduranceConfig
from repro.experiments.endurance import run_endurance_experiment
from repro.experiments.report import render_alpha_sweep, render_headline
from repro.experiments.sweep import alpha_sweep

#: Simulated media duration (the paper decodes 6 h 17 m; the shape of the
#: results is already stable at this scale).
DURATION_S = 900.0

#: Reference prefix used to learn the model of correct behaviour (paper: 300 s).
REFERENCE_S = 300.0

#: LOF thresholds for the Figure 1 sweep.
ALPHAS = [1.0, 1.05, 1.1, 1.15, 1.2, 1.3, 1.4, 1.5, 1.75, 2.0, 2.5, 3.0]


def main() -> None:
    config = EnduranceConfig.scaled_paper_setup(
        duration_s=DURATION_S, reference_s=REFERENCE_S, seed=1234
    )
    print(
        f"simulating {DURATION_S:.0f}s of decoding with a 20s perturbation every "
        f"{config.perturbation.period_s:.0f}s ..."
    )
    result = run_endurance_experiment(config)

    print()
    print(render_headline(result.summary()))
    print()
    print(render_alpha_sweep(alpha_sweep(result, ALPHAS)))
    print()
    stats = result.monitor_result.detector_stats
    print(
        f"LOF was computed for {stats['lof_computations']:.0f} of "
        f"{stats['windows_processed']:.0f} windows "
        f"({stats['lof_computation_rate'] * 100:.0f}%); the KL gate merged the rest."
    )


if __name__ == "__main__":
    main()
