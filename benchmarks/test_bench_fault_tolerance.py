"""Fault-tolerance bookkeeping must be free when nothing faults.

``MonitorConfig.shard_failure_policy="isolate"`` wraps every shard in
outcome tracking, per-attempt fault hooks and (in the parallel backend) a
wave loop that can resubmit failed shards.  All of that is bookkeeping
around the scoring plane — on a fault-free fleet it must cost nothing
measurable:

* a 16-shard fault-free fleet under ``isolate`` (with a retry budget
  armed) runs within 5% of the same fleet under the default ``abort``
  policy, and produces a bit-identical result;
* the dormant fault-injection hooks (:func:`repro.testing.faults.fault_point`
  with no plan armed) are a single environment lookup — sub-microsecond —
  so sprinkling them through per-batch code paths is safe.
"""

from __future__ import annotations

import time

from repro.analysis.fleet import ShardedTraceMonitor
from repro.analysis.model import ReferenceModel
from repro.config import DetectorConfig, MonitorConfig
from repro.testing import fault_point
from repro.trace.event import EventTypeRegistry
from repro.trace.generator import SyntheticTraceGenerator
from repro.trace.stream import windows_by_duration

from test_bench_fleet import MIX, WINDOW_DURATION_US, EVENT_RATE_PER_S, best_of

N_SHARDS = 16
STREAM_DURATION_S = 4.0
BATCH_SIZE = 64
MAX_ISOLATE_OVERHEAD = 0.05

DETECTOR_CONFIG = DetectorConfig(k_neighbours=20, lof_threshold=1.2)


def _setup():
    registry = EventTypeRegistry.with_default_types()
    reference_generator = SyntheticTraceGenerator(
        MIX, rate_per_s=EVENT_RATE_PER_S, seed=1
    )
    reference = list(
        windows_by_duration(reference_generator.events(40.0), WINDOW_DURATION_US)
    )
    model = ReferenceModel(k_neighbours=20).learn(reference, registry)
    streams = {}
    for position in range(N_SHARDS):
        generator = SyntheticTraceGenerator(
            MIX, rate_per_s=EVENT_RATE_PER_S, seed=50 + position
        )
        streams[f"shard-{position:02d}"] = list(
            windows_by_duration(
                generator.events(STREAM_DURATION_S), WINDOW_DURATION_US
            )
        )
    return model, registry, streams


def _run(model, registry, streams, **config_kwargs):
    fleet = ShardedTraceMonitor(
        DETECTOR_CONFIG,
        MonitorConfig(batch_size=BATCH_SIZE, **config_kwargs),
        EventTypeRegistry(registry.names),
    )
    return fleet.monitor_shards(dict(streams), model)


def test_isolate_policy_overhead_on_fault_free_fleet(benchmark):
    model, registry, streams = _setup()

    abort_result = _run(model, registry, streams)
    isolate_result = _run(
        model,
        registry,
        streams,
        shard_failure_policy="isolate",
        shard_retries=2,
    )
    assert not isolate_result.degraded
    assert isolate_result.to_dict()["fleet"] == abort_result.to_dict()["fleet"]
    assert isolate_result.to_dict()["shards"] == abort_result.to_dict()["shards"]

    n_windows = benchmark(
        lambda: _run(
            model,
            registry,
            streams,
            shard_failure_policy="isolate",
            shard_retries=2,
        ).n_windows
    )

    abort_s = best_of(lambda: _run(model, registry, streams), repetitions=5)
    isolate_s = best_of(
        lambda: _run(
            model,
            registry,
            streams,
            shard_failure_policy="isolate",
            shard_retries=2,
        ),
        repetitions=5,
    )
    overhead = isolate_s / abort_s - 1.0
    print()
    print(
        f"fault-free {N_SHARDS}-shard fleet ({n_windows} windows): "
        f"abort {n_windows / abort_s:,.0f} windows/s | "
        f"isolate+retries {n_windows / isolate_s:,.0f} windows/s | "
        f"overhead {overhead * 100:+.1f}%"
    )
    assert overhead <= MAX_ISOLATE_OVERHEAD, (
        f"isolate bookkeeping costs {overhead * 100:.1f}% on a fault-free "
        f"fleet; expected <= {MAX_ISOLATE_OVERHEAD * 100:.0f}%"
    )


def test_dormant_fault_hooks_are_nearly_free(monkeypatch):
    from repro.testing import faults

    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    calls = 100_000
    start = time.perf_counter()
    for _ in range(calls):
        fault_point("shard.batch")
    per_call_ns = (time.perf_counter() - start) / calls * 1e9
    print(f"\ndormant fault_point: {per_call_ns:.0f} ns/call")
    # A dormant hook is one os.environ lookup; anything beyond 5 us/call
    # would mean the harness accidentally grew work on the hot path.
    assert per_call_ns < 5_000
