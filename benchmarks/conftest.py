"""Shared fixtures for the benchmark harness.

The paper's evaluation is one endurance run analysed several ways, so the
benchmarks share a single simulated run (the "paper run"): a scaled version
of the Section III setup — 40 ms windows, K = 20, 300 s reference, a 20 s CPU
perturbation every 3 minutes — over a shorter video (the paper decodes
6 h 17 m; simulating that adds nothing but wall-clock time, the window count
is already in the tens of thousands).
"""

from __future__ import annotations

import pytest

from repro.config import EnduranceConfig
from repro.experiments.endurance import run_endurance_experiment

#: Simulated media duration of the shared paper run, in seconds.
PAPER_RUN_DURATION_S = 900.0

#: Reference prefix used for learning, in seconds (as in the paper).
PAPER_REFERENCE_S = 300.0

#: LOF thresholds swept for Figure 1.
FIGURE1_ALPHAS = [1.0, 1.05, 1.1, 1.15, 1.2, 1.3, 1.4, 1.5, 1.75, 2.0, 2.5, 3.0]


@pytest.fixture(scope="session")
def paper_config() -> EnduranceConfig:
    """The scaled paper configuration shared by every benchmark."""
    return EnduranceConfig.scaled_paper_setup(
        duration_s=PAPER_RUN_DURATION_S, reference_s=PAPER_REFERENCE_S, seed=1234
    )


@pytest.fixture(scope="session")
def paper_experiment(paper_config):
    """One full endurance experiment (simulation + monitoring + evaluation)."""
    return run_endurance_experiment(paper_config)
