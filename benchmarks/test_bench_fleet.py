"""Sharded fleet throughput — windows/s versus one-by-one stream monitoring.

Three claims are measured on the same synthetic streams:

* the sharded fleet (batch plane + batched recorder IO) processes at least
  1.5x more windows per second than monitoring the streams sequentially
  with the historical per-window path, while producing bit-identical
  per-stream results (asserted before timing — a fast fleet that changes
  decisions is worthless);
* the process-parallel backend (``MonitorConfig.fleet_workers > 1``)
  reproduces the single-thread fleet bit-identically for every worker
  count in the sweep, and on a multi-core machine the best worker count is
  at least 1.5x faster in windows/s than the single-thread fleet (the
  speedup assertion is skipped on single-core machines, where process
  parallelism cannot beat one thread by construction — the sweep is still
  run and printed so the trajectory is recorded);
* on an anomaly-heavy stream the batched recorder (``observe_batch`` +
  write buffering) records the same file with far fewer write calls, and at
  least as fast as, the per-window write-through recorder.

``REPRO_BENCH_FLEET_WORKERS`` (comma-separated counts, default ``1,2,4``)
overrides the sweep; ``benchmarks/run_benchmarks.py --fleet-workers`` sets
it from the command line.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.fleet import ShardedTraceMonitor
from repro.analysis.model import ReferenceModel
from repro.analysis.parallel import fork_transport_available
from repro.analysis.monitor import TraceMonitor
from repro.analysis.recorder import SelectiveTraceRecorder
from repro.config import DetectorConfig, MonitorConfig
from repro.trace.codec import encoded_window_sizes
from repro.trace.event import EventTypeRegistry
from repro.trace.generator import SyntheticTraceGenerator
from repro.trace.stream import windows_by_duration

MIX = {
    "mb_row_decode": 10.0,
    "frame_decode_start": 1.0,
    "frame_decode_end": 1.0,
    "frame_display": 1.0,
    "vsync": 1.0,
    "audio_decode": 2.0,
    "buffer_push": 1.0,
    "buffer_pop": 1.0,
    "demux_packet": 1.0,
    "syscall_enter": 1.0,
    "syscall_exit": 1.0,
}

WINDOW_DURATION_US = 40_000
EVENT_RATE_PER_S = 10_000
N_STREAMS = 4
STREAM_DURATION_S = 6.0
BATCH_SIZE = 64
MIN_FLEET_SPEEDUP = 1.5
MIN_PARALLEL_SPEEDUP = 1.5


def _worker_sweep() -> tuple[int, ...]:
    """Worker counts for the parallel sweep (env-overridable)."""
    raw = os.environ.get("REPRO_BENCH_FLEET_WORKERS", "1,2,4")
    counts = tuple(
        int(item) for item in raw.split(",") if item.strip() and int(item) >= 1
    )
    return counts or (1, 2, 4)


@pytest.fixture(scope="module")
def fleet_setup():
    registry = EventTypeRegistry.with_default_types()
    reference_generator = SyntheticTraceGenerator(MIX, rate_per_s=EVENT_RATE_PER_S, seed=1)
    reference = list(
        windows_by_duration(reference_generator.events(40.0), WINDOW_DURATION_US)
    )
    model = ReferenceModel(k_neighbours=20).learn(reference, registry)
    streams = {}
    for position in range(N_STREAMS):
        generator = SyntheticTraceGenerator(
            MIX, rate_per_s=EVENT_RATE_PER_S, seed=10 + position
        )
        streams[f"stream-{position:02d}"] = list(
            windows_by_duration(generator.events(STREAM_DURATION_S), WINDOW_DURATION_US)
        )
    return model, registry, streams


DETECTOR_CONFIG = DetectorConfig(k_neighbours=20, lof_threshold=1.2)


def run_sequential(model, registry, streams):
    """The historical path: one per-window monitor per stream, one by one."""
    results = {}
    for label, windows in streams.items():
        monitor = TraceMonitor(
            DETECTOR_CONFIG,
            MonitorConfig(batch_size=1),
            EventTypeRegistry(registry.names),
        )
        results[label] = monitor.monitor_windows(iter(windows), model)
    return results


def run_fleet(model, registry, streams, workers=1):
    fleet = ShardedTraceMonitor(
        DETECTOR_CONFIG,
        MonitorConfig(batch_size=BATCH_SIZE, fleet_workers=workers),
        EventTypeRegistry(registry.names),
    )
    return fleet.monitor_shards(
        {label: iter(windows) for label, windows in streams.items()}, model
    )


def best_of(fn, repetitions=5):
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_fleet_throughput_speedup(fleet_setup, benchmark):
    model, registry, streams = fleet_setup

    # Equivalence first: every shard must match its independent run.
    sequential = run_sequential(model, registry, streams)
    fleet_result = run_fleet(model, registry, streams)
    for label, solo in sequential.items():
        shard = fleet_result.shard(label)
        assert shard.decisions == solo.decisions
        assert shard.recorded_indices == solo.recorded_indices
        assert shard.report == solo.report

    n_windows = benchmark(lambda: run_fleet(model, registry, streams).n_windows)

    sequential_s = best_of(lambda: run_sequential(model, registry, streams))
    fleet_s = best_of(lambda: run_fleet(model, registry, streams))
    sequential_rate = n_windows / sequential_s
    fleet_rate = n_windows / fleet_s
    speedup = fleet_rate / sequential_rate
    print()
    print(
        f"sequential: {sequential_rate:,.0f} windows/s | "
        f"fleet({N_STREAMS} shards, batch {BATCH_SIZE}): {fleet_rate:,.0f} windows/s | "
        f"speedup {speedup:.2f}x"
    )
    assert speedup >= MIN_FLEET_SPEEDUP, (
        f"fleet only {speedup:.2f}x faster; expected >= {MIN_FLEET_SPEEDUP}x"
    )


#: Shards in the worker-sweep fleet: the four generated streams replicated
#: (new labels, same window lists) so per-run compute dominates the pool's
#: fixed start-up and result-marshalling overhead.
SWEEP_N_SHARDS = 16


def test_fleet_worker_sweep(fleet_setup, benchmark):
    """Worker-count sweep: bit-identical results, multi-core speedup.

    Equivalence against the single-thread fleet is asserted for every worker
    count unconditionally; the >= 1.5x windows/s speedup of the best
    multi-worker configuration is asserted only when the machine actually
    has more than one core to scale onto.
    """
    model, registry, base_streams = fleet_setup
    window_lists = list(base_streams.values())
    streams = {
        f"sweep-{position:02d}": window_lists[position % len(window_lists)]
        for position in range(SWEEP_N_SHARDS)
    }
    sweep = _worker_sweep()
    serial_reference = run_fleet(model, registry, streams).to_dict()
    n_windows = serial_reference["fleet"]["n_windows"]

    rates: dict[int, float] = {}
    for workers in sweep:
        result = run_fleet(model, registry, streams, workers=workers)
        assert result.to_dict() == serial_reference, (
            f"fleet with {workers} workers diverged from the serial fleet"
        )
        elapsed = best_of(
            lambda workers=workers: run_fleet(
                model, registry, streams, workers=workers
            ),
            repetitions=3,
        )
        rates[workers] = n_windows / elapsed

    bench_workers = max(
        (count for count in sweep if count > 1), default=max(sweep)
    )
    benchmark(
        lambda: run_fleet(model, registry, streams, workers=bench_workers).n_windows
    )

    serial_rate = rates.get(1) or n_windows / best_of(
        lambda: run_fleet(model, registry, streams), repetitions=3
    )
    print()
    print(
        "fleet worker sweep: "
        + " | ".join(
            f"{workers}w {rate:,.0f} windows/s ({rate / serial_rate:.2f}x)"
            for workers, rate in sorted(rates.items())
        )
    )
    parallel_rates = {w: r for w, r in rates.items() if w > 1}
    if not parallel_rates:
        pytest.skip("sweep contained no multi-worker configuration")
    best_workers, best_rate = max(parallel_rates.items(), key=lambda item: item[1])
    cpu_count = os.cpu_count() or 1
    if cpu_count < 2 or not fork_transport_available():
        # One core cannot beat one thread by construction, and without the
        # zero-copy fork transport the windows travel through the pickle
        # queue, which costs more than scoring them on this workload.
        # Equivalence was still asserted above; only the timing claim is
        # waived.
        reason = (
            f"single-core machine ({cpu_count} cpu)"
            if cpu_count < 2
            else "no fork window transport (spawn/forkserver platform)"
        )
        print(
            f"{reason}: skipping the >= {MIN_PARALLEL_SPEEDUP}x speedup "
            f"assertion (best: {best_workers} workers at "
            f"{best_rate / serial_rate:.2f}x)"
        )
        return
    assert best_rate >= MIN_PARALLEL_SPEEDUP * serial_rate, (
        f"parallel fleet only {best_rate / serial_rate:.2f}x the single-thread "
        f"fleet with {best_workers} workers on {cpu_count} cpus; "
        f"expected >= {MIN_PARALLEL_SPEEDUP}x"
    )


def test_batched_recorder_io_reduces_recording_overhead(fleet_setup, tmp_path):
    """Anomaly-heavy recording: batched IO must write the identical file
    with far fewer write calls, at least as fast as write-through."""
    _, _, streams = fleet_setup
    windows = next(iter(streams.values()))
    sizes = encoded_window_sizes(windows)
    flags = [True] * len(windows)  # worst case: everything is recorded

    def record_write_through():
        recorder = SelectiveTraceRecorder(
            output_path=tmp_path / "write_through.jsonl", io_buffer_bytes=0
        )
        for window, size in zip(windows, sizes):
            recorder.observe(window, record=True, window_bytes=size)
        recorder.close()
        return recorder

    def record_buffered():
        recorder = SelectiveTraceRecorder(
            output_path=tmp_path / "buffered.jsonl", io_buffer_bytes=256 * 1024
        )
        recorder.observe_batch(windows, flags, window_bytes=sizes)
        recorder.close()
        return recorder

    write_through = record_write_through()
    buffered = record_buffered()
    assert (tmp_path / "buffered.jsonl").read_text() == (
        tmp_path / "write_through.jsonl"
    ).read_text()
    assert buffered.report() == write_through.report()
    # One write per recorded window versus one write per 256 KiB.
    assert buffered.io_write_count * 4 <= write_through.io_write_count

    write_through_s = best_of(record_write_through, repetitions=7)
    buffered_s = best_of(record_buffered, repetitions=7)
    speedup = write_through_s / buffered_s
    print()
    print(
        f"write-through: {write_through_s * 1e3:.1f} ms "
        f"({write_through.io_write_count} writes) | "
        f"buffered: {buffered_s * 1e3:.1f} ms ({buffered.io_write_count} writes) | "
        f"recording speedup {speedup:.2f}x"
    )
    # JSON encoding dominates both paths equally, so wall-clock parity is
    # expected; the write-call reduction above is the hard claim and the
    # timing line is informational (a strict bound flakes on noisy
    # single-core CI machines).
