"""Figure 1 — precision and recall of anomaly detection vs the LOF threshold.

The paper's only figure sweeps the LOF threshold alpha from 1 to 3 and plots
precision and recall of the window labelling.  The LOF score of a window does
not depend on alpha, so the sweep is evaluated from a single monitoring pass;
the benchmark measures that evaluation and prints the regenerated figure
(ASCII plot + table).

Expected shape (the paper's testbed differs from the simulated substrate, so
absolute values are not expected to match): precision increases with alpha,
recall decreases, and both sit in the 0.7-0.9 band around alpha ~ 1.2.
"""

from __future__ import annotations

from repro.experiments.report import render_alpha_sweep
from repro.experiments.sweep import alpha_sweep

#: LOF thresholds swept in the paper's Figure 1 (x axis from 1 to 3).
FIGURE1_ALPHAS = [1.0, 1.05, 1.1, 1.15, 1.2, 1.3, 1.4, 1.5, 1.75, 2.0, 2.5, 3.0]


def test_figure1_precision_recall_vs_alpha(paper_experiment, benchmark):
    points = benchmark(alpha_sweep, paper_experiment, FIGURE1_ALPHAS)

    print()
    print(render_alpha_sweep(points))

    # Shape checks: recall is non-increasing with alpha, precision improves
    # from its alpha=1 value, and the paper's operating point (alpha ~ 1.2)
    # has both metrics at a usable level.
    recalls = [point.recall for point in points]
    assert all(a >= b - 1e-9 for a, b in zip(recalls, recalls[1:]))
    assert points[0].precision <= max(point.precision for point in points)
    at_1_2 = next(point for point in points if abs(point.alpha - 1.2) < 1e-9)
    assert at_1_2.precision > 0.6
    assert at_1_2.recall > 0.6
