"""Streaming ingest throughput — chunked follow-mode file-to-scores vs one-shot.

The streaming mirror of the columnar ingest benchmark: both paths start from
the same finished trace file and end at per-window decisions against a
pre-fitted model.

* **one-shot path** — ``run_on_file``: whole-file columnar decode,
  array-native windowing, lazy ``WindowBatch`` hand-off;
* **streaming path** — ``follow_file``: a :class:`FileTail` over the same
  (already complete) file, chunks through the resumable decoders and
  :class:`StreamingWindowSource`'s incremental windowing, with bounded
  buffered memory.

Equivalence is asserted before timing (identical decisions, reports and
detector counters — the bit-identity guarantee of the streaming plane),
then the streaming path must stay within ``MAX_OVERHEAD`` of one-shot: the
price of incremental decode and chunk-boundary bookkeeping, paid for a
bounded-memory live-follow capability the one-shot path cannot offer.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.model import ReferenceModel
from repro.analysis.monitor import TraceMonitor
from repro.config import DetectorConfig, MonitorConfig
from repro.trace.event import EventTypeRegistry
from repro.trace.generator import SyntheticTraceGenerator
from repro.trace.stream import windows_by_duration
from repro.trace.writer import write_trace

MIX = {
    "mb_row_decode": 10.0,
    "frame_decode_start": 1.0,
    "frame_decode_end": 1.0,
    "frame_display": 1.0,
    "vsync": 1.0,
    "audio_decode": 2.0,
    "buffer_push": 1.0,
    "buffer_pop": 1.0,
    "demux_packet": 1.0,
    "syscall_enter": 1.0,
    "syscall_exit": 1.0,
}

WINDOW_DURATION_US = 40_000
EVENT_RATE_PER_S = 10_000
DURATION_S = 15.0
BATCH_SIZE = 64
#: Chunk size of the follow-mode reads: small enough that the run crosses
#: many chunk boundaries (the cost being measured), large enough to be a
#: realistic tracer flush.
CHUNK_BYTES = 64 * 1024
#: The streaming path may cost at most this multiple of one-shot on the
#: binary format (incremental decode + windowing bookkeeping + tail polls).
MAX_OVERHEAD = 2.5

#: Smoke mode (REPRO_BENCH_STREAMING_SMOKE=1): single timing repetition and
#: no overhead ceiling — CI's quick sanity pass still checks end-to-end
#: equivalence without letting a loaded shared runner fail on timing.
SMOKE = os.environ.get("REPRO_BENCH_STREAMING_SMOKE") == "1"
REPETITIONS = 1 if SMOKE else 3


@pytest.fixture(scope="module")
def streaming_setup(tmp_path_factory):
    root = tmp_path_factory.mktemp("streaming")
    registry = EventTypeRegistry.with_default_types()
    reference_generator = SyntheticTraceGenerator(
        MIX, rate_per_s=EVENT_RATE_PER_S, seed=1
    )
    reference = list(
        windows_by_duration(reference_generator.events(60.0), WINDOW_DURATION_US)
    )
    model = ReferenceModel(k_neighbours=20).learn(reference, registry)
    live_generator = SyntheticTraceGenerator(MIX, rate_per_s=EVENT_RATE_PER_S, seed=2)
    events = list(live_generator.events(DURATION_S))
    paths = {
        "binary": write_trace(events, root / "trace.bin", fmt="binary"),
        "jsonl": write_trace(events, root / "trace.jsonl", fmt="jsonl"),
    }
    return model, paths


def make_monitor(model):
    detector_config = DetectorConfig(k_neighbours=20, lof_threshold=1.2)
    monitor_config = MonitorConfig(batch_size=BATCH_SIZE)
    return TraceMonitor(
        detector_config, monitor_config, EventTypeRegistry.with_default_types()
    )


def run_one_shot(model, path):
    return make_monitor(model).run_on_file(path, model=model)


def run_streaming(model, path):
    # idle_timeout_s=0: the file is complete, so the first idle poll ends
    # the follow — the measured work is chunked decode + incremental
    # windowing, not waiting.
    return make_monitor(model).follow_file(
        path,
        model=model,
        poll_interval_s=0.001,
        idle_timeout_s=0.0,
        chunk_bytes=CHUNK_BYTES,
    )


def best_of(fn, repetitions=REPETITIONS):
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_streaming_ingest_overhead(streaming_setup, benchmark):
    model, paths = streaming_setup

    # Equivalence first: the streaming plane's whole contract is that a
    # chunked follow of the final file scores bit-identically to one-shot.
    rates = {}
    n_windows = 0
    for fmt, path in paths.items():
        one_shot_result = run_one_shot(model, path)
        streaming_result = run_streaming(model, path)
        assert one_shot_result.decisions == streaming_result.decisions
        assert one_shot_result.report == streaming_result.report
        assert one_shot_result.detector_stats == streaming_result.detector_stats
        n_windows = one_shot_result.n_windows

        one_shot_s = best_of(lambda: run_one_shot(model, path))
        streaming_s = best_of(lambda: run_streaming(model, path))
        rates[fmt] = {
            "one_shot": n_windows / one_shot_s,
            "streaming": n_windows / streaming_s,
        }

    benchmark(lambda: run_streaming(model, paths["binary"]).n_windows)

    print()
    for fmt, row in rates.items():
        overhead = row["one_shot"] / row["streaming"]
        print(
            f"{fmt:>6}: one-shot {row['one_shot']:,.0f} w/s | "
            f"streaming {row['streaming']:,.0f} w/s "
            f"({overhead:.2f}x overhead)"
        )

    binary_overhead = (
        rates["binary"]["one_shot"] / rates["binary"]["streaming"]
    )
    if not SMOKE:
        assert binary_overhead <= MAX_OVERHEAD, (
            f"streaming follow-mode ingest costs {binary_overhead:.2f}x "
            f"one-shot on the binary format; expected <= {MAX_OVERHEAD}x"
        )
