"""Online monitoring cost — can the detector keep up with the trace stream?

The approach only makes sense if analysing a window costs (much) less than
the window's wall-clock duration (40 ms).  This micro-benchmark measures the
per-window processing cost of the full detector (pmf + KL gate + LOF when
needed) on a synthetic stream, and checks the real-time margin.
"""

from __future__ import annotations

import pytest

from repro.analysis.detector import OnlineAnomalyDetector
from repro.analysis.model import ReferenceModel
from repro.config import DetectorConfig
from repro.trace.event import EventTypeRegistry
from repro.trace.generator import SyntheticTraceGenerator
from repro.trace.stream import windows_by_duration

#: Event mix of the synthetic stream used for the throughput measurement.
MIX = {
    "mb_row_decode": 10.0,
    "frame_decode_start": 1.0,
    "frame_decode_end": 1.0,
    "frame_display": 1.0,
    "vsync": 1.0,
    "audio_decode": 2.0,
    "buffer_push": 1.0,
    "buffer_pop": 1.0,
    "demux_packet": 1.0,
    "syscall_enter": 1.0,
    "syscall_exit": 1.0,
}

WINDOW_DURATION_US = 40_000


@pytest.fixture(scope="module")
def detector_and_windows():
    registry = EventTypeRegistry.with_default_types()
    reference_generator = SyntheticTraceGenerator(MIX, rate_per_s=2_000, seed=1)
    reference = list(
        windows_by_duration(reference_generator.events(60.0), WINDOW_DURATION_US)
    )
    model = ReferenceModel(k_neighbours=20).learn(reference, registry)
    detector = OnlineAnomalyDetector(
        model, DetectorConfig(k_neighbours=20, lof_threshold=1.2), registry
    )
    live_generator = SyntheticTraceGenerator(MIX, rate_per_s=2_000, seed=2)
    windows = list(windows_by_duration(live_generator.events(20.0), WINDOW_DURATION_US))
    return detector, windows


def test_online_monitoring_throughput(detector_and_windows, benchmark):
    import time

    detector, windows = detector_and_windows

    def process_all():
        for window in windows:
            detector.process(window)
        return len(windows)

    n_windows = benchmark(process_all)

    # Independent wall-clock measurement for the real-time margin assertion
    # (pytest-benchmark's own statistics are printed in its summary table).
    start = time.perf_counter()
    process_all()
    elapsed = time.perf_counter() - start
    per_window_s = elapsed / n_windows
    real_time_margin = (WINDOW_DURATION_US / 1e6) / per_window_s
    print()
    print(
        f"processed {n_windows} windows, {per_window_s * 1e6:.0f} us/window, "
        f"real-time margin {real_time_margin:.0f}x"
    )

    # a pure-Python prototype still has to keep up with the 40 ms stream
    assert real_time_margin > 1.0
