"""Batched scoring plane throughput — windows/s versus the per-window loop.

The vectorized plane (columnar :class:`~repro.trace.batch.WindowBatch` ->
``pmf_matrix`` -> batched KL gate + LOF) must produce decisions identical to
the per-window detector while being substantially faster.  This benchmark
drives both paths over the *same* synthetic stream, checks the decisions
match, and asserts the batched plane processes at least 3x more windows per
second.  The stream uses a 10k events/s rate (~400 events per 40 ms window),
in the ballpark of the paper's platform traces (5.9 GB over 6 h 17 m).
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.detector import OnlineAnomalyDetector
from repro.analysis.model import ReferenceModel
from repro.config import DetectorConfig
from repro.trace.batch import batch_windows
from repro.trace.event import EventTypeRegistry
from repro.trace.generator import SyntheticTraceGenerator
from repro.trace.stream import windows_by_duration

#: Event mix of the synthetic stream (same shape as the per-window benchmark).
MIX = {
    "mb_row_decode": 10.0,
    "frame_decode_start": 1.0,
    "frame_decode_end": 1.0,
    "frame_display": 1.0,
    "vsync": 1.0,
    "audio_decode": 2.0,
    "buffer_push": 1.0,
    "buffer_pop": 1.0,
    "demux_packet": 1.0,
    "syscall_enter": 1.0,
    "syscall_exit": 1.0,
}

WINDOW_DURATION_US = 40_000
EVENT_RATE_PER_S = 10_000
BATCH_SIZE = 64
MIN_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def model_and_windows():
    registry = EventTypeRegistry.with_default_types()
    reference_generator = SyntheticTraceGenerator(MIX, rate_per_s=EVENT_RATE_PER_S, seed=1)
    reference = list(
        windows_by_duration(reference_generator.events(60.0), WINDOW_DURATION_US)
    )
    model = ReferenceModel(k_neighbours=20).learn(reference, registry)
    live_generator = SyntheticTraceGenerator(MIX, rate_per_s=EVENT_RATE_PER_S, seed=2)
    windows = list(
        windows_by_duration(live_generator.events(20.0), WINDOW_DURATION_US)
    )
    return model, registry, windows


def run_serial(model, registry, windows):
    detector = OnlineAnomalyDetector(
        model, DetectorConfig(k_neighbours=20, lof_threshold=1.2), registry
    )
    return [detector.process(window) for window in windows]


def run_batched(model, registry, windows):
    detector = OnlineAnomalyDetector(
        model, DetectorConfig(k_neighbours=20, lof_threshold=1.2), registry
    )
    decisions = []
    for batch in batch_windows(iter(windows), registry, BATCH_SIZE):
        decisions.extend(detector.process_batch(batch))
    return decisions


def best_of(fn, repetitions=5):
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_throughput_speedup(model_and_windows, benchmark):
    model, registry, windows = model_and_windows

    # Equivalence first: a fast plane that changes decisions is worthless.
    serial_decisions = run_serial(model, registry, windows)
    batched_decisions = run_batched(model, registry, windows)
    assert len(serial_decisions) == len(batched_decisions)
    for serial, batched in zip(serial_decisions, batched_decisions):
        assert serial.outcome == batched.outcome
        assert serial.lof_score == batched.lof_score

    n_windows = benchmark(lambda: len(run_batched(model, registry, windows)))

    serial_s = best_of(lambda: run_serial(model, registry, windows))
    batched_s = best_of(lambda: run_batched(model, registry, windows))
    serial_rate = n_windows / serial_s
    batched_rate = n_windows / batched_s
    speedup = serial_rate and batched_rate / serial_rate
    real_time_margin = (WINDOW_DURATION_US / 1e6) / (batched_s / n_windows)
    print()
    print(
        f"per-window: {serial_rate:,.0f} windows/s | "
        f"batched({BATCH_SIZE}): {batched_rate:,.0f} windows/s | "
        f"speedup {speedup:.2f}x | real-time margin {real_time_margin:.0f}x"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"batched plane only {speedup:.2f}x faster; expected >= {MIN_SPEEDUP}x"
    )
