"""Headline numbers of Section III — precision, recall and trace-size reduction
at alpha = 1.2.

The paper reports: precision 78.9 %, recall 76.6 %, recorded trace 418 MB vs
5.9 GB full (a ~14x reduction).  The benchmark evaluates the same operating
point on the simulated run and prints the side-by-side comparison.  The shape
that must hold: both quality metrics in a usable band (>> a random sampler at
the same budget) and an order-of-magnitude reduction in recorded bytes.
"""

from __future__ import annotations

from repro.experiments.report import render_headline


def test_headline_operating_point(paper_experiment, benchmark):
    metrics = benchmark(paper_experiment.metrics_at, 1.2)

    summary = dict(paper_experiment.summary())
    summary.update(
        {
            "alpha": 1.2,
            "precision": metrics.precision,
            "recall": metrics.recall,
            "recorded_bytes": metrics.recorded_bytes,
            "total_bytes": metrics.total_bytes,
            "reduction_factor": metrics.reduction_factor,
        }
    )
    print()
    print(render_headline(summary))

    assert metrics.precision > 0.6
    assert metrics.recall > 0.6
    # order-of-magnitude-ish reduction: the paper reports 14x on a 6h17m run
    # whose perturbations cover ~11% of the time; the scaled run keeps the
    # same schedule, so anything clearly above ~5x reproduces the claim.
    assert metrics.reduction_factor > 5.0
