#!/usr/bin/env python
"""Run the benchmark suite and archive the pytest-benchmark statistics.

The default invocation runs the throughput benchmarks (per-window loop,
batched scoring plane, the sharded multi-stream fleet and the columnar
file-to-scores ingest plane) and writes their pytest-benchmark statistics
to ``BENCH_throughput.json`` at the repository root, so successive PRs
leave a machine-readable performance trajectory behind::

    python benchmarks/run_benchmarks.py                 # throughput only
    python benchmarks/run_benchmarks.py --all           # every benchmark
    python benchmarks/run_benchmarks.py -o custom.json  # different output

Any extra arguments after ``--`` are forwarded to pytest verbatim.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

THROUGHPUT_BENCHMARKS = [
    "benchmarks/test_bench_throughput.py",
    "benchmarks/test_bench_throughput_batched.py",
    "benchmarks/test_bench_fleet.py",
    "benchmarks/test_bench_ingest.py",
    "benchmarks/test_bench_streaming.py",
    "benchmarks/test_bench_knn.py",
    "benchmarks/test_bench_fault_tolerance.py",
]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o",
        "--output",
        default="BENCH_throughput.json",
        help="pytest-benchmark JSON output path (default: %(default)s)",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="run the whole benchmarks/ directory instead of the throughput pair",
    )
    parser.add_argument(
        "--fleet-workers",
        default=None,
        metavar="N,N,...",
        help="comma-separated worker counts for the fleet worker sweep "
        "(sets REPRO_BENCH_FLEET_WORKERS; default: the bench's 1,2,4)",
    )
    parser.add_argument(
        "--knn-backend",
        default=None,
        metavar="NAME,NAME,...",
        help="comma-separated indexed k-NN backends to time in the knn sweep "
        "(sets REPRO_BENCH_KNN_BACKENDS; default: the bench's balltree,grid)",
    )
    args, passthrough = parser.parse_known_args(argv)
    if passthrough and passthrough[0] == "--":
        passthrough = passthrough[1:]

    targets = ["benchmarks"] if args.all else list(THROUGHPUT_BENCHMARKS)
    command = [
        sys.executable,
        "-m",
        "pytest",
        *targets,
        "-q",
        f"--benchmark-json={args.output}",
        *passthrough,
    ]
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    if args.fleet_workers is not None:
        env["REPRO_BENCH_FLEET_WORKERS"] = args.fleet_workers
    if args.knn_backend is not None:
        env["REPRO_BENCH_KNN_BACKENDS"] = args.knn_backend
    print("+", " ".join(command))
    return subprocess.call(command, cwd=REPO_ROOT, env=env)


if __name__ == "__main__":
    raise SystemExit(main())
