"""Ablation B — effect of the number of LOF neighbours K.

The paper uses K = 20.  K controls how local the density estimate is: tiny K
makes the LOF score noisy, huge K smears the reference clusters together.
The run itself is reused; only learning + monitoring are repeated per K.
"""

from __future__ import annotations

from repro.experiments.report import render_sweep
from repro.experiments.sweep import k_sweep

K_VALUES = [5, 20, 40]


def test_k_neighbours_ablation(paper_experiment, paper_config, benchmark):
    trace = paper_experiment.trace

    def run_sweep():
        return k_sweep(paper_config, K_VALUES, trace=trace)

    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print()
    print(render_sweep("Ablation B — LOF neighbours K", points))

    assert [point.value for point in points] == K_VALUES
    by_k = {point.value: point for point in points}
    # the paper's K=20 operating point is a usable one
    assert by_k[20].precision > 0.6
    assert by_k[20].recall > 0.6
    assert by_k[20].f1 >= max(point.f1 for point in points) - 0.25
