"""Future work (Section IV) — exploiting periodicity to shrink the trace further.

The paper's conclusion proposes exploiting the application's periodic
behaviour to reduce the recorded volume beyond the anomaly-only selection.
This benchmark applies the periodicity-aware compactor to the windows the
monitor recorded on the shared run and reports the extra reduction obtained
by replacing near-duplicate recorded windows with small reference records.
"""

from __future__ import annotations

from repro.analysis.periodic import PeriodicityCompactor
from repro.experiments.report import format_table
from repro.trace.event import EventTypeRegistry
from repro.trace.stream import windows_by_duration


def test_periodicity_compaction(paper_experiment, paper_config, benchmark):
    # Re-window the trace and keep only what the monitor recorded.
    window_us = paper_config.monitor.window_duration_us
    recorded_set = set(paper_experiment.monitor_result.recorded_indices)
    reference_count = paper_experiment.monitor_result.reference_window_count
    all_windows = list(
        windows_by_duration(iter(paper_experiment.trace.events), window_us)
    )
    live_windows = all_windows[reference_count:]
    recorded_windows = [window for window in live_windows if window.index in recorded_set]
    counts = [len(window) for window in live_windows]

    compactor = PeriodicityCompactor(
        similarity_threshold=0.08, registry=EventTypeRegistry.with_default_types()
    )

    def compact():
        return compactor.compact(recorded_windows, all_window_counts=counts)

    kept, report = benchmark.pedantic(compact, rounds=1, iterations=1)

    base_report = paper_experiment.monitor_result.report
    combined_reduction = (
        base_report.total_bytes / report.output_bytes if report.output_bytes else float("inf")
    )
    print()
    print(
        format_table(
            ["stage", "bytes", "reduction vs full trace"],
            [
                ["full trace", base_report.total_bytes, 1.0],
                [
                    "selective recording (paper)",
                    base_report.recorded_bytes,
                    base_report.reduction_factor,
                ],
                ["+ periodicity compaction", report.output_bytes, combined_reduction],
            ],
        )
    )
    print(
        f"dominant period: {report.period_windows} windows; "
        f"{report.deduplicated_windows}/{report.input_windows} recorded windows deduplicated"
    )

    assert report.input_windows == len(recorded_windows)
    assert report.output_bytes <= report.input_bytes
    # the extension must deliver a further (even if modest) reduction
    assert report.additional_reduction_factor >= 1.0
    assert len(kept) + report.deduplicated_windows == report.input_windows
