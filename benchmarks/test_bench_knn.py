"""Indexed k-NN plane throughput — batched queries versus brute force.

Reference scoring is one ``query_many`` against the fitted reference set per
batch, so monitoring cost over long endurance runs is dominated by k-NN
search.  This benchmark sweeps reference size x k x dims over clustered
points on the probability simplex (the shape real pmf vectors take: windows
from the same workload phase cluster tightly), checks that every indexed
backend returns *bit-identical* neighbours to :class:`BruteForceKnn`, then
times batched queries.  At the largest swept reference size the ball-tree
backend must be at least ``MIN_SPEEDUP_AT_LARGEST`` faster than brute force
— the sublinear contract that justifies the ``"auto"`` crossover.

Backends to time come from ``REPRO_BENCH_KNN_BACKENDS`` (comma-separated,
default ``balltree,grid``); ``REPRO_BENCH_KNN_SMOKE=1`` shrinks the sweep to
a seconds-long smoke run with no speedup floor (used by CI).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.analysis.knn import BruteForceKnn, make_index

#: Smoke mode (REPRO_BENCH_KNN_SMOKE=1): tiny sweep, one repetition, no
#: speedup floor — exercises the harness, not the hardware.
SMOKE = os.environ.get("REPRO_BENCH_KNN_SMOKE") == "1"
REPETITIONS = 1 if SMOKE else 3

BACKENDS = tuple(
    name.strip()
    for name in os.environ.get("REPRO_BENCH_KNN_BACKENDS", "balltree,grid").split(",")
    if name.strip()
)

SIZES = (256, 512) if SMOKE else (4_096, 16_384, 65_536)
KS = (5,) if SMOKE else (5, 20)
DIMS = (8,) if SMOKE else (8, 24)
N_TIMED_QUERIES = 32 if SMOKE else 1_024
N_CHECKED_QUERIES = 16 if SMOKE else 64
N_CLUSTERS = 12

#: Only the ball-tree backend carries a hard floor, and only at the largest
#: swept reference size (measured ~3-4x there; brute wins below the
#: crossover, which is exactly why "auto" exists).
MIN_SPEEDUP_AT_LARGEST = 2.0
FLOORED_BACKEND = "balltree"

_SWEEP = [
    (size, k, dim) for size in SIZES for k in KS for dim in DIMS
]


def clustered_simplex_points(rng, centers, n: int) -> np.ndarray:
    """Points on the simplex in tight Dirichlet clusters (pmf-vector shaped)."""
    counts = np.bincount(rng.integers(0, len(centers), size=n), minlength=len(centers))
    parts = [
        rng.dirichlet(center * 300.0 + 1e-3, size=count)
        for center, count in zip(centers, counts)
        if count
    ]
    return rng.permutation(np.vstack(parts), axis=0)


def reference_and_queries(seed: int, n: int, dim: int):
    """Reference set plus queries drawn from the *same* cluster centers.

    Live windows come from the same workload as the reference trace, so
    realistic queries land inside the reference clusters rather than in
    empty simplex regions.
    """
    rng = np.random.default_rng(seed)
    centers = rng.dirichlet(np.ones(dim), size=N_CLUSTERS)
    points = clustered_simplex_points(rng, centers, n)
    queries = clustered_simplex_points(rng, centers, N_TIMED_QUERIES)
    return points, queries


def best_of(fn, repetitions=REPETITIONS):
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize(
    "size,k,dim", _SWEEP, ids=[f"n{size}-k{k}-d{dim}" for size, k, dim in _SWEEP]
)
def test_knn_query_throughput(size, k, dim, benchmark):
    points, queries = reference_and_queries(size, size, dim)

    brute = BruteForceKnn(points)
    indexes = {name: make_index(name, points) for name in BACKENDS}

    # Equivalence first: a fast index that changes neighbour sets would
    # change LOF scores and monitor decisions, which is worthless.
    check = queries[:N_CHECKED_QUERIES]
    oracle_d, oracle_i = brute.query_many(check, k)
    for name, index in indexes.items():
        index_d, index_i = index.query_many(check, k)
        np.testing.assert_array_equal(index_i, oracle_i, err_msg=name)
        np.testing.assert_array_equal(index_d, oracle_d, err_msg=name)

    timed_backend = FLOORED_BACKEND if FLOORED_BACKEND in indexes else BACKENDS[0]
    benchmark(lambda: indexes[timed_backend].query_many(queries, k))

    brute_s = best_of(lambda: brute.query_many(queries, k))
    rates = {"brute": N_TIMED_QUERIES / brute_s}
    speedups = {}
    for name, index in indexes.items():
        indexed_s = best_of(lambda: index.query_many(queries, k))
        rates[name] = N_TIMED_QUERIES / indexed_s
        speedups[name] = brute_s / indexed_s
    print()
    print(
        f"n={size} k={k} d={dim}: "
        + " | ".join(f"{name}: {rate:,.0f} q/s" for name, rate in rates.items())
        + " | "
        + " ".join(f"{name} {speedup:.2f}x" for name, speedup in speedups.items())
    )

    if not SMOKE and size == max(SIZES) and FLOORED_BACKEND in speedups:
        assert speedups[FLOORED_BACKEND] >= MIN_SPEEDUP_AT_LARGEST, (
            f"{FLOORED_BACKEND} only {speedups[FLOORED_BACKEND]:.2f}x faster than "
            f"brute at n={size}; expected >= {MIN_SPEEDUP_AT_LARGEST}x"
        )
