"""Columnar ingest throughput — file-to-scores windows/s vs the object path.

The ingest mirror of the batched-scoring benchmark: both paths start from
the same trace *file* and end at per-window decisions.

* **object path** — ``read_trace`` (one ``TraceEvent`` per event) ->
  ``TraceStream.windows`` (per-event Python windowing) ->
  ``monitor_windows`` through the batched scoring plane;
* **columnar path** — ``read_trace_columns`` (flat arrays) -> array-native
  windowing -> lazy ``WindowBatch`` hand-off (``run_on_columns``), with and
  without the bounded decode/score prefetch overlap.

Equivalence is asserted before timing (identical decisions, reports and
detector counters), then the columnar path must clear ``MIN_SPEEDUP`` on
the compact binary format (the realistic embedded-trace encoding whose
object decode is dominated by per-event materialisation).  The JSON-lines
numbers are printed for the trajectory record; JSON parsing itself
dominates both paths there, so no floor is asserted.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.monitor import TraceMonitor
from repro.config import DetectorConfig, MonitorConfig
from repro.trace.event import EventTypeRegistry
from repro.trace.generator import SyntheticTraceGenerator
from repro.trace.reader import read_trace, read_trace_columns
from repro.trace.stream import TraceStream, windows_by_duration
from repro.trace.writer import write_trace
from repro.analysis.model import ReferenceModel

MIX = {
    "mb_row_decode": 10.0,
    "frame_decode_start": 1.0,
    "frame_decode_end": 1.0,
    "frame_display": 1.0,
    "vsync": 1.0,
    "audio_decode": 2.0,
    "buffer_push": 1.0,
    "buffer_pop": 1.0,
    "demux_packet": 1.0,
    "syscall_enter": 1.0,
    "syscall_exit": 1.0,
}

WINDOW_DURATION_US = 40_000
EVENT_RATE_PER_S = 10_000
DURATION_S = 15.0
BATCH_SIZE = 64
PREFETCH = 4
MIN_SPEEDUP = 2.0

#: Smoke mode (REPRO_BENCH_INGEST_SMOKE=1): single timing repetition and no
#: speedup floor — CI's quick sanity pass on loaded shared runners still
#: checks end-to-end equivalence without turning a timing fluke into a red
#: build.  The archived benchmark run keeps the hard >= 2x assertion.
SMOKE = os.environ.get("REPRO_BENCH_INGEST_SMOKE") == "1"
REPETITIONS = 1 if SMOKE else 3


@pytest.fixture(scope="module")
def ingest_setup(tmp_path_factory):
    root = tmp_path_factory.mktemp("ingest")
    registry = EventTypeRegistry.with_default_types()
    reference_generator = SyntheticTraceGenerator(
        MIX, rate_per_s=EVENT_RATE_PER_S, seed=1
    )
    reference = list(
        windows_by_duration(reference_generator.events(60.0), WINDOW_DURATION_US)
    )
    model = ReferenceModel(k_neighbours=20).learn(reference, registry)
    live_generator = SyntheticTraceGenerator(MIX, rate_per_s=EVENT_RATE_PER_S, seed=2)
    events = list(live_generator.events(DURATION_S))
    paths = {
        "binary": write_trace(events, root / "trace.bin", fmt="binary"),
        "jsonl": write_trace(events, root / "trace.jsonl", fmt="jsonl"),
    }
    return model, paths


def make_monitor(model):
    detector_config = DetectorConfig(k_neighbours=20, lof_threshold=1.2)
    monitor_config = MonitorConfig(batch_size=BATCH_SIZE)
    return TraceMonitor(
        detector_config, monitor_config, EventTypeRegistry.with_default_types()
    )


def run_object_path(model, path):
    monitor = make_monitor(model)
    events = read_trace(path)
    return monitor.run_on_stream(TraceStream(iter(events)), model=model)


def run_columnar_path(model, path, prefetch=0):
    monitor = make_monitor(model)
    return monitor.run_on_file(path, model=model, prefetch_batches=prefetch)


def best_of(fn, repetitions=REPETITIONS):
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_columnar_ingest_speedup(ingest_setup, benchmark):
    model, paths = ingest_setup

    # Equivalence first: a fast ingest plane that changes results is useless.
    rates = {}
    n_windows = 0
    for fmt, path in paths.items():
        object_result = run_object_path(model, path)
        columnar_result = run_columnar_path(model, path)
        prefetch_result = run_columnar_path(model, path, prefetch=PREFETCH)
        for other in (columnar_result, prefetch_result):
            assert object_result.decisions == other.decisions
            assert object_result.report == other.report
            assert object_result.detector_stats == other.detector_stats
        n_windows = object_result.n_windows

        object_s = best_of(lambda: run_object_path(model, path))
        columnar_s = best_of(lambda: run_columnar_path(model, path))
        prefetch_s = best_of(
            lambda: run_columnar_path(model, path, prefetch=PREFETCH)
        )
        rates[fmt] = {
            "object": n_windows / object_s,
            "columnar": n_windows / columnar_s,
            "pipelined": n_windows / prefetch_s,
        }

    benchmark(lambda: run_columnar_path(model, paths["binary"]).n_windows)

    print()
    for fmt, row in rates.items():
        speedup = row["columnar"] / row["object"]
        pipelined = row["pipelined"] / row["object"]
        print(
            f"{fmt:>6}: object {row['object']:,.0f} w/s | "
            f"columnar {row['columnar']:,.0f} w/s ({speedup:.2f}x) | "
            f"pipelined {row['pipelined']:,.0f} w/s ({pipelined:.2f}x)"
        )

    binary_speedup = max(
        rates["binary"]["columnar"], rates["binary"]["pipelined"]
    ) / rates["binary"]["object"]
    if not SMOKE:
        assert binary_speedup >= MIN_SPEEDUP, (
            f"columnar file-to-scores path only {binary_speedup:.2f}x faster "
            f"than the object path on the binary format; expected >= "
            f"{MIN_SPEEDUP}x"
        )
