"""Ablation A — effect of the trace window duration.

The paper fixes the window at 40 ms (tied to the tracing-hardware buffer).
This ablation re-monitors the same simulated run with smaller and larger
windows: very small windows make the pmf estimate noisy (precision drops),
very large windows dilute short anomalies (recall drops) and reduce the
achievable size reduction because each recorded window carries more bytes.
"""

from __future__ import annotations

from repro.experiments.report import render_sweep
from repro.experiments.sweep import window_size_sweep

WINDOW_DURATIONS_US = [20_000, 40_000, 120_000]


def test_window_size_ablation(paper_experiment, paper_config, benchmark):
    trace = paper_experiment.trace

    def run_sweep():
        return window_size_sweep(paper_config, WINDOW_DURATIONS_US, trace=trace)

    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print()
    print(render_sweep("Ablation A — window duration (us)", points))

    assert [point.value for point in points] == WINDOW_DURATIONS_US
    by_duration = {point.value: point for point in points}
    # the paper's 40 ms operating point must be a usable one
    assert by_duration[40_000].precision > 0.6
    assert by_duration[40_000].recall > 0.6
    # every configuration still reduces the recorded volume
    assert all(point.reduction_factor > 1.5 for point in points)
