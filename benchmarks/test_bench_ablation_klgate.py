"""Ablation C — the Kullback-Leibler similarity gate.

The gate serves two purposes in the paper: it avoids a LOF computation for
windows that look like the recent past, and it lets the running past pmf
track slow drifts.  The ablation compares several gate thresholds with the
gate disabled entirely (LOF on every window) on the same simulated run.

Expected shape: disabling the gate maximises the LOF-computation rate (cost)
without a commensurate quality gain; overly large thresholds start swallowing
anomalous windows (recall drops).
"""

from __future__ import annotations

from repro.experiments.report import render_sweep
from repro.experiments.sweep import kl_gate_sweep

KL_THRESHOLDS = [0.02, 0.05, 0.3]


def test_kl_gate_ablation(paper_experiment, paper_config, benchmark):
    trace = paper_experiment.trace

    def run_sweep():
        return kl_gate_sweep(
            paper_config, KL_THRESHOLDS, include_disabled_gate=True, trace=trace
        )

    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print()
    print(render_sweep("Ablation C — KL similarity gate", points))

    gated = points[:-1]
    ungated = points[-1]
    assert ungated.parameter == "kl_gate_disabled"
    # disabling the gate can only increase the fraction of windows that need
    # a LOF computation
    assert ungated.lof_computation_rate >= max(p.lof_computation_rate for p in gated) - 1e-9
    # larger thresholds never increase the LOF-computation rate
    rates = [point.lof_computation_rate for point in gated]
    assert all(a >= b - 1e-9 for a, b in zip(rates, rates[1:]))
    # the paper's operating point (a permissive gate) keeps detection quality
    assert max(point.f1 for point in gated) > 0.6
