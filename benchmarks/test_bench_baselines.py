"""Baseline comparison — the LOF monitor vs naive recording strategies.

The paper's implicit comparison is against recording the full trace.  This
benchmark additionally pits the detector against the strategies a test
engineer could deploy with no machine learning, at a comparable recording
budget:

* random sampling of windows,
* periodic sampling (1 window out of N),
* a z-score monitor on the per-window event count,
* the KL gate alone (no LOF), i.e. an ablation of the contribution.

Expected shape: at an equal (or larger) recording budget the naive samplers
achieve far lower precision/recall on the labelled anomalies, and the
count-only z-score monitor misses mix changes — which is precisely the gap
the pmf + LOF approach fills.
"""

from __future__ import annotations

from repro.analysis.baselines import (
    KlOnlyDetectorBaseline,
    PeriodicSamplingBaseline,
    RandomSamplingBaseline,
    ZScoreBaseline,
    run_baseline,
)
from repro.analysis.labeling import label_windows
from repro.analysis.metrics import compute_metrics
from repro.experiments.report import format_table
from repro.trace.event import EventTypeRegistry
from repro.trace.stream import TraceStream


def _windows(paper_experiment, paper_config):
    """Re-window the shared trace and split reference / live parts."""
    stream = paper_experiment.trace.stream()
    reference, live = stream.split_reference(
        paper_config.monitor.reference_duration_us,
        window_duration_us=paper_config.monitor.window_duration_us,
    )
    return reference, list(live)


def test_baseline_comparison(paper_experiment, paper_config, benchmark):
    reference, live = _windows(paper_experiment, paper_config)
    ground_truth = paper_experiment.ground_truth

    detector_metrics = paper_experiment.metrics
    budget = paper_experiment.monitor_result.report.recorded_windows / max(
        paper_experiment.monitor_result.report.total_windows, 1
    )

    def run_all_baselines():
        results = {}
        results["random"] = run_baseline(
            RandomSamplingBaseline(budget_fraction=budget, seed=7), live, reference
        )
        results["periodic"] = run_baseline(
            PeriodicSamplingBaseline(record_every=max(1, int(round(1 / budget)))),
            live,
            reference,
        )
        results["zscore"] = run_baseline(ZScoreBaseline(z_threshold=3.0), live, reference)
        results["kl-only"] = run_baseline(
            KlOnlyDetectorBaseline(
                kl_threshold=paper_config.detector.kl_threshold * 4,
                registry=EventTypeRegistry.with_default_types(),
            ),
            live,
            reference,
        )
        return results

    results = benchmark.pedantic(run_all_baselines, rounds=1, iterations=1)

    rows = [
        [
            "pmf + LOF (paper)",
            detector_metrics.precision,
            detector_metrics.recall,
            detector_metrics.f1,
            paper_experiment.monitor_result.report.reduction_factor,
        ]
    ]
    baseline_metrics = {}
    for name, result in results.items():
        labels = label_windows(result.decisions, ground_truth)
        metrics = compute_metrics(labels, result.report)
        baseline_metrics[name] = metrics
        rows.append(
            [name, metrics.precision, metrics.recall, metrics.f1, metrics.reduction_factor]
        )

    print()
    print(
        format_table(
            ["strategy", "precision", "recall", "f1", "reduction factor"], rows
        )
    )

    # the paper's approach dominates the budget-matched blind samplers on F1
    assert detector_metrics.f1 > baseline_metrics["random"].f1 + 0.2
    assert detector_metrics.f1 > baseline_metrics["periodic"].f1 + 0.2
    # and beats the count-only monitor, which is blind to mix changes
    assert detector_metrics.f1 > baseline_metrics["zscore"].f1
