"""Repository-level pytest configuration.

Makes the ``repro`` package importable straight from the source tree so the
test and benchmark suites work even before ``pip install -e .`` has run
(useful in offline environments where editable installs are awkward).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
