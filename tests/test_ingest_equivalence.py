"""End-to-end ingest equivalence: columnar path == object path, bit for bit.

The acceptance bar of the columnar ingest plane: for the same trace file,
monitoring through ``run_on_columns`` / ``run_on_file`` (vectorized decode,
array-native windowing, lazy batches, optional prefetch) must reproduce the
object path (``read_trace`` -> ``TraceStream`` -> ``monitor_windows``)
exactly — per-window decisions, recorder reports, recorded output bytes and
detector counters — for the single-stream monitor, the serial fleet and the
process-parallel fleet alike.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.fleet import ShardedTraceMonitor
from repro.analysis.model import ReferenceModel
from repro.analysis.monitor import TraceMonitor
from repro.config import DetectorConfig, MonitorConfig
from repro.experiments.endurance import run_fleet_endurance_experiment
from repro.config import EnduranceConfig
from repro.errors import ExperimentError
from repro.trace.columns import TraceColumns
from repro.trace.event import EventTypeRegistry
from repro.trace.generator import SyntheticTraceGenerator
from repro.trace.reader import read_trace, read_trace_columns
from repro.trace.stream import TraceStream, windows_by_duration
from repro.trace.writer import write_trace

MIX = {
    "mb_row_decode": 8.0,
    "frame_decode_start": 1.0,
    "frame_decode_end": 1.0,
    "vsync": 1.0,
    "audio_decode": 2.0,
    "buffer_push": 1.0,
    "buffer_pop": 1.0,
    "syscall_enter": 1.0,
}

WINDOW_US = 40_000


def generated_events(seed: int, duration_s: float):
    return list(
        SyntheticTraceGenerator(MIX, rate_per_s=4000, seed=seed).events(duration_s)
    )


def assert_results_identical(a, b):
    assert a.decisions == b.decisions
    assert a.report == b.report
    assert a.recorded_indices == b.recorded_indices
    assert a.detector_stats == b.detector_stats
    assert a.reference_window_count == b.reference_window_count


@pytest.fixture(scope="module")
def trace_files(tmp_path_factory):
    root = tmp_path_factory.mktemp("traces")
    events = generated_events(seed=5, duration_s=25.0)
    return {
        "jsonl": write_trace(events, root / "trace.jsonl", fmt="jsonl"),
        "binary": write_trace(events, root / "trace.bin", fmt="binary"),
    }


# ---------------------------------------------------------------------- #
# Single-stream monitor
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("fmt", ["jsonl", "binary"])
@pytest.mark.parametrize(
    "batch_size,context,prefetch",
    [(1, 0, 0), (64, 2, 0), (64, 0, 4)],
)
def test_monitor_file_columnar_equals_object(
    tmp_path, trace_files, fmt, batch_size, context, prefetch
):
    path = trace_files[fmt]
    detector_config = DetectorConfig(k_neighbours=5, lof_threshold=1.1)
    monitor_config = MonitorConfig(
        reference_duration_us=8_000_000,
        batch_size=batch_size,
        record_context_windows=context,
    )
    out_object = tmp_path / "object.jsonl"
    out_columnar = tmp_path / "columnar.jsonl"

    object_monitor = TraceMonitor(
        detector_config, monitor_config, EventTypeRegistry.with_default_types()
    )
    object_result = object_monitor.run_on_stream(
        TraceStream(iter(read_trace(path))), output_path=out_object
    )
    columnar_monitor = TraceMonitor(
        detector_config, monitor_config, EventTypeRegistry.with_default_types()
    )
    columnar_result = columnar_monitor.run_on_file(
        path, output_path=out_columnar, prefetch_batches=prefetch
    )

    assert_results_identical(object_result, columnar_result)
    assert object_result.n_anomalous > 0  # the equivalence is not vacuous
    assert out_object.read_bytes() == out_columnar.read_bytes()
    assert object_monitor.registry.names == columnar_monitor.registry.names


@pytest.mark.parametrize("fmt", ["jsonl", "binary"])
def test_monitor_file_with_curated_model(tmp_path, trace_files, fmt):
    """Model-provided monitoring (no reference split) is identical too."""
    path = trace_files[fmt]
    registry = EventTypeRegistry.with_default_types()
    reference = list(
        windows_by_duration(iter(generated_events(seed=99, duration_s=10.0)), WINDOW_US)
    )
    model = ReferenceModel(k_neighbours=5).learn(reference, registry)
    detector_config = DetectorConfig(k_neighbours=5, lof_threshold=1.1)
    monitor_config = MonitorConfig(batch_size=32)

    object_result = TraceMonitor(
        detector_config, monitor_config, EventTypeRegistry.with_default_types()
    ).run_on_stream(TraceStream(iter(read_trace(path))), model=model)
    columnar_result = TraceMonitor(
        detector_config, monitor_config, EventTypeRegistry.with_default_types()
    ).run_on_columns(read_trace_columns(path), model=model)
    assert_results_identical(object_result, columnar_result)


# ---------------------------------------------------------------------- #
# Fleet (serial and process-parallel)
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def fleet_fixture():
    registry = EventTypeRegistry.with_default_types()
    reference = list(
        windows_by_duration(iter(generated_events(seed=99, duration_s=12.0)), WINDOW_US)
    )
    model = ReferenceModel(k_neighbours=5).learn(reference, registry)
    shards_events = {
        f"stream-{i:02d}": generated_events(seed=10 + i, duration_s=8.0)
        for i in range(4)
    }
    return model, shards_events


@pytest.mark.parametrize("fleet_workers", [1, 2])
def test_fleet_columnar_equals_object(tmp_path, fleet_fixture, fleet_workers):
    model, shards_events = fleet_fixture
    detector_config = DetectorConfig(k_neighbours=5, lof_threshold=1.1)
    monitor_config = MonitorConfig(
        batch_size=32, record_context_windows=1, fleet_workers=fleet_workers
    )

    object_dir = tmp_path / "object"
    columnar_dir = tmp_path / "columnar"
    object_fleet = ShardedTraceMonitor(
        detector_config, monitor_config, EventTypeRegistry.with_default_types()
    )
    object_result = object_fleet.monitor_shards(
        {
            label: list(windows_by_duration(iter(events), WINDOW_US))
            for label, events in shards_events.items()
        },
        model,
        output_dir=object_dir,
    )
    columnar_fleet = ShardedTraceMonitor(
        detector_config, monitor_config, EventTypeRegistry.with_default_types()
    )
    columnar_result = columnar_fleet.run_on_columns(
        {
            label: TraceColumns.from_events(events)
            for label, events in shards_events.items()
        },
        model,
        output_dir=columnar_dir,
    )

    assert object_result.shard_labels == columnar_result.shard_labels
    for label in object_result.shard_labels:
        assert_results_identical(
            object_result.shard(label), columnar_result.shard(label)
        )
        assert (object_dir / f"{label}.jsonl").read_bytes() == (
            columnar_dir / f"{label}.jsonl"
        ).read_bytes()
    assert object_result.n_anomalous > 0
    assert object_result.report == columnar_result.report
    assert object_result.detector_stats == columnar_result.detector_stats


def test_fleet_columnar_parallel_equals_serial(tmp_path, fleet_fixture):
    """Columnar shards through the worker pool == columnar serial, bit for bit."""
    model, shards_events = fleet_fixture
    detector_config = DetectorConfig(k_neighbours=5, lof_threshold=1.1)
    columns = {
        label: TraceColumns.from_events(events)
        for label, events in shards_events.items()
    }
    results = {}
    for workers in (1, 3):
        fleet = ShardedTraceMonitor(
            detector_config,
            MonitorConfig(batch_size=32, fleet_workers=workers),
            EventTypeRegistry.with_default_types(),
        )
        out = tmp_path / f"w{workers}"
        results[workers] = (fleet.monitor_shards(dict(columns), model, output_dir=out), out)
    serial, serial_dir = results[1]
    parallel, parallel_dir = results[3]
    assert serial.shard_labels == parallel.shard_labels
    for label in serial.shard_labels:
        assert_results_identical(serial.shard(label), parallel.shard(label))
        assert (serial_dir / f"{label}.jsonl").read_bytes() == (
            parallel_dir / f"{label}.jsonl"
        ).read_bytes()


def test_fleet_binary_recording_output(tmp_path, fleet_fixture):
    """Binary shard files carry the .bin suffix and round-trip via read_trace."""
    model, shards_events = fleet_fixture
    fleet = ShardedTraceMonitor(
        DetectorConfig(k_neighbours=5, lof_threshold=1.1),
        MonitorConfig(batch_size=32, recording_format="binary"),
        EventTypeRegistry.with_default_types(),
    )
    out = tmp_path / "binary"
    result = fleet.run_on_columns(
        {
            label: TraceColumns.from_events(events)
            for label, events in shards_events.items()
        },
        model,
        output_dir=out,
    )
    for label, shard in result.shard_results.items():
        path = out / f"{label}.bin"
        assert path.exists()
        recorded = read_trace(path) if shard.report.recorded_bytes else []
        assert len(recorded) == shard.report.recorded_events


# ---------------------------------------------------------------------- #
# Experiments layer
# ---------------------------------------------------------------------- #
def test_fleet_endurance_columnar_ingest_identical():
    config = EnduranceConfig.scaled_paper_setup(duration_s=420.0, reference_s=120.0)
    object_run = run_fleet_endurance_experiment(
        config, n_streams=2, ingest="objects"
    )
    columnar_run = run_fleet_endurance_experiment(
        config, n_streams=2, ingest="columnar"
    )
    assert object_run.reference_window_count == columnar_run.reference_window_count
    assert (
        object_run.fleet_result.shard_labels == columnar_run.fleet_result.shard_labels
    )
    for label in object_run.fleet_result.shard_labels:
        assert_results_identical(
            object_run.fleet_result.shard(label),
            columnar_run.fleet_result.shard(label),
        )
    assert object_run.summary() == columnar_run.summary()


def test_fleet_endurance_rejects_unknown_ingest():
    with pytest.raises(ExperimentError, match="unknown ingest mode"):
        run_fleet_endurance_experiment(n_streams=1, ingest="quantum")
