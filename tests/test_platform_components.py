"""Tests for cores, tasks, jobs, the memory model, the tracer and interrupts."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.platform.cpu import Core
from repro.platform.interrupt import TimerInterruptSource
from repro.platform.memory import MemoryModel
from repro.platform.simulator import Simulator
from repro.platform.task import Job, Task
from repro.platform.tracer import HardwareTracer
from repro.trace.event import EventType


class TestCore:
    def test_speed_factor_scales_with_frequency(self):
        assert Core(0, frequency_mhz=2000).speed_factor == pytest.approx(1.0)
        assert Core(0, frequency_mhz=1000).speed_factor == pytest.approx(0.5)

    def test_wall_time_and_service_are_inverse(self):
        core = Core(0, frequency_mhz=1000)
        assert core.wall_time_for(10.0) == pytest.approx(20.0)
        assert core.service_in(20.0) == pytest.approx(10.0)

    def test_utilisation(self):
        core = Core(0)
        core.account_busy(50.0)
        assert core.utilisation(100.0) == pytest.approx(0.5)
        assert core.utilisation(0.0) == 0.0

    def test_invalid_values_rejected(self):
        with pytest.raises(SimulationError):
            Core(-1)
        with pytest.raises(SimulationError):
            Core(0, frequency_mhz=0)
        with pytest.raises(SimulationError):
            Core(0).wall_time_for(-1)
        with pytest.raises(SimulationError):
            Core(0).account_busy(-1)


class TestTaskAndJob:
    def test_task_requires_name(self):
        with pytest.raises(SimulationError):
            Task(name="")

    def test_job_consumption(self):
        job = Job(task=Task("decoder"), service_us=100.0)
        assert not job.is_complete
        assert job.consume(60.0) == pytest.approx(60.0)
        assert job.consume(60.0) == pytest.approx(40.0)  # clipped to remaining
        assert job.is_complete

    def test_job_rejects_invalid_values(self):
        with pytest.raises(SimulationError):
            Job(task=Task("t"), service_us=0.0)
        with pytest.raises(SimulationError):
            Job(task=Task("t"), service_us=10.0).consume(-1.0)

    def test_turnaround_requires_both_timestamps(self):
        job = Job(task=Task("t"), service_us=10.0)
        assert job.turnaround_us is None
        job.submitted_at_us = 100
        job.completed_at_us = 180
        assert job.turnaround_us == pytest.approx(80.0)

    def test_job_ids_are_unique_and_increasing(self):
        first = Job(task=Task("t"), service_us=1.0)
        second = Job(task=Task("t"), service_us=1.0)
        assert second.job_id > first.job_id


class TestMemoryModel:
    def test_no_contention_for_single_task(self):
        model = MemoryModel(contention_per_task=0.2)
        assert model.slowdown(0) == 1.0
        assert model.slowdown(1) == 1.0

    def test_linear_slowdown(self):
        model = MemoryModel(contention_per_task=0.2)
        assert model.slowdown(3) == pytest.approx(1.4)
        assert model.effective_speed(3) == pytest.approx(1 / 1.4)

    def test_stall_events_only_under_contention(self):
        model = MemoryModel(stall_event_period_us=1000)
        assert model.stall_events_in(5_000, 1) == 0
        assert model.stall_events_in(5_000, 2) == 5

    def test_invalid_values_rejected(self):
        with pytest.raises(SimulationError):
            MemoryModel(contention_per_task=-0.1)
        with pytest.raises(SimulationError):
            MemoryModel(stall_event_period_us=0)
        with pytest.raises(SimulationError):
            MemoryModel().slowdown(-1)


class TestHardwareTracer:
    def test_collects_events_in_order(self):
        tracer = HardwareTracer()
        tracer.emit(10, EventType.TIMER_TICK)
        tracer.emit(20, EventType.VSYNC, core=1, task="sink", args={"x": 1})
        events = tracer.events()
        assert [event.timestamp_us for event in events] == [10, 20]
        assert events[1].args == {"x": 1}
        assert tracer.n_events == 2

    def test_small_reorderings_are_clamped(self):
        tracer = HardwareTracer()
        tracer.emit(100, "a")
        tracer.emit(90, "b")  # emitted late by a same-instant callback
        assert [event.timestamp_us for event in tracer.events()] == [100, 100]

    def test_disabled_tracer_drops_everything(self):
        tracer = HardwareTracer(enabled=False)
        tracer.emit(0, "a")
        assert tracer.n_events == 0
        assert tracer.n_dropped == 1

    def test_event_filter(self):
        tracer = HardwareTracer(event_filter={"vsync"})
        tracer.emit(0, EventType.VSYNC)
        tracer.emit(1, EventType.SCHED_SWITCH)
        assert tracer.n_events == 1
        assert tracer.n_dropped == 1
        assert tracer.events()[0].etype == "vsync"

    def test_buffer_batches(self):
        tracer = HardwareTracer(buffer_events=3)
        for t in range(8):
            tracer.emit(t, "tick")
        batches = list(tracer.buffer_batches())
        assert [len(batch) for batch in batches] == [3, 3, 2]
        assert tracer.flush_count == 2

    def test_stream_wraps_events(self):
        tracer = HardwareTracer()
        tracer.emit(0, "a")
        tracer.emit(1, "b")
        assert [event.etype for event in tracer.stream().events()] == ["a", "b"]

    def test_clear_resets_state(self):
        tracer = HardwareTracer(buffer_events=1)
        tracer.emit(5, "a")
        tracer.clear()
        assert tracer.n_events == 0
        assert tracer.flush_count == 0
        tracer.emit(1, "b")  # timestamps may restart after clear
        assert tracer.events()[0].timestamp_us == 1

    def test_invalid_buffer_size_rejected(self):
        with pytest.raises(SimulationError):
            HardwareTracer(buffer_events=0)


class TestTimerInterruptSource:
    def test_emits_irq_triplets(self):
        simulator = Simulator()
        tracer = HardwareTracer()
        timer = TimerInterruptSource(simulator, tracer, period_us=1000)
        timer.start(until_us=3500)
        simulator.run(until_us=3500)
        types = [event.etype for event in tracer.events()]
        assert types.count("irq_enter") == 3
        assert types.count("timer_tick") == 3
        assert types.count("irq_exit") == 3
        assert timer.ticks == 3

    def test_invalid_parameters_rejected(self):
        simulator, tracer = Simulator(), HardwareTracer()
        with pytest.raises(SimulationError):
            TimerInterruptSource(simulator, tracer, period_us=0)
        with pytest.raises(SimulationError):
            TimerInterruptSource(simulator, tracer, service_time_us=-1)
