"""Tests for the baseline recording strategies and the periodicity extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.baselines import (
    KlOnlyDetectorBaseline,
    PeriodicSamplingBaseline,
    RandomSamplingBaseline,
    ZScoreBaseline,
    run_baseline,
)
from repro.analysis.periodic import (
    CompactionReport,
    PeriodicityCompactor,
    estimate_dominant_period,
)
from repro.errors import ModelError
from repro.trace.event import EventTypeRegistry, TraceEvent
from repro.trace.generator import PeriodicTraceGenerator, SyntheticTraceGenerator
from repro.trace.stream import windows_by_duration
from repro.trace.window import TraceWindow


@pytest.fixture()
def reference_and_live(normal_mix, anomaly_mix):
    reference_gen = SyntheticTraceGenerator(normal_mix, rate_per_s=2_000, seed=1)
    reference = list(windows_by_duration(reference_gen.events(4.0), 40_000))
    live_gen = PeriodicTraceGenerator(
        normal_mix, anomaly_mix, anomaly_intervals=[(5.0, 7.0)], rate_per_s=2_000, seed=2
    )
    live = list(windows_by_duration(live_gen.events(12.0), 40_000))
    return reference, live


class TestSamplingBaselines:
    def test_random_sampling_respects_budget(self, reference_and_live):
        reference, live = reference_and_live
        result = run_baseline(RandomSamplingBaseline(0.25, seed=3), live, reference)
        assert 0.15 < result.recording_rate < 0.35
        assert result.name == "random-sampling"
        assert result.parameters["budget_fraction"] == 0.25

    def test_random_sampling_validates_budget(self):
        with pytest.raises(ModelError):
            RandomSamplingBaseline(1.5)

    def test_periodic_sampling_every_n(self, reference_and_live):
        reference, live = reference_and_live
        result = run_baseline(PeriodicSamplingBaseline(4), live, reference)
        assert result.n_recorded == pytest.approx(len(live) / 4, abs=1)
        with pytest.raises(ModelError):
            PeriodicSamplingBaseline(0)

    def test_reports_are_consistent_with_decisions(self, reference_and_live):
        reference, live = reference_and_live
        result = run_baseline(PeriodicSamplingBaseline(3), live, reference)
        assert result.report.recorded_windows == result.n_recorded
        assert result.report.total_windows == len(live)


class TestZScoreBaseline:
    def test_detects_rate_changes_only(self, normal_mix):
        reference_gen = SyntheticTraceGenerator(normal_mix, rate_per_s=2_000, seed=4)
        reference = list(windows_by_duration(reference_gen.events(4.0), 40_000))
        # Same mix but three times the rate: the z-score baseline fires.
        burst_gen = SyntheticTraceGenerator(normal_mix, rate_per_s=6_000, seed=5)
        burst = list(windows_by_duration(burst_gen.events(2.0), 40_000))
        result = run_baseline(ZScoreBaseline(z_threshold=3.0), burst, reference)
        assert result.recording_rate > 0.9

    def test_blind_to_mix_changes_at_same_rate(self, normal_mix, anomaly_mix):
        reference_gen = SyntheticTraceGenerator(normal_mix, rate_per_s=2_000, seed=6)
        reference = list(windows_by_duration(reference_gen.events(4.0), 40_000))
        shifted_gen = SyntheticTraceGenerator(anomaly_mix, rate_per_s=2_000, seed=7)
        shifted = list(windows_by_duration(shifted_gen.events(2.0), 40_000))
        result = run_baseline(ZScoreBaseline(z_threshold=3.0), shifted, reference)
        # the whole point of the paper's pmf approach: a pure count monitor misses this
        assert result.recording_rate < 0.3

    def test_requires_fit(self, normal_mix):
        baseline = ZScoreBaseline()
        window = TraceWindow.from_events([TraceEvent(0, "a")])
        with pytest.raises(ModelError):
            baseline.decide(window)
        with pytest.raises(ModelError):
            baseline.fit([window])  # needs at least two windows
        with pytest.raises(ModelError):
            ZScoreBaseline(z_threshold=0)


class TestKlOnlyBaseline:
    def test_flags_distribution_changes(self, reference_and_live):
        reference, live = reference_and_live
        result = run_baseline(
            KlOnlyDetectorBaseline(kl_threshold=0.6, registry=EventTypeRegistry()),
            live,
            reference,
        )
        flagged_times = [
            d.start_us / 1e6 for d in result.decisions if d.anomalous
        ]
        assert flagged_times
        inside = [t for t in flagged_times if 4.9 <= t < 7.1]
        # the KL-only ablation is noticeably noisier than the full detector,
        # but the bulk of what it flags still falls inside the anomaly
        assert len(inside) / len(flagged_times) > 0.5

    def test_requires_fit_and_valid_threshold(self):
        with pytest.raises(ModelError):
            KlOnlyDetectorBaseline(kl_threshold=-1)
        baseline = KlOnlyDetectorBaseline()
        with pytest.raises(ModelError):
            baseline.decide(TraceWindow.from_events([TraceEvent(0, "a")]))
        with pytest.raises(ModelError):
            baseline.fit([TraceWindow(index=0, start_us=0, end_us=10)])

    def test_empty_windows_never_recorded(self, reference_and_live):
        reference, _ = reference_and_live
        baseline = KlOnlyDetectorBaseline()
        baseline.fit(reference)
        assert baseline.decide(TraceWindow(index=0, start_us=0, end_us=10)) is False


class TestDominantPeriod:
    def test_detects_known_period(self):
        signal = np.tile([10.0, 2.0, 3.0, 4.0, 5.0], 20)
        assert estimate_dominant_period(signal) == 5

    def test_returns_none_for_flat_or_short_signals(self):
        assert estimate_dominant_period([1.0, 1.0, 1.0, 1.0, 1.0, 1.0]) is None
        assert estimate_dominant_period([1.0, 2.0]) is None

    def test_noise_tolerance(self):
        rng = np.random.default_rng(0)
        signal = np.tile([10.0, 2.0, 3.0, 4.0], 30) + rng.normal(0, 0.3, 120)
        assert estimate_dominant_period(signal) == 4

    def test_invalid_min_lag_rejected(self):
        with pytest.raises(ModelError):
            estimate_dominant_period(list(range(20)), min_lag=0)


class TestPeriodicityCompactor:
    def _repeating_windows(self, n=60, period=4):
        windows = []
        for index in range(n):
            phase = index % period
            events = [
                TraceEvent(index * 1_000 + i, f"type_{phase}_{i % (phase + 1)}")
                for i in range(10)
            ]
            windows.append(TraceWindow.from_events(events, index=index))
        return windows

    def test_deduplicates_repeating_behaviour(self):
        windows = self._repeating_windows()
        compactor = PeriodicityCompactor(similarity_threshold=0.05, phase_buckets=4)
        kept, report = compactor.compact(windows)
        assert report.deduplicated_windows > 0
        assert report.kept_windows + report.deduplicated_windows == report.input_windows
        assert report.output_bytes < report.input_bytes
        assert report.additional_reduction_factor > 1.0
        assert len(kept) == report.kept_windows

    def test_distinct_windows_are_kept(self):
        rng = np.random.default_rng(3)
        windows = []
        for index in range(30):
            events = [
                TraceEvent(index * 1_000 + i, f"unique_{index}_{rng.integers(0, 50)}")
                for i in range(10)
            ]
            windows.append(TraceWindow.from_events(events, index=index))
        compactor = PeriodicityCompactor(similarity_threshold=0.01)
        kept, report = compactor.compact(windows)
        assert report.deduplicated_windows == 0
        assert len(kept) == 30

    def test_empty_windows_pass_through(self):
        windows = [TraceWindow(index=i, start_us=i * 10, end_us=i * 10 + 10) for i in range(5)]
        kept, report = PeriodicityCompactor().compact(windows)
        assert len(kept) == 5
        assert report.deduplicated_windows == 0

    def test_report_serialisation(self):
        report = CompactionReport(10, 6, 4, 1_000, 700, period_windows=5)
        payload = report.to_dict()
        assert payload["deduplicated_windows"] == 4
        assert payload["additional_reduction_factor"] == pytest.approx(1_000 / 700)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ModelError):
            PeriodicityCompactor(similarity_threshold=-1)
        with pytest.raises(ModelError):
            PeriodicityCompactor(phase_buckets=0)
