"""Tests for the video workload model, the frame buffer and the QoS monitor."""

from __future__ import annotations

import pytest

from repro.config import MediaConfig
from repro.errors import PipelineError
from repro.media.bufferqueue import FrameBuffer
from repro.media.qos import QosMessage, QosMonitor
from repro.media.workload import FrameKind, VideoWorkload
from repro.platform.tracer import HardwareTracer


@pytest.fixture()
def workload():
    return VideoWorkload(MediaConfig(duration_s=10.0, seed=3))


class TestVideoWorkload:
    def test_frame_count_matches_duration(self, workload):
        assert workload.n_frames == 250
        assert workload.frame_period_us == pytest.approx(40_000.0)

    def test_gop_structure(self, workload):
        config = workload.config
        assert workload.kind_of(0) is FrameKind.I
        assert workload.kind_of(config.gop_length) is FrameKind.I
        kinds = {workload.kind_of(i) for i in range(1, config.gop_length)}
        assert FrameKind.P in kinds and FrameKind.B in kinds

    def test_frames_are_deterministic(self):
        first = VideoWorkload(MediaConfig(duration_s=5.0, seed=9))
        second = VideoWorkload(MediaConfig(duration_s=5.0, seed=9))
        assert [f.decode_cost_us for f in first.frames()] == [
            f.decode_cost_us for f in second.frames()
        ]

    def test_different_seeds_differ(self):
        first = VideoWorkload(MediaConfig(duration_s=5.0, seed=1))
        second = VideoWorkload(MediaConfig(duration_s=5.0, seed=2))
        assert [f.decode_cost_us for f in first.frames()] != [
            f.decode_cost_us for f in second.frames()
        ]

    def test_i_frames_cost_more_than_b_frames(self, workload):
        costs = {FrameKind.I: [], FrameKind.P: [], FrameKind.B: []}
        for frame in workload.frames():
            costs[frame.kind].append(frame.decode_cost_us)
        mean = lambda values: sum(values) / len(values)
        assert mean(costs[FrameKind.I]) > mean(costs[FrameKind.P]) > mean(costs[FrameKind.B])

    def test_decode_cost_leaves_real_time_headroom(self, workload):
        # the decoder must on average be faster than real time, otherwise no
        # reference behaviour exists and the paper's setup makes no sense
        assert workload.mean_decode_cost_us() < 0.8 * workload.frame_period_us

    def test_presentation_timestamps_are_regular(self, workload):
        frames = [workload.frame(i) for i in range(5)]
        deltas = [
            second.presentation_us - first.presentation_us
            for first, second in zip(frames, frames[1:])
        ]
        assert all(delta == 40_000 for delta in deltas)

    def test_out_of_range_frame_rejected(self, workload):
        with pytest.raises(PipelineError):
            workload.frame(workload.n_frames)

    def test_audio_chunk_period(self, workload):
        assert workload.audio_chunk_period_us() == pytest.approx(1024 / 48_000 * 1e6)


class TestFrameBuffer:
    def _buffer(self, capacity=3):
        return FrameBuffer(capacity, HardwareTracer()), VideoWorkload(MediaConfig(duration_s=1.0))

    def test_push_pop_fifo(self):
        buffer, workload = self._buffer()
        for index in range(3):
            assert buffer.push(workload.frame(index), timestamp_us=index)
        assert buffer.is_full
        assert buffer.pop(10).index == 0
        assert buffer.pop(11).index == 1
        assert buffer.level == 1
        assert buffer.peak_level == 3

    def test_overrun_and_underrun_are_traced(self):
        buffer, workload = self._buffer(capacity=1)
        assert buffer.push(workload.frame(0), 0)
        assert not buffer.push(workload.frame(1), 1)   # overrun
        assert buffer.overruns == 1
        buffer.pop(2)
        assert buffer.pop(3) is None                   # underrun
        assert buffer.underruns == 1
        types = [event.etype for event in buffer.tracer.events()]
        assert "buffer_overrun" in types and "buffer_underrun" in types

    def test_fill_fraction_and_level_event(self):
        buffer, workload = self._buffer(capacity=4)
        buffer.push(workload.frame(0), 0)
        assert buffer.fill_fraction() == pytest.approx(0.25)
        buffer.emit_level(5)
        assert buffer.tracer.events()[-1].etype == "buffer_level"

    def test_invalid_capacity_rejected(self):
        with pytest.raises(PipelineError):
            FrameBuffer(0, HardwareTracer())


class TestQosMonitor:
    def test_messages_collected_without_trace_mirroring(self):
        tracer = HardwareTracer()
        qos = QosMonitor(tracer)
        qos.report(100, "underrun")
        qos.report(200, "frame_drop", frame_index=3, lateness_us=80_000)
        assert qos.n_messages == 2
        assert tracer.n_events == 0  # side channel only by default
        assert qos.timestamps_us() == [100, 200]

    def test_mirroring_emits_trace_events(self):
        tracer = HardwareTracer()
        qos = QosMonitor(tracer, mirror_to_trace=True)
        qos.report(100, "underrun")
        assert tracer.n_events == 1
        assert tracer.events()[0].etype == "qos_error"

    def test_messages_between(self):
        qos = QosMonitor(HardwareTracer())
        for t in (10, 20, 30):
            qos.report(t, "underrun")
        assert [m.timestamp_us for m in qos.messages_between(15, 31)] == [20, 30]

    def test_count_by_reason(self):
        messages = [QosMessage(1, "underrun"), QosMessage(2, "underrun"), QosMessage(3, "late_frame")]
        assert QosMonitor.count_by_reason(messages) == {"underrun": 2, "late_frame": 1}

    def test_invalid_messages_rejected(self):
        with pytest.raises(PipelineError):
            QosMessage(-1, "underrun")
        with pytest.raises(PipelineError):
            QosMessage(1, "")
