"""Regression tests for teardown defects surfaced by the static checkers.

Both failed before their fixes:

* TD206 (recorder.py): ``SelectiveTraceRecorder.close()`` ran ``flush()``
  outside any try/finally, so a flush error mid-write leaked the OS handle
  and left the recorder reusable in a half-written state.
* TD207 (fleet.py): the serial fleet closed shard recorders in a bare
  ``finally`` loop, so the first recorder whose ``close()`` raised aborted
  the loop and leaked every later shard's output file — despite the
  documented guarantee that all sibling shards close their files.
"""

from __future__ import annotations

import pytest

from repro.analysis.fleet import ShardedTraceMonitor
from repro.analysis.model import ReferenceModel
from repro.analysis.recorder import SelectiveTraceRecorder
from repro.config import DetectorConfig, MonitorConfig
from repro.errors import RecorderError
from repro.trace.event import EventTypeRegistry
from repro.trace.generator import SyntheticTraceGenerator
from repro.trace.stream import windows_by_duration

WINDOW_US = 40_000
MIX = {"mb_row_decode": 8.0, "frame_display": 1.0, "vsync": 1.0, "audio_decode": 2.0}


class TestRecorderCloseIsExceptionSafe:
    def test_failing_flush_still_releases_the_handle(self, tmp_path, monkeypatch):
        recorder = SelectiveTraceRecorder(output_path=tmp_path / "out.jsonl")
        handle = recorder._handle
        assert handle is not None and not handle.closed

        def boom() -> None:
            raise RecorderError("disk full mid-flush")

        monkeypatch.setattr(recorder, "flush", boom)
        with pytest.raises(RecorderError, match="disk full"):
            recorder.close()

        # The flush error propagated, but the file handle must not leak and
        # the recorder must be unusable afterwards.
        assert handle.closed
        assert recorder._handle is None
        assert recorder.closed

    def test_close_after_failed_close_is_a_noop(self, tmp_path, monkeypatch):
        recorder = SelectiveTraceRecorder(output_path=tmp_path / "out.jsonl")

        def boom() -> None:
            raise RecorderError("disk full mid-flush")

        monkeypatch.setattr(recorder, "flush", boom)
        with pytest.raises(RecorderError):
            recorder.close()
        recorder.close()  # second close must not re-raise or re-open anything
        assert recorder.closed


class TestFleetClosesEveryShard:
    def test_one_failing_recorder_close_does_not_leak_the_others(
        self, tmp_path, monkeypatch
    ):
        registry = EventTypeRegistry()
        for name in MIX:
            registry.register(name)
        generator = SyntheticTraceGenerator(MIX, rate_per_s=2_000, seed=7)
        reference = list(windows_by_duration(generator.events(10.0), WINDOW_US))
        model = ReferenceModel(k_neighbours=10).learn(reference, registry)

        def shard_windows(seed: int):
            gen = SyntheticTraceGenerator(MIX, rate_per_s=2_000, seed=seed)
            return list(windows_by_duration(gen.events(2.0), WINDOW_US))

        closed: list[str] = []
        real_close = SelectiveTraceRecorder.close

        def tracking_close(self) -> None:
            name = self.output_path.name if self.output_path else ""
            if name.startswith("bad") and not self.closed:
                raise RecorderError(f"simulated close failure for {name}")
            closed.append(name)
            real_close(self)

        monkeypatch.setattr(SelectiveTraceRecorder, "close", tracking_close)

        fleet = ShardedTraceMonitor(
            DetectorConfig(k_neighbours=10),
            MonitorConfig(window_duration_us=WINDOW_US),
            EventTypeRegistry(registry.names),
        )
        shards = {
            "bad-shard": iter(shard_windows(100)),
            "ok-shard": iter(shard_windows(101)),
        }
        with pytest.raises(RecorderError, match="bad-shard"):
            fleet.monitor_shards(shards, model, output_dir=tmp_path)

        # Before the fix the close loop stopped at the first failure, so
        # "ok-shard" leaked its file handle; now every sibling still closes.
        assert "ok-shard.jsonl" in closed
