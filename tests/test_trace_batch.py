"""Tests for the columnar WindowBatch and its builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceFormatError, TraceStreamError
from repro.trace.batch import WindowBatch, batch_windows
from repro.trace.event import EventTypeRegistry, TraceEvent
from repro.trace.generator import SyntheticTraceGenerator
from repro.trace.stream import TraceStream, windows_by_count, windows_by_duration
from repro.trace.window import TraceWindow


def make_windows(duration_s=1.0, rate=2_000, seed=5):
    generator = SyntheticTraceGenerator(
        {"alpha": 3.0, "beta": 1.0, "gamma": 0.5}, rate_per_s=rate, seed=seed
    )
    return list(windows_by_duration(generator.events(duration_s), 40_000))


class TestWindowBatch:
    def test_round_trips_windows_and_event_order(self):
        registry = EventTypeRegistry()
        events = list(
            SyntheticTraceGenerator({"a": 1.0, "b": 2.0}, rate_per_s=5_000, seed=1).events(0.5)
        )
        windows = list(windows_by_count(iter(events), events_per_window=64))
        batch = WindowBatch.from_windows(windows, registry)
        assert batch.to_windows() == tuple(windows)
        # flattened event order survives the columnar encoding
        flat = [e for w in batch.to_windows() for e in w.events]
        assert flat == events
        expected_codes = [registry.code(e.etype) for e in events]
        assert batch.codes.tolist() == expected_codes

    def test_counts_match_window_type_counts(self):
        registry = EventTypeRegistry()
        windows = make_windows()
        batch = WindowBatch.from_windows(windows, registry)
        assert len(batch) == len(windows)
        assert batch.n_events == sum(len(w) for w in windows)
        for position, window in enumerate(windows):
            codes = batch.window_codes(position)
            for name, count in window.type_counts().items():
                assert int((codes == registry.code(name)).sum()) == count

    def test_metadata_arrays(self):
        registry = EventTypeRegistry()
        windows = make_windows()
        batch = WindowBatch.from_windows(windows, registry)
        assert batch.indices.tolist() == [w.index for w in windows]
        assert batch.start_us.tolist() == [w.start_us for w in windows]
        assert batch.end_us.tolist() == [w.end_us for w in windows]
        assert batch.event_counts.tolist() == [len(w) for w in windows]

    def test_dims_record_sequential_registry_growth(self):
        registry = EventTypeRegistry()
        windows = [
            TraceWindow.from_events([TraceEvent(0, "a"), TraceEvent(1, "b")]),
            TraceWindow.from_events([TraceEvent(10, "a")]),
            TraceWindow.from_events([TraceEvent(20, "c")]),
        ]
        batch = WindowBatch.from_windows(windows, registry)
        assert batch.dims.tolist() == [2, 2, 3]
        assert batch.dimension == 3

    def test_without_kept_windows_round_trip_raises(self):
        registry = EventTypeRegistry()
        batch = WindowBatch.from_windows(make_windows(), registry, keep_windows=False)
        assert not batch.has_windows
        with pytest.raises(TraceStreamError):
            batch.to_windows()

    def test_register_unknown_disabled_rejects_new_types(self):
        registry = EventTypeRegistry(["known"])
        window = TraceWindow.from_events([TraceEvent(0, "unknown")])
        with pytest.raises(TraceFormatError):
            WindowBatch.from_windows([window], registry, register_unknown=False)

    def test_empty_windows_and_empty_batch(self):
        registry = EventTypeRegistry(["x"])
        empty = TraceWindow(index=0, start_us=0, end_us=40_000)
        batch = WindowBatch.from_windows([empty], registry)
        assert len(batch) == 1
        assert batch.n_events == 0
        assert batch.event_counts.tolist() == [0]
        none = WindowBatch.from_windows([], registry)
        assert len(none) == 0

    def test_raw_array_validation(self):
        with pytest.raises(TraceFormatError):
            WindowBatch(
                codes=np.array([0, 1]),
                offsets=np.array([0, 1]),  # does not end at len(codes)
                indices=np.array([0]),
                start_us=np.array([0]),
                end_us=np.array([10]),
            )
        with pytest.raises(TraceFormatError):
            WindowBatch(
                codes=np.array([0, 5]),
                offsets=np.array([0, 2]),
                indices=np.array([0]),
                start_us=np.array([0]),
                end_us=np.array([10]),
                dimension=2,  # code 5 out of range
            )
        with pytest.raises(TraceFormatError):
            WindowBatch(
                codes=np.array([], dtype=np.int32),
                offsets=np.array([0]),
                indices=np.array([0]),  # one window claimed, zero offsets
                start_us=np.array([0]),
                end_us=np.array([10]),
            )


class TestBatchWindows:
    def test_chunking_sizes_and_order(self):
        registry = EventTypeRegistry()
        windows = make_windows(duration_s=1.0)
        batches = list(batch_windows(iter(windows), registry, batch_size=7))
        sizes = [len(b) for b in batches]
        assert sum(sizes) == len(windows)
        assert all(size == 7 for size in sizes[:-1])
        rebuilt = [w for b in batches for w in b.to_windows()]
        assert rebuilt == windows

    def test_invalid_batch_size(self):
        registry = EventTypeRegistry()
        with pytest.raises(TraceStreamError):
            list(batch_windows(iter([]), registry, batch_size=0))

    def test_stream_window_batches(self):
        registry = EventTypeRegistry()
        generator = SyntheticTraceGenerator({"a": 1.0}, rate_per_s=2_000, seed=2)
        events = list(generator.events(1.0))
        stream = TraceStream(iter(events))
        batches = list(stream.window_batches(registry, batch_size=5))
        windows = [w for b in batches for w in b.to_windows()]
        expected = list(windows_by_duration(iter(events), 40_000))
        assert windows == expected
