"""Columnar ingest plane: decode, windowing and byte-accounting equivalence.

The columnar plane advertises *bit-identity* with the object path at every
stage: ``decode_columns`` reproduces the object decoders, the array-native
windowing reproduces ``windows_by_duration`` / ``windows_by_count`` (incl.
the PR 3 duplicate-boundary-timestamp semantics), the vectorized byte
accounting reproduces ``encoded_window_sizes``, and the lazy batches
reproduce ``batch_windows`` column by column.  Seeded random streams (same
generator as the codec round-trip property suite) drive every assertion.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.errors import TraceFormatError, TraceStreamError
from repro.trace.batch import LazyWindowRef, WindowBatch, batch_windows
from repro.trace.codec import (
    BinaryTraceCodec,
    JsonTraceCodec,
    encoded_window_sizes,
)
from repro.trace.columns import (
    TraceColumns,
    decode_binary_columns,
    decode_json_columns,
    encoded_window_sizes_columns,
    varint_size_array,
)
from repro.trace.codec import _varint_size
from repro.trace.event import EventTypeRegistry, TraceEvent
from repro.trace.pipeline import prefetch_batches
from repro.trace.stream import (
    column_windows_by_count,
    column_windows_by_duration,
    iter_column_batches,
    materialize_layout_windows,
    windows_by_count,
    windows_by_duration,
)

from test_property_roundtrip import random_events

SEEDS = range(8)

WINDOW_US = 40_000


def columns_variants(events):
    """The three columnar sources for one event list, all equivalent."""
    binary = decode_binary_columns(BinaryTraceCodec().encode(events))
    jsonl = decode_json_columns(JsonTraceCodec().encode(events) + "\n")
    memory = TraceColumns.from_events(events)
    return {"binary": binary, "jsonl": jsonl, "events": memory}


# ---------------------------------------------------------------------- #
# Decode equivalence
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", SEEDS)
def test_decode_columns_equals_object_decode(seed):
    events = random_events(random.Random(seed), 300)
    for kind, columns in columns_variants(events).items():
        assert columns.source_kind == kind
        assert len(columns) == len(events)
        assert columns.timestamps_us.tolist() == [e.timestamp_us for e in events]
        assert columns.cores.tolist() == [e.core for e in events]
        names = [columns.type_names[c] for c in columns.type_codes]
        assert names == [e.etype for e in events]
        # Full lazy materialisation reproduces the object decode exactly.
        assert columns.to_events() == tuple(events)
        # Partial slices too (the recorder's actual access pattern).
        assert columns.events(10, 25) == tuple(events[10:25])
        assert columns.events(0, 0) == ()


def test_decode_columns_empty_inputs():
    assert len(decode_json_columns("")) == 0
    assert len(decode_json_columns("\n\n  \n")) == 0
    blob = BinaryTraceCodec().encode([])
    assert len(decode_binary_columns(blob)) == 0
    assert len(TraceColumns.from_events([])) == 0


def test_decode_binary_columns_multi_segment():
    rng = random.Random(42)
    first, second = random_events(rng, 80), random_events(rng, 50)
    blob = BinaryTraceCodec().encode(first) + BinaryTraceCodec().encode(second)
    columns = decode_binary_columns(blob)
    assert columns.to_events() == tuple(first + second)
    assert BinaryTraceCodec().decode(blob) == first + second


def test_decode_binary_columns_rejects_garbage():
    with pytest.raises(TraceFormatError, match="bad magic"):
        decode_binary_columns(b"nope")
    blob = BinaryTraceCodec().encode(random_events(random.Random(1), 10))
    with pytest.raises(TraceFormatError, match="trailing bytes"):
        decode_binary_columns(blob + b"junk")
    with pytest.raises(TraceFormatError, match="truncated"):
        decode_binary_columns(blob[:-3])


def test_decode_json_columns_rejects_malformed_lines():
    with pytest.raises(TraceFormatError, match="malformed JSON event line"):
        decode_json_columns('{"t": 1,\n')
    with pytest.raises(TraceFormatError, match="malformed event record"):
        decode_json_columns('{"type": "x"}\n')  # missing timestamp
    with pytest.raises(TraceFormatError, match="negative timestamp"):
        decode_json_columns('{"t": -4, "type": "x"}\n')


# ---------------------------------------------------------------------- #
# Array-native windowing equivalence
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("emit_empty", [True, False])
def test_duration_windowing_matches_object_path(seed, emit_empty):
    events = random_events(random.Random(seed), 250)
    expected = list(
        windows_by_duration(iter(events), WINDOW_US, emit_empty=emit_empty)
    )
    for columns in columns_variants(events).values():
        layout = column_windows_by_duration(
            columns, WINDOW_US, emit_empty=emit_empty
        )
        assert layout.n_windows == len(expected)
        assert (
            materialize_layout_windows(columns, layout, 0, layout.n_windows)
            == expected
        )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("events_per_window", [1, 3, 32, 1000])
def test_count_windowing_matches_object_path(seed, events_per_window):
    events = random_events(random.Random(seed), 200)
    expected = list(windows_by_count(iter(events), events_per_window))
    for columns in columns_variants(events).values():
        layout = column_windows_by_count(columns, events_per_window)
        assert layout.n_windows == len(expected)
        assert (
            materialize_layout_windows(columns, layout, 0, layout.n_windows)
            == expected
        )


def test_count_windowing_duplicate_boundary_timestamps():
    """The PR 3 semantics: several events sharing the boundary timestamp."""
    events = [
        TraceEvent(timestamp_us=t, etype="alpha")
        for t in [5, 5, 5, 5, 5, 9, 9, 12]
    ]
    expected = list(windows_by_count(iter(events), 2))
    columns = TraceColumns.from_events(events)
    layout = column_windows_by_count(columns, 2)
    produced = materialize_layout_windows(columns, layout, 0, layout.n_windows)
    assert produced == expected
    # The second window starts *at* the duplicated boundary timestamp.
    assert produced[1].start_us == 5


def test_duration_windowing_empty_columns():
    columns = TraceColumns.from_events([])
    layout = column_windows_by_duration(columns, WINDOW_US)
    windows = materialize_layout_windows(columns, layout, 0, layout.n_windows)
    assert windows == list(windows_by_duration(iter([]), WINDOW_US))
    assert column_windows_by_duration(columns, WINDOW_US, emit_empty=False).n_windows == 0
    assert column_windows_by_count(columns, 8).n_windows == 0


def test_column_windowing_validates_input():
    unsorted = TraceColumns.from_events(
        [
            TraceEvent(timestamp_us=10, etype="a"),
            TraceEvent(timestamp_us=3, etype="a"),
        ]
    )
    with pytest.raises(TraceStreamError, match="not sorted"):
        column_windows_by_duration(unsorted, WINDOW_US)
    with pytest.raises(TraceStreamError, match="not sorted"):
        column_windows_by_count(unsorted, 4)
    early = TraceColumns.from_events([TraceEvent(timestamp_us=2, etype="a")])
    with pytest.raises(TraceStreamError, match="precedes stream start"):
        column_windows_by_duration(early, WINDOW_US, start_us=100)
    with pytest.raises(TraceStreamError, match="must be positive"):
        column_windows_by_duration(early, 0)
    with pytest.raises(TraceStreamError, match="must be positive"):
        column_windows_by_count(early, 0)


# ---------------------------------------------------------------------- #
# Vectorized byte accounting
# ---------------------------------------------------------------------- #
def test_varint_size_array_matches_scalar():
    values = np.array(
        [0, 1, 127, 128, 300, 2**14 - 1, 2**14, 2**40, 2**62], dtype=np.int64
    )
    assert varint_size_array(values).tolist() == [_varint_size(int(v)) for v in values]
    with pytest.raises(TraceFormatError, match="negative"):
        varint_size_array(np.array([-1]))


@pytest.mark.parametrize("seed", SEEDS)
def test_window_sizes_match_codec_accounting(seed):
    events = random_events(random.Random(seed), 300)
    expected_windows = list(windows_by_duration(iter(events), WINDOW_US))
    expected = encoded_window_sizes(expected_windows)
    for columns in columns_variants(events).values():
        layout = column_windows_by_duration(columns, WINDOW_US)
        sizes = encoded_window_sizes_columns(columns, layout.event_offsets)
        assert sizes.tolist() == expected


def test_window_sizes_many_event_types_slow_path():
    """> 128 distinct types forces per-window code ranks (2-byte varints)."""
    events = [
        TraceEvent(timestamp_us=i * 7, etype=f"type-{i % 200:03d}")
        for i in range(400)
    ]
    columns = TraceColumns.from_events(events)
    assert len(columns.type_names) == 200
    layout = column_windows_by_count(columns, 150)
    windows = materialize_layout_windows(columns, layout, 0, layout.n_windows)
    assert (
        encoded_window_sizes_columns(columns, layout.event_offsets).tolist()
        == encoded_window_sizes(windows)
    )


def test_window_sizes_reject_out_of_range_core():
    events = [TraceEvent(timestamp_us=1, etype="a", core=300)]
    columns = TraceColumns.from_events(events)
    layout = column_windows_by_count(columns, 1)
    with pytest.raises(TraceFormatError, match="1-byte core field"):
        encoded_window_sizes_columns(columns, layout.event_offsets)


# ---------------------------------------------------------------------- #
# Columnar batches vs object batches
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("batch_size", [1, 7, 64])
def test_column_batches_match_object_batches(seed, batch_size):
    events = random_events(random.Random(seed), 260)
    windows = list(windows_by_duration(iter(events), WINDOW_US))
    for columns in columns_variants(events).values():
        registry_obj = EventTypeRegistry(["alpha", "beta"])
        registry_col = EventTypeRegistry(["alpha", "beta"])
        expected = list(batch_windows(iter(windows), registry_obj, batch_size))
        produced = list(
            iter_column_batches(
                columns,
                registry_col,
                batch_size=batch_size,
                window_duration_us=WINDOW_US,
            )
        )
        assert len(produced) == len(expected)
        for have, want in zip(produced, expected):
            assert np.array_equal(have.codes, want.codes)
            assert np.array_equal(have.offsets, want.offsets)
            assert np.array_equal(have.indices, want.indices)
            assert np.array_equal(have.start_us, want.start_us)
            assert np.array_equal(have.end_us, want.end_us)
            assert np.array_equal(have.dims, want.dims)
            assert have.dimension == want.dimension
            assert have.window_sizes() == want.window_sizes()
            assert have.to_windows() == want.to_windows()
        # The registry grew identically (same names, same order).
        assert registry_col.names == registry_obj.names


def test_column_batches_skip_reference_prefix():
    events = random_events(random.Random(5), 300)
    columns = TraceColumns.from_events(events)
    registry = EventTypeRegistry()
    layout = column_windows_by_duration(columns, WINDOW_US)
    skip = layout.n_windows // 2
    batches = list(
        iter_column_batches(
            columns,
            registry,
            batch_size=8,
            window_duration_us=WINDOW_US,
            first_window=skip,
        )
    )
    produced = [w for batch in batches for w in batch.to_windows()]
    # Window indices continue where the skipped prefix stopped.
    assert [w.index for w in produced] == list(range(skip, layout.n_windows))


def test_lazy_window_refs_defer_materialisation():
    events = random_events(random.Random(9), 150)
    columns = TraceColumns.from_events(events)
    registry = EventTypeRegistry()
    (batch,) = iter_column_batches(
        columns, registry, batch_size=10_000, window_duration_us=WINDOW_US
    )
    refs = batch.window_refs()
    assert all(isinstance(ref, LazyWindowRef) for ref in refs)
    windows = list(windows_by_duration(iter(events), WINDOW_US))
    for ref, window in zip(refs, windows):
        assert ref.index == window.index
        assert ref.start_us == window.start_us
        assert ref.end_us == window.end_us
        assert len(ref) == len(window)
    # Nothing materialised yet.
    assert batch._lazy_cache is None
    resolved = refs[3].resolve()
    assert resolved == windows[3]
    # The resolution is cached batch-side.
    assert batch.window(3) is resolved
    assert refs[5].events == windows[5].events
    assert batch.can_materialize and not batch.has_windows


def test_batch_without_windows_or_factory_still_raises():
    batch = WindowBatch(
        codes=np.array([0, 1], dtype=np.int32),
        offsets=np.array([0, 2], dtype=np.int64),
        indices=np.array([0], dtype=np.int64),
        start_us=np.array([0], dtype=np.int64),
        end_us=np.array([10], dtype=np.int64),
    )
    with pytest.raises(TraceStreamError, match="without its source windows"):
        batch.to_windows()
    with pytest.raises(TraceStreamError, match="without its source windows"):
        batch.window_refs()
    assert not batch.can_materialize


def test_prefetch_batches_preserves_order_and_errors():
    assert list(prefetch_batches(iter(range(50)), 4)) == list(range(50))
    assert list(prefetch_batches(iter(range(5)), 0)) == list(range(5))

    def failing():
        yield from range(3)
        raise ValueError("producer exploded")

    consumed = []
    with pytest.raises(ValueError, match="producer exploded"):
        for item in prefetch_batches(failing(), 2):
            consumed.append(item)
    assert consumed == [0, 1, 2]


def test_prefetch_batches_abandoned_consumer_stops_producer():
    iterator = prefetch_batches(iter(range(10_000)), 2)
    assert next(iterator) == 0
    iterator.close()  # must not hang or leak the producer thread


@pytest.mark.parametrize("seed", [3])
def test_trace_columns_pickle_round_trip(seed):
    """Spawn-only platforms ship columns through the pickle queue."""
    import pickle

    events = random_events(random.Random(seed), 120)
    for columns in columns_variants(events).values():
        clone = pickle.loads(pickle.dumps(columns, pickle.HIGHEST_PROTOCOL))
        assert clone.to_events() == tuple(events)
        assert clone.timestamps_us.tolist() == columns.timestamps_us.tolist()
        assert clone.static_sizes.tolist() == columns.static_sizes.tolist()
        assert clone.type_names == columns.type_names


def test_lazy_binary_materialisation_wraps_corrupt_payload():
    """A corrupt payload surfaces as TraceFormatError at materialisation,
    matching the object decoder's read-time error."""
    event = TraceEvent(timestamp_us=7, etype="alpha", args={"k": 1})
    blob = BinaryTraceCodec().encode([event])
    payload = b'{"k":1}'
    position = blob.rindex(payload)
    corrupt = blob[:position] + b'{"k":!}' + blob[position + len(payload):]
    with pytest.raises(TraceFormatError, match="malformed event payload"):
        BinaryTraceCodec().decode(corrupt)
    columns = decode_binary_columns(corrupt)  # length-skips the payload
    with pytest.raises(TraceFormatError, match="malformed event payload"):
        columns.events(0, 1)
