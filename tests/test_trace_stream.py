"""Unit and property tests for stream windowing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceStreamError
from repro.trace.event import TraceEvent
from repro.trace.stream import TraceStream, WindowPolicy, windows_by_count, windows_by_duration


def _events(timestamps):
    return [TraceEvent(int(t), "timer_tick") for t in timestamps]


class TestWindowsByDuration:
    def test_events_partitioned_into_consecutive_windows(self):
        windows = list(windows_by_duration(_events([0, 10, 25, 30, 55]), 20))
        assert [w.index for w in windows] == [0, 1, 2]
        assert [len(w) for w in windows] == [2, 2, 1]
        assert windows[0].start_us == 0 and windows[0].end_us == 20
        assert windows[2].start_us == 40 and windows[2].end_us == 60

    def test_empty_windows_emitted_by_default(self):
        windows = list(windows_by_duration(_events([0, 90]), 20))
        assert [len(w) for w in windows] == [1, 0, 0, 0, 1]

    def test_empty_windows_can_be_skipped(self):
        windows = list(windows_by_duration(_events([0, 90]), 20, emit_empty=False))
        assert [len(w) for w in windows] == [1, 1]

    def test_unsorted_stream_rejected(self):
        with pytest.raises(TraceStreamError):
            list(windows_by_duration(_events([10, 5]), 20))

    def test_event_before_start_rejected(self):
        with pytest.raises(TraceStreamError):
            list(windows_by_duration(_events([5]), 20, start_us=100))

    def test_non_positive_duration_rejected(self):
        with pytest.raises(TraceStreamError):
            list(windows_by_duration(_events([0]), 0))

    @settings(max_examples=50, deadline=None)
    @given(
        timestamps=st.lists(st.integers(min_value=0, max_value=100_000), min_size=1, max_size=200),
        duration=st.integers(min_value=1, max_value=5_000),
    )
    def test_partition_property(self, timestamps, duration):
        events = _events(sorted(timestamps))
        windows = list(windows_by_duration(events, duration))
        # every event lands in exactly one window, order preserved
        flattened = [event for window in windows for event in window.events]
        assert flattened == events
        # windows are consecutive and non-overlapping
        for previous, current in zip(windows, windows[1:]):
            assert current.start_us == previous.end_us
            assert current.duration_us == duration


class TestWindowsByCount:
    def test_fixed_size_batches(self):
        windows = list(windows_by_count(_events(range(10)), 4))
        assert [len(w) for w in windows] == [4, 4, 2]
        assert [w.index for w in windows] == [0, 1, 2]

    def test_invalid_count_rejected(self):
        with pytest.raises(TraceStreamError):
            list(windows_by_count(_events([0]), 0))

    def test_duplicate_timestamp_at_window_boundary(self):
        # Regression: the next window used to start at last_ts + 1, so an
        # event sharing the boundary timestamp fell *before* the window start
        # and TraceWindow validation raised TraceFormatError.
        windows = list(windows_by_count(_events([0, 5, 10, 10, 10, 12]), 3))
        assert [len(w) for w in windows] == [3, 3]
        assert windows[0].end_us == 11
        assert windows[1].start_us == 10  # boundary timestamp stays inside
        assert [e.timestamp_us for e in windows[1].events] == [10, 10, 12]

    def test_strictly_increasing_streams_keep_contiguous_extents(self):
        # The duplicate-timestamp fix must not disturb ordinary streams:
        # without an equal-timestamp carry-over, consecutive windows stay
        # contiguous ([s, last+1) then [last+1, ...)), exactly as before.
        windows = list(windows_by_count(_events(range(0, 90, 10)), 3))
        assert [(w.start_us, w.end_us) for w in windows] == [
            (0, 21),
            (21, 51),
            (51, 81),
        ]

    def test_all_events_identical_timestamp(self):
        windows = list(windows_by_count(_events([7] * 10), 4))
        assert [len(w) for w in windows] == [4, 4, 2]
        assert all(w.start_us <= 7 < w.end_us for w in windows)

    @settings(max_examples=50, deadline=None)
    @given(
        timestamps=st.lists(
            st.integers(min_value=0, max_value=40), min_size=1, max_size=120
        ),
        per_window=st.integers(min_value=1, max_value=20),
    )
    def test_duplicate_heavy_streams_never_crash_property(
        self, timestamps, per_window
    ):
        events = _events(sorted(timestamps))
        windows = list(windows_by_count(events, per_window))
        assert sum(len(w) for w in windows) == len(events)
        flattened = [e for w in windows for e in w.events]
        assert flattened == events

    @settings(max_examples=50, deadline=None)
    @given(
        n_events=st.integers(min_value=1, max_value=200),
        per_window=st.integers(min_value=1, max_value=50),
    )
    def test_all_events_kept_property(self, n_events, per_window):
        events = _events(range(n_events))
        windows = list(windows_by_count(events, per_window))
        assert sum(len(w) for w in windows) == n_events
        assert all(len(w) == per_window for w in windows[:-1])


class TestTraceStream:
    def test_single_pass_enforced(self):
        stream = TraceStream(_events([0, 1, 2]))
        list(stream.events())
        with pytest.raises(TraceStreamError):
            list(stream.events())

    def test_windows_policies(self):
        by_duration = TraceStream(_events([0, 10, 30])).windows(
            WindowPolicy.BY_DURATION, window_duration_us=20
        )
        assert [len(w) for w in by_duration] == [2, 1]
        by_count = TraceStream(_events([0, 10, 30])).windows(
            WindowPolicy.BY_COUNT, events_per_window=2
        )
        assert [len(w) for w in by_count] == [2, 1]

    def test_split_reference(self):
        stream = TraceStream(_events(range(0, 100, 10)))
        reference, live = stream.split_reference(50, window_duration_us=10)
        live = list(live)
        assert len(reference) == 5
        assert [w.index for w in reference] == [0, 1, 2, 3, 4]
        assert live[0].index == 5
        assert sum(len(w) for w in reference) + sum(len(w) for w in live) == 10

    def test_split_reference_requires_positive_duration(self):
        with pytest.raises(TraceStreamError):
            TraceStream(_events([0])).split_reference(0)

    def test_from_windows_roundtrip(self):
        windows = list(windows_by_duration(_events([0, 10, 25]), 20))
        events = list(TraceStream.from_windows(windows).events())
        assert [event.timestamp_us for event in events] == [0, 10, 25]

    def test_merge_keeps_global_order(self):
        merged = TraceStream.merge(
            [TraceStream(_events([0, 20, 40])), TraceStream(_events([10, 30, 50]))]
        )
        assert [event.timestamp_us for event in merged.events()] == [0, 10, 20, 30, 40, 50]

    def test_filtered(self):
        events = [TraceEvent(0, "a"), TraceEvent(1, "b"), TraceEvent(2, "a")]
        filtered = TraceStream(events).filtered(lambda event: event.etype == "a")
        assert [event.timestamp_us for event in filtered.events()] == [0, 2]
