"""Tests for trace file IO (reader/writer) and trace statistics."""

from __future__ import annotations

import pytest

from repro.errors import TraceFormatError
from repro.trace.event import TraceEvent
from repro.trace.reader import iter_trace_file, read_trace
from repro.trace.stats import summarize, summarize_windows
from repro.trace.stream import windows_by_duration
from repro.trace.writer import write_trace


def _events():
    return [
        TraceEvent(0, "demux_packet", core=0, task="demuxer"),
        TraceEvent(500, "frame_decode_start", core=0, task="decoder"),
        TraceEvent(14_000, "frame_decode_end", core=0, task="decoder"),
        TraceEvent(40_000, "frame_display", core=1, task="sink"),
        TraceEvent(1_000_000, "frame_display", core=1, task="sink"),
    ]


class TestReadWrite:
    def test_binary_roundtrip(self, tmp_path):
        path = write_trace(_events(), tmp_path / "trace.bin")
        assert read_trace(path) == _events()

    def test_jsonl_roundtrip(self, tmp_path):
        path = write_trace(_events(), tmp_path / "trace.jsonl")
        assert read_trace(path) == _events()
        assert list(iter_trace_file(path)) == _events()

    def test_auto_format_follows_suffix(self, tmp_path):
        binary = write_trace(_events(), tmp_path / "a.trace")
        jsonl = write_trace(_events(), tmp_path / "b.jsonl")
        assert binary.read_bytes()[:4] == b"RTRC"
        assert jsonl.read_text().startswith("{")

    def test_explicit_format_overrides_suffix(self, tmp_path):
        path = write_trace(_events(), tmp_path / "a.jsonl", fmt="binary")
        assert path.read_bytes()[:4] == b"RTRC"
        assert read_trace(path) == _events()

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError):
            write_trace(_events(), tmp_path / "x.bin", fmt="xml")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError):
            read_trace(tmp_path / "missing.bin")
        with pytest.raises(TraceFormatError):
            list(iter_trace_file(tmp_path / "missing.jsonl"))

    def test_streaming_binary_rejected(self, tmp_path):
        path = write_trace(_events(), tmp_path / "trace.bin")
        with pytest.raises(TraceFormatError):
            list(iter_trace_file(path))

    def test_directories_created(self, tmp_path):
        path = write_trace(_events(), tmp_path / "deep" / "nested" / "trace.jsonl")
        assert path.exists()


class TestStatistics:
    def test_summarize_counts(self):
        stats = summarize(_events())
        assert stats.n_events == 5
        assert stats.duration_us == 1_000_000
        assert stats.type_counts["frame_display"] == 2
        assert stats.task_counts["decoder"] == 2
        assert stats.core_counts[1] == 2
        assert stats.encoded_bytes > 0

    def test_rates(self):
        stats = summarize(_events())
        assert stats.duration_s == pytest.approx(1.0)
        assert stats.events_per_second == pytest.approx(5.0)
        assert stats.bytes_per_second == pytest.approx(stats.encoded_bytes)

    def test_type_fraction(self):
        stats = summarize(_events())
        assert stats.type_fraction("frame_display") == pytest.approx(0.4)
        assert stats.type_fraction("unknown") == 0.0

    def test_empty_trace(self):
        stats = summarize([])
        assert stats.n_events == 0
        assert stats.events_per_second == 0.0
        assert stats.bytes_per_second == 0.0
        assert stats.type_fraction("anything") == 0.0

    def test_summarize_windows_matches_flat_summary(self):
        events = _events()
        windows = list(windows_by_duration(events, 20_000))
        assert summarize_windows(windows).n_events == summarize(events).n_events

    def test_to_dict_is_json_friendly(self):
        import json

        payload = summarize(_events()).to_dict()
        assert json.loads(json.dumps(payload)) == payload
