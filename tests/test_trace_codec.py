"""Unit and property tests for the trace codecs and size accounting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceFormatError
from repro.trace.codec import (
    BinaryTraceCodec,
    JsonTraceCodec,
    _decode_varint,
    _encode_varint,
    encoded_event_size,
    encoded_trace_size,
)
from repro.trace.event import EventTypeRegistry, TraceEvent


def _sample_events():
    return [
        TraceEvent(0, "demux_packet", core=0, task="demuxer", args={"frame": 0, "bytes": 4321}),
        TraceEvent(100, "frame_decode_start", core=0, task="decoder", args={"frame": 0}),
        TraceEvent(14_000, "frame_decode_end", core=1, task="decoder", args={"frame": 0}),
        TraceEvent(14_000, "buffer_push", core=1, task="converter", args={"level": 3}),
        TraceEvent(40_000, "frame_display", core=0, task="sink"),
    ]


class TestVarint:
    @given(value=st.integers(min_value=0, max_value=2**60))
    def test_roundtrip(self, value):
        encoded = _encode_varint(value)
        decoded, offset = _decode_varint(encoded, 0)
        assert decoded == value
        assert offset == len(encoded)

    def test_negative_rejected(self):
        with pytest.raises(TraceFormatError):
            _encode_varint(-1)

    def test_truncated_rejected(self):
        with pytest.raises(TraceFormatError):
            _decode_varint(b"\x80", 0)


class TestBinaryCodec:
    def test_roundtrip(self):
        events = _sample_events()
        blob = BinaryTraceCodec().encode(events)
        decoded = BinaryTraceCodec().decode(blob)
        assert decoded == events

    def test_bad_magic_rejected(self):
        with pytest.raises(TraceFormatError):
            BinaryTraceCodec().decode(b"NOPE" + b"\x00" * 16)

    def test_core_out_of_range_rejected_on_encode(self):
        # Regression: core used to be masked with 0xFF, so core 300 silently
        # round-tripped as 44.  Out-of-range cores must raise instead.
        event = TraceEvent(0, "timer_tick", core=300)
        codec = BinaryTraceCodec()
        with pytest.raises(TraceFormatError):
            codec.encode_event(event)
        with pytest.raises(TraceFormatError):
            codec.encode([event])
        with pytest.raises(TraceFormatError):
            codec.event_size(event)
        with pytest.raises(TraceFormatError):
            encoded_trace_size([event])

    def test_core_boundaries_roundtrip_exactly(self):
        events = [
            TraceEvent(0, "timer_tick", core=0),
            TraceEvent(1, "timer_tick", core=255),
        ]
        codec = BinaryTraceCodec()
        assert BinaryTraceCodec().decode(codec.encode(events)) == events
        # encode / event_size / encoded_trace_size must agree on the 1-byte
        # core accounting for the full valid range.
        sizing_codec = BinaryTraceCodec()
        previous = 0
        total = 0
        for event in events:
            total += sizing_codec.event_size(event, previous)
            previous = event.timestamp_us
        assert encoded_trace_size(events) == total

    def test_truncated_header_rejected(self):
        blob = BinaryTraceCodec().encode(_sample_events())
        with pytest.raises(TraceFormatError):
            BinaryTraceCodec().decode(blob[:6])

    def test_out_of_order_events_rejected(self):
        codec = BinaryTraceCodec()
        with pytest.raises(TraceFormatError):
            codec.encode_event(TraceEvent(5, "x"), previous_timestamp_us=10)

    def test_event_size_positive_and_small(self):
        event = TraceEvent(1_000, "vsync", core=0, task="sink")
        size = encoded_event_size(event)
        assert 0 < size < 64

    def test_delta_encoding_shrinks_dense_traces(self):
        # Two traces with identical content except for the absolute timestamps:
        # the delta encoding should make the far-in-the-future trace barely
        # larger than the one near zero (only the first delta differs).
        near = [TraceEvent(i, "vsync") for i in range(0, 1_000, 10)]
        far = [TraceEvent(10**12 + i, "vsync") for i in range(0, 1_000, 10)]
        assert encoded_trace_size(far) <= encoded_trace_size(near) + 8

    def test_unknown_registry_grows_on_encode(self):
        registry = EventTypeRegistry()
        codec = BinaryTraceCodec(registry)
        codec.encode_event(TraceEvent(0, "brand_new_type"))
        assert "brand_new_type" in registry

    @settings(max_examples=40, deadline=None)
    @given(
        deltas=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=60),
        types=st.lists(
            st.sampled_from(["a", "b", "c", "sched_switch", "frame_display"]),
            min_size=1,
            max_size=60,
        ),
    )
    def test_roundtrip_property(self, deltas, types):
        timestamp = 0
        events = []
        for delta, etype in zip(deltas, types):
            timestamp += delta
            events.append(TraceEvent(timestamp, etype, core=timestamp % 4, task="t"))
        blob = BinaryTraceCodec().encode(events)
        assert BinaryTraceCodec().decode(blob) == events


class TestJsonCodec:
    def test_roundtrip(self):
        events = _sample_events()
        text = JsonTraceCodec().encode(events)
        assert list(JsonTraceCodec().decode(text)) == events

    def test_malformed_line_rejected(self):
        with pytest.raises(TraceFormatError):
            JsonTraceCodec().decode_event("{not json")

    def test_blank_lines_ignored(self):
        events = _sample_events()
        text = JsonTraceCodec().encode(events) + "\n\n\n"
        assert list(JsonTraceCodec().decode(text)) == events


class TestSizeAccounting:
    def test_total_size_is_sum_of_event_sizes_with_deltas(self):
        events = _sample_events()
        total = encoded_trace_size(events)
        manual = 0
        previous = 0
        codec = BinaryTraceCodec()
        for event in events:
            manual += codec.event_size(event, previous)
            previous = event.timestamp_us
        assert total == manual

    def test_empty_trace_has_zero_size(self):
        assert encoded_trace_size([]) == 0
