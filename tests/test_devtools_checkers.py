"""Corpus-driven checker tests.

Every rule family has a bad/good fixture pair under
``tests/fixtures/devtools/``.  Bad fixtures carry ``# expect: RULE[, RULE]``
markers on the offending lines; the corpus test asserts the checkers report
exactly that multiset of ``(file, rule, line)`` — so a missing finding, an
extra finding, or a finding on the wrong line all fail.  Good fixtures have
no markers and must produce no findings.  A final test asserts that every
rule in the catalogue fires somewhere in the corpus, so a new rule cannot
land without a fixture proving it works.
"""

from __future__ import annotations

import re
from collections import Counter
from pathlib import Path

import pytest

from repro.devtools.check import collect_findings
from repro.devtools.checkers import ALL_CHECKERS, rule_catalogue
from repro.devtools.source import Project

FIXTURES = Path(__file__).parent / "fixtures" / "devtools"

_EXPECT_RE = re.compile(r"#\s*expect:\s*(?P<rules>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)")

#: Corpus units: (id, paths to check, usage-only paths).
UNITS = [
    ("fork-safety-bad", ["bad_fork_safety.py"], []),
    ("fork-safety-good", ["good_fork_safety.py"], []),
    ("thread-discipline-bad", ["bad_thread_discipline.py"], []),
    ("thread-discipline-good", ["good_thread_discipline.py"], []),
    ("determinism-bad", ["bad_determinism.py"], []),
    ("determinism-good", ["good_determinism.py"], []),
    ("wallclock-bad", ["analysis/bad_wallclock.py"], []),
    ("wallclock-good", ["analysis/good_wallclock.py"], []),
    ("dead-code-bad", ["dead/bad_dead_code.py"], []),
    ("dead-code-good", ["dead/good_dead_code.py"], ["dead/consumer.py"]),
    ("layering-bad", ["layered_bad"], []),
    ("layering-good", ["layered_good"], []),
    ("config-knobs-bad", ["knobs_bad"], []),
    ("config-knobs-good", ["knobs_good"], []),
    ("typing-bad", ["strict/repro/trace/bad_typing.py"], []),
    ("typing-good", ["strict/repro/trace/good_typing.py"], []),
    ("suppressed", ["suppressed.py"], []),
]


def _expected_for(path: Path) -> Counter:
    expected: Counter = Counter()
    display = str(path.relative_to(FIXTURES))
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        match = _EXPECT_RE.search(line)
        if match is None:
            continue
        for rule in match.group("rules").split(","):
            expected[(display, rule.strip(), lineno)] += 1
    return expected


def _unit_findings(paths: list[str], usage: list[str]) -> Counter:
    project = Project.load(
        [FIXTURES / p for p in paths],
        root=FIXTURES,
        usage_roots=[FIXTURES / p for p in usage],
    )
    assert project.parse_errors == []
    return Counter(
        (finding.path, finding.rule, finding.line)
        for finding in collect_findings(project)
    )


@pytest.mark.parametrize(
    "paths,usage", [(paths, usage) for _, paths, usage in UNITS],
    ids=[unit_id for unit_id, _, _ in UNITS],
)
def test_corpus_unit_reports_exactly_the_marked_findings(paths, usage):
    expected: Counter = Counter()
    for path in paths:
        full = FIXTURES / path
        files = sorted(full.rglob("*.py")) if full.is_dir() else [full]
        for file_path in files:
            expected += _expected_for(file_path)
    assert _unit_findings(paths, usage) == expected


def test_every_rule_fires_somewhere_in_the_corpus():
    seen: set[str] = set()
    for _, paths, usage in UNITS:
        seen |= {rule for _, rule, _ in _unit_findings(paths, usage)}
    assert seen == set(rule_catalogue())


def test_rule_catalogue_has_no_duplicate_ids():
    catalogue = rule_catalogue()
    declared = [rule.rule_id for checker in ALL_CHECKERS for rule in checker.rules]
    assert sorted(catalogue) == sorted(declared)


def test_usage_only_modules_never_receive_findings():
    # Load a violating file as a usage root: it must contribute references
    # but produce no findings of its own.
    project = Project.load(
        [FIXTURES / "good_determinism.py"],
        root=FIXTURES,
        usage_roots=[FIXTURES / "bad_determinism.py"],
    )
    findings = collect_findings(project)
    assert findings == []
