"""Property-based round-trip tests over randomly generated event streams.

Seeded :mod:`random` generators (no extra dependencies) produce arbitrary
event streams — unicode task names, unseen event types, empty windows,
irregular payloads — and every lossless transformation the pipeline relies
on is checked end to end:

* ``windows_by_duration`` -> ``batch_windows`` -> ``WindowBatch.to_windows``
  must reproduce the source windows and their columnar codes exactly;
* ``JsonTraceCodec`` and ``BinaryTraceCodec`` encode/decode must be lossless;
* the batched codec APIs (``encode_events`` / ``encoded_sizes`` /
  ``encoded_window_sizes``) must agree with their per-event counterparts.
"""

from __future__ import annotations

import random

import pytest

from repro.trace.batch import WindowBatch, batch_windows
from repro.trace.codec import (
    BinaryTraceCodec,
    JsonTraceCodec,
    encoded_trace_size,
    encoded_window_sizes,
)
from repro.trace.event import EventTypeRegistry, TraceEvent
from repro.trace.stream import windows_by_duration

#: Known event-type pool (pre-registered) plus exotic names the registry has
#: never seen, including unicode and whitespace-bearing types.
KNOWN_TYPES = ["alpha", "beta", "gamma", "delta"]
UNSEEN_TYPES = ["zeta_new", "Ω-type", "spaces in name", "json\"quote", "émission"]

TASKS = ["", "decoder", "τ-worker", "a/b\\c", "日本語"]

SEEDS = range(12)


def random_args(rng: random.Random) -> dict:
    """A JSON-round-trippable payload of random shape."""
    if rng.random() < 0.4:
        return {}
    args = {}
    for _ in range(rng.randint(1, 3)):
        key = rng.choice(["frame", "level", "note", "flag", "π"])
        args[key] = rng.choice(
            [
                rng.randint(-1000, 1000),
                rng.random(),
                rng.choice(["x", "Ω", ""]),
                rng.random() < 0.5,
                None,
                [1, "two", 3.0],
            ]
        )
    return args


def random_events(rng: random.Random, n_events: int, max_gap_us: int = 3_000):
    """A timestamp-ordered stream with bursts and long silent gaps."""
    events = []
    timestamp = rng.randint(0, 500)
    for _ in range(n_events):
        # Occasional long gaps leave entire windows empty.
        gap = rng.randint(20_000, 80_000) if rng.random() < 0.05 else rng.randint(0, max_gap_us)
        timestamp += gap
        pool = KNOWN_TYPES if rng.random() < 0.8 else UNSEEN_TYPES
        events.append(
            TraceEvent(
                timestamp_us=timestamp,
                etype=rng.choice(pool),
                core=rng.randint(0, 255),
                task=rng.choice(TASKS),
                args=random_args(rng),
            )
        )
    return events


@pytest.mark.parametrize("seed", SEEDS)
def test_window_batch_roundtrip_is_lossless(seed):
    rng = random.Random(seed)
    events = random_events(rng, rng.randint(0, 400))
    windows = list(windows_by_duration(events, 10_000))
    registry = EventTypeRegistry(KNOWN_TYPES)
    batch_size = rng.choice([1, 2, 3, 7, 16, 1000])

    batches = list(batch_windows(iter(windows), registry, batch_size))
    rebuilt = [window for batch in batches for window in batch.to_windows()]
    assert rebuilt == windows

    # The columnar codes must decode back to the exact event-type sequence.
    for batch in batches:
        for position in range(len(batch)):
            window = batch.window(position)
            names = [registry.name(int(code)) for code in batch.window_codes(position)]
            assert names == [event.etype for event in window.events]
        assert list(batch.event_counts) == [len(w) for w in batch.to_windows()]


@pytest.mark.parametrize("seed", SEEDS)
def test_window_batch_registry_growth_matches_sequential(seed):
    """``dims`` must record the registry size after each window in order."""
    rng = random.Random(seed + 1000)
    events = random_events(rng, rng.randint(1, 300))
    windows = list(windows_by_duration(events, 10_000))

    serial_registry = EventTypeRegistry(KNOWN_TYPES)
    expected_dims = []
    for window in windows:
        for event in window.events:
            serial_registry.register(event.etype)
        expected_dims.append(len(serial_registry))

    batched_registry = EventTypeRegistry(KNOWN_TYPES)
    batch = WindowBatch.from_windows(windows, batched_registry)
    assert list(batch.dims) == expected_dims
    assert batched_registry.names == serial_registry.names


@pytest.mark.parametrize("seed", SEEDS)
def test_json_codec_roundtrip_is_lossless(seed):
    rng = random.Random(seed + 2000)
    events = random_events(rng, rng.randint(0, 200))
    codec = JsonTraceCodec()
    decoded = list(codec.decode(codec.encode(events)))
    assert decoded == events


@pytest.mark.parametrize("seed", SEEDS)
def test_binary_codec_roundtrip_is_lossless(seed):
    rng = random.Random(seed + 3000)
    events = random_events(rng, rng.randint(0, 200))
    codec = BinaryTraceCodec()
    assert codec.decode(codec.encode(events)) == events


@pytest.mark.parametrize("seed", SEEDS)
def test_batched_codec_apis_match_per_event_apis(seed):
    rng = random.Random(seed + 4000)
    events = random_events(rng, rng.randint(0, 150))
    codec = JsonTraceCodec()

    block = codec.encode_events(events)
    assert block == "".join(codec.encode_event(event) + "\n" for event in events)
    assert list(codec.decode(block)) == events

    sizes = codec.encoded_sizes(events)
    assert sizes == [
        len(codec.encode_event(event).encode("utf-8")) for event in events
    ]

    windows = list(windows_by_duration(events, 10_000))
    assert encoded_window_sizes(windows) == [
        encoded_trace_size(window.events) for window in windows
    ]


@pytest.mark.parametrize("seed", SEEDS)
def test_arithmetic_trace_size_matches_real_encoder(seed):
    """``encoded_trace_size`` computes sizes without encoding; it must equal
    the byte length of an actual shared-codec encoding pass exactly."""
    rng = random.Random(seed + 5000)
    events = random_events(rng, rng.randint(0, 200))
    codec = BinaryTraceCodec()
    expected = 0
    previous = 0
    for event in events:
        expected += codec.event_size(event, previous)
        previous = event.timestamp_us
    assert encoded_trace_size(events) == expected


def test_empty_stream_edge_cases():
    codec = JsonTraceCodec()
    assert codec.encode_events([]) == ""
    assert codec.encoded_sizes([]) == []
    assert encoded_window_sizes([]) == []
    assert list(codec.decode("")) == []

    registry = EventTypeRegistry(KNOWN_TYPES)
    windows = list(windows_by_duration([], 10_000))
    assert len(windows) == 1 and windows[0].is_empty
    batches = list(batch_windows(iter(windows), registry, 4))
    assert [w for b in batches for w in b.to_windows()] == windows
    assert batches[0].n_events == 0
