"""Unit and property tests for the pmf abstraction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.pmf import Pmf, pmf_from_counts, pmf_from_window
from repro.errors import ModelError
from repro.trace.event import EventTypeRegistry, TraceEvent
from repro.trace.window import TraceWindow


def make_registry(*names):
    return EventTypeRegistry(names)


class TestConstruction:
    def test_counts_must_match_registry_size(self):
        registry = make_registry("a", "b")
        with pytest.raises(ModelError):
            Pmf([1.0], registry)

    def test_negative_counts_rejected(self):
        registry = make_registry("a", "b")
        with pytest.raises(ModelError):
            Pmf([1.0, -1.0], registry)

    def test_two_dimensional_counts_rejected(self):
        registry = make_registry("a", "b")
        with pytest.raises(ModelError):
            Pmf(np.zeros((2, 2)), registry)

    def test_empty_pmf(self):
        registry = make_registry("a", "b")
        pmf = Pmf.empty(registry)
        assert pmf.is_empty
        assert pmf.total == 0.0
        # empty pmf falls back to the uniform distribution
        assert pmf.probabilities() == pytest.approx([0.5, 0.5])


class TestFromWindow:
    def test_counts_match_window_content(self, registry, simple_window):
        pmf = pmf_from_window(simple_window, registry)
        assert pmf.count("demux_packet") == 1
        assert pmf.count("frame_decode_start") == 1
        assert pmf.total == len(simple_window)

    def test_unknown_types_registered_on_the_fly(self):
        registry = make_registry("known")
        window = TraceWindow.from_events([TraceEvent(0, "brand_new")])
        pmf = pmf_from_window(window, registry)
        assert "brand_new" in registry
        assert pmf.count("brand_new") == 1

    def test_unknown_types_rejected_when_disabled(self):
        registry = make_registry("known")
        window = TraceWindow.from_events([TraceEvent(0, "brand_new")])
        with pytest.raises(ModelError):
            pmf_from_window(window, registry, register_unknown=False)

    def test_from_counts(self):
        registry = make_registry()
        pmf = pmf_from_counts({"a": 3, "b": 1}, registry)
        assert pmf.probability("a") == pytest.approx(0.75)
        assert pmf.probability("b") == pytest.approx(0.25)

    def test_from_counts_rejects_negative(self):
        with pytest.raises(ModelError):
            pmf_from_counts({"a": -1}, make_registry())


class TestProbabilities:
    def test_normalisation(self):
        pmf = pmf_from_counts({"a": 6, "b": 2}, make_registry())
        assert pmf.probabilities().sum() == pytest.approx(1.0)
        assert pmf.probability("a") == pytest.approx(0.75)

    def test_smoothing_gives_full_support(self):
        pmf = pmf_from_counts({"a": 10, "b": 0}, make_registry("a", "b"))
        smoothed = pmf.probabilities(smoothing=1.0)
        assert smoothed.min() > 0
        assert smoothed.sum() == pytest.approx(1.0)

    def test_negative_smoothing_rejected(self):
        pmf = pmf_from_counts({"a": 1}, make_registry())
        with pytest.raises(ModelError):
            pmf.probabilities(smoothing=-1)

    def test_top_types(self):
        pmf = pmf_from_counts({"a": 5, "b": 3, "c": 1}, make_registry())
        assert [name for name, _ in pmf.top_types(2)] == ["a", "b"]

    def test_as_dict_omits_zero_entries(self):
        pmf = pmf_from_counts({"a": 2, "b": 0}, make_registry("a", "b"))
        assert pmf.as_dict() == {"a": 2.0}


class TestMerge:
    def test_merge_full_decay_replaces(self):
        registry = make_registry("a", "b")
        first = pmf_from_counts({"a": 10}, registry)
        second = pmf_from_counts({"b": 10}, registry)
        merged = first.merge(second, decay=1.0)
        assert merged.probability("b") == pytest.approx(1.0)

    def test_merge_blends_probabilities(self):
        registry = make_registry("a", "b")
        first = pmf_from_counts({"a": 10}, registry)
        second = pmf_from_counts({"b": 10}, registry)
        merged = first.merge(second, decay=0.25)
        assert merged.probability("a") == pytest.approx(0.75)
        assert merged.probability("b") == pytest.approx(0.25)

    def test_merge_with_empty_keeps_other_side(self):
        registry = make_registry("a", "b")
        pmf = pmf_from_counts({"a": 4}, registry)
        assert Pmf.empty(registry).merge(pmf) == pmf
        assert pmf.merge(Pmf.empty(registry)) == pmf

    def test_merge_invalid_decay_rejected(self):
        registry = make_registry("a")
        pmf = pmf_from_counts({"a": 1}, registry)
        with pytest.raises(ModelError):
            pmf.merge(pmf, decay=0.0)
        with pytest.raises(ModelError):
            pmf.merge(pmf, decay=1.5)

    def test_incompatible_registries_rejected(self):
        first = pmf_from_counts({"a": 1}, make_registry("a"))
        second = pmf_from_counts({"b": 1}, make_registry("b"))
        with pytest.raises(ModelError):
            first.merge(second)

    def test_add_sums_counts(self):
        registry = make_registry("a", "b")
        total = pmf_from_counts({"a": 1}, registry).add(pmf_from_counts({"a": 2, "b": 3}, registry))
        assert total.count("a") == 3
        assert total.count("b") == 3

    @settings(max_examples=50, deadline=None)
    @given(
        counts_a=st.lists(st.integers(min_value=0, max_value=50), min_size=3, max_size=3),
        counts_b=st.lists(st.integers(min_value=0, max_value=50), min_size=3, max_size=3),
        decay=st.floats(min_value=0.01, max_value=1.0),
    )
    def test_merge_stays_normalised_property(self, counts_a, counts_b, decay):
        registry = make_registry("a", "b", "c")
        first = Pmf(np.array(counts_a, dtype=float), registry)
        second = Pmf(np.array(counts_b, dtype=float), registry)
        merged = first.merge(second, decay=decay)
        if not merged.is_empty:
            assert merged.probabilities().sum() == pytest.approx(1.0)
        # merged probabilities stay within the convex hull of the inputs
        if not first.is_empty and not second.is_empty:
            for code in range(3):
                low = min(first.probabilities()[code], second.probabilities()[code])
                high = max(first.probabilities()[code], second.probabilities()[code])
                assert low - 1e-9 <= merged.probabilities()[code] <= high + 1e-9
