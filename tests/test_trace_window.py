"""Unit tests for :class:`repro.trace.window.TraceWindow`."""

from __future__ import annotations

import pytest

from repro.errors import TraceFormatError
from repro.trace.event import EventType, TraceEvent
from repro.trace.window import TraceWindow


def _events(*timestamps, etype="timer_tick"):
    return tuple(TraceEvent(t, etype) for t in timestamps)


class TestConstruction:
    def test_end_before_start_rejected(self):
        with pytest.raises(TraceFormatError):
            TraceWindow(index=0, start_us=10, end_us=5)

    def test_event_outside_extent_rejected(self):
        with pytest.raises(TraceFormatError):
            TraceWindow(index=0, start_us=0, end_us=10, events=_events(50))

    def test_events_out_of_order_rejected(self):
        events = (TraceEvent(5, "a"), TraceEvent(3, "b"))
        with pytest.raises(TraceFormatError):
            TraceWindow(index=0, start_us=0, end_us=10, events=events)

    def test_from_events_infers_extent(self):
        window = TraceWindow.from_events(_events(5, 7, 11))
        assert window.start_us == 5
        assert window.end_us == 12
        assert len(window) == 3

    def test_from_events_empty_without_extent_rejected(self):
        with pytest.raises(TraceFormatError):
            TraceWindow.from_events(())

    def test_from_events_empty_with_extent(self):
        window = TraceWindow.from_events((), start_us=0, end_us=100)
        assert window.is_empty
        assert window.duration_us == 100


class TestAccessors:
    def test_len_iter_bool(self, simple_window):
        assert len(simple_window) == 8
        assert list(simple_window) == list(simple_window.events)
        assert bool(TraceWindow(0, 0, 10))  # empty windows are still truthy

    def test_duration_and_midpoint(self):
        window = TraceWindow(index=2, start_us=100, end_us=200)
        assert window.duration_us == 100
        assert window.midpoint_us == pytest.approx(150.0)

    def test_type_counts_and_count(self, simple_window):
        counts = simple_window.type_counts()
        assert counts[str(EventType.DEMUX_PACKET)] == 1
        assert simple_window.count(EventType.FRAME_DECODE_START) == 1
        assert simple_window.count("missing_type") == 0

    def test_events_of_type(self, simple_window):
        displays = simple_window.events_of_type(EventType.FRAME_DISPLAY)
        assert len(displays) == 1
        assert displays[0].etype == "frame_display"

    def test_tasks(self, simple_window):
        assert {"demuxer", "decoder", "converter", "sink", "audio"} <= simple_window.tasks()

    def test_overlaps(self):
        window = TraceWindow(index=0, start_us=100, end_us=200)
        assert window.overlaps(150, 250)
        assert window.overlaps(0, 101)
        assert not window.overlaps(200, 300)
        assert not window.overlaps(0, 100)


class TestSliceAndConcatenate:
    def test_slice_keeps_only_contained_events(self):
        window = TraceWindow.from_events(_events(0, 10, 20, 30), start_us=0, end_us=40)
        sliced = window.slice(10, 25)
        assert [event.timestamp_us for event in sliced.events] == [10, 20]
        assert sliced.start_us == 10 and sliced.end_us == 25

    def test_slice_outside_extent_returns_empty(self):
        window = TraceWindow.from_events(_events(0, 10), start_us=0, end_us=20)
        sliced = window.slice(100, 200)
        assert sliced.is_empty

    def test_concatenate_merges_and_sorts(self):
        first = TraceWindow.from_events(_events(0, 10), start_us=0, end_us=20)
        second = TraceWindow.from_events(_events(20, 30), start_us=20, end_us=40)
        merged = TraceWindow.concatenate([second, first])
        assert merged.start_us == 0 and merged.end_us == 40
        assert [event.timestamp_us for event in merged.events] == [0, 10, 20, 30]

    def test_concatenate_empty_rejected(self):
        with pytest.raises(TraceFormatError):
            TraceWindow.concatenate([])

    def test_concatenate_nested_window_keeps_full_extent(self):
        # Regression: the merged end used to be the *last-by-start* window's
        # end, so concatenating [0, 100) with a nested [10, 50) yielded the
        # extent [0, 50) and raised a spurious TraceFormatError whenever the
        # outer window held an event past 50.
        outer = TraceWindow.from_events(_events(0, 80), start_us=0, end_us=100)
        nested = TraceWindow.from_events(_events(20, 30), start_us=10, end_us=50)
        merged = TraceWindow.concatenate([outer, nested])
        assert merged.start_us == 0 and merged.end_us == 100
        assert [e.timestamp_us for e in merged.events] == [0, 20, 30, 80]

    def test_concatenate_event_free_extent_uses_max_end(self):
        first = TraceWindow(index=0, start_us=0, end_us=90)
        second = TraceWindow(index=1, start_us=10, end_us=40)
        merged = TraceWindow.concatenate([second, first])
        assert merged.start_us == 0 and merged.end_us == 90
