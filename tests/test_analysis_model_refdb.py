"""Tests for the reference model and the curated reference database."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.model import ReferenceModel
from repro.analysis.pmf import pmf_from_counts, pmf_from_window
from repro.analysis.refdb import ReferenceDatabase, ReferenceEntry
from repro.errors import ModelError, NotFittedError
from repro.trace.event import EventTypeRegistry, TraceEvent
from repro.trace.generator import SyntheticTraceGenerator
from repro.trace.stream import windows_by_duration
from repro.trace.window import TraceWindow


def make_reference_windows(mix, seed=0, duration_s=4.0, rate=2_000.0):
    generator = SyntheticTraceGenerator(mix, rate_per_s=rate, seed=seed)
    return list(windows_by_duration(generator.events(duration_s), 40_000))


@pytest.fixture()
def learned_model(normal_mix, registry):
    windows = make_reference_windows(normal_mix)
    return ReferenceModel(k_neighbours=10).learn(windows, registry), windows


class TestLearning:
    def test_learn_builds_point_cloud(self, learned_model, registry):
        model, windows = learned_model
        assert model.is_fitted
        assert model.n_windows_seen == len(windows)
        assert model.n_reference_windows <= len(windows)
        assert model.dimension == len(registry)
        assert model.points.shape[1] == model.dimension

    def test_learn_requires_enough_windows(self, normal_mix, registry):
        windows = make_reference_windows(normal_mix, duration_s=0.2)
        with pytest.raises(ModelError):
            ReferenceModel(k_neighbours=50).learn(windows, registry)

    def test_empty_windows_skipped(self, normal_mix, registry):
        windows = make_reference_windows(normal_mix)
        empties = [TraceWindow(index=1000 + i, start_us=0, end_us=10) for i in range(5)]
        model = ReferenceModel(k_neighbours=10).learn(windows + empties, registry)
        assert model.n_windows_seen == len(windows) + 5
        assert model.n_reference_windows <= len(windows)

    def test_unfitted_model_raises(self, registry):
        model = ReferenceModel()
        with pytest.raises(NotFittedError):
            model.lof_score(pmf_from_counts({"a": 1}, registry))
        with pytest.raises(NotFittedError):
            _ = model.dimension

    def test_from_points_validates_shape(self):
        with pytest.raises(ModelError):
            ReferenceModel.from_points(np.zeros((30, 3)), ["a", "b"], k_neighbours=5)

    def test_duplicated_windows_keep_model_usable(self, registry):
        # 200 windows with only two distinct event mixes: without the
        # deduplication step LOF densities collapse and everything looks
        # infinitely anomalous.
        windows = []
        for index in range(200):
            mix = (
                [("frame_display", 5), ("audio_decode", 3), ("vsync", 2)]
                if index % 2 == 0
                else [("frame_display", 4), ("audio_decode", 4), ("vsync", 2)]
            )
            events = []
            position = 0
            for name, count in mix:
                for _ in range(count):
                    events.append(TraceEvent(index * 1_000 + position, name))
                    position += 1
            windows.append(TraceWindow.from_events(events, index=index))
        model = ReferenceModel(k_neighbours=5).learn(windows, registry)
        # a window identical to the reference content must not look anomalous
        score = model.lof_score(pmf_from_window(windows[0], registry))
        assert score < 2.0


class TestScoring:
    def test_reference_like_windows_score_low(self, learned_model, normal_mix, registry):
        model, _ = learned_model
        fresh = make_reference_windows(normal_mix, seed=99)
        scores = [
            model.lof_score(pmf_from_window(window, registry)) for window in fresh[:50]
        ]
        assert np.median(scores) < 1.3

    def test_anomalous_windows_score_high(self, learned_model, anomaly_mix, registry):
        model, _ = learned_model
        weird = make_reference_windows(anomaly_mix, seed=5)
        scores = [
            model.lof_score(pmf_from_window(window, registry)) for window in weird[:50]
        ]
        assert np.median(scores) > 1.5
        assert model.is_anomalous(pmf_from_window(weird[0], registry), alpha=1.2)

    def test_unknown_event_types_push_score_up(self, learned_model, registry):
        model, _ = learned_model
        exotic = pmf_from_counts({"never_seen_before": 40}, registry)
        assert model.lof_score(exotic) > 1.5

    def test_mean_reference_pmf(self, learned_model, registry):
        model, _ = learned_model
        mean_pmf = model.mean_reference_pmf(registry)
        assert mean_pmf.total > 0
        assert mean_pmf.probabilities().sum() == pytest.approx(1.0)

    def test_suggest_alpha_is_at_least_one(self, learned_model):
        model, _ = learned_model
        assert model.suggest_alpha() >= 1.0


class TestPersistence:
    def test_save_load_roundtrip(self, learned_model, normal_mix, registry, tmp_path):
        model, _ = learned_model
        path = model.save(tmp_path / "model.npz")
        loaded = ReferenceModel.load(path)
        assert loaded.dimension == model.dimension
        assert loaded.type_names == model.type_names
        probe = pmf_from_window(make_reference_windows(normal_mix, seed=7)[3], registry)
        assert loaded.lof_score(probe) == pytest.approx(model.lof_score(probe), rel=1e-6)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ModelError):
            ReferenceModel.load(tmp_path / "nope.npz")

    def test_save_before_learning_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            ReferenceModel().save(tmp_path / "model.npz")

    def test_saved_index_restores_without_refit(self, normal_mix, registry, tmp_path):
        model = ReferenceModel(k_neighbours=10, index_kind="balltree").learn(
            make_reference_windows(normal_mix), registry
        )
        loaded = ReferenceModel.load(model.save(tmp_path / "model.npz"))
        # The fitted index travels inside the archive: the loaded model keeps
        # the balltree backend and scores bit-identically, no refit involved.
        assert loaded.index_kind == "balltree"
        queries = model.points[:20]
        np.testing.assert_array_equal(
            loaded.score_vectors(queries), model.score_vectors(queries)
        )
        np.testing.assert_array_equal(loaded.points, model.points)

    def test_save_without_index_refits_identically(self, learned_model, tmp_path):
        model, _ = learned_model
        path = model.save(tmp_path / "small.npz", include_index=False)
        with np.load(path) as data:
            assert "lof_state" not in data
        loaded = ReferenceModel.load(path)
        queries = model.points[:20]
        np.testing.assert_array_equal(
            loaded.score_vectors(queries), model.score_vectors(queries)
        )

    def test_corrupt_index_payload_rejected(self, learned_model, tmp_path):
        model, _ = learned_model
        path = model.save(tmp_path / "model.npz")
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["lof_state"] = np.frombuffer(b"definitely not a pickle", dtype=np.uint8)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ModelError):
            ReferenceModel.load(path)

    def test_fingerprint_tracks_identity(self, learned_model, registry):
        model, _ = learned_model
        fingerprint = model.fingerprint()
        assert fingerprint["dimension"] == model.dimension
        assert fingerprint["n_points"] == len(model.points)
        assert len(fingerprint["type_registry_hash"]) == 16
        with pytest.raises(NotFittedError):
            ReferenceModel().fingerprint()


class TestReferenceDatabase:
    def test_add_get_roundtrip(self, learned_model, tmp_path):
        model, _ = learned_model
        db = ReferenceDatabase(tmp_path / "refdb")
        db.add("gstreamer-1080p", model, description="healthy decode", tags=("video",))
        assert "gstreamer-1080p" in db
        assert db.names() == ["gstreamer-1080p"]
        loaded = db.get("gstreamer-1080p")
        assert loaded.dimension == model.dimension

    def test_duplicate_name_needs_overwrite(self, learned_model, tmp_path):
        model, _ = learned_model
        db = ReferenceDatabase(tmp_path / "refdb")
        db.add("m", model)
        with pytest.raises(ModelError):
            db.add("m", model)
        db.add("m", model, overwrite=True)

    def test_catalog_persists_across_instances(self, learned_model, tmp_path):
        model, _ = learned_model
        root = tmp_path / "refdb"
        ReferenceDatabase(root).add("persisted", model, tags=("a", "b"))
        reopened = ReferenceDatabase(root)
        assert "persisted" in reopened
        assert reopened.entry("persisted").tags == ("a", "b")
        assert len(reopened) == 1

    def test_remove(self, learned_model, tmp_path):
        model, _ = learned_model
        db = ReferenceDatabase(tmp_path / "refdb")
        db.add("gone", model)
        db.remove("gone")
        assert "gone" not in db
        with pytest.raises(ModelError):
            db.remove("gone")
        with pytest.raises(ModelError):
            db.get("gone")

    def test_find_by_tag(self, learned_model, tmp_path):
        model, _ = learned_model
        db = ReferenceDatabase(tmp_path / "refdb")
        db.add("a", model, tags=("video",))
        db.add("b", model, tags=("audio",))
        assert [entry.name for entry in db.find_by_tag("video")] == ["a"]

    def test_entry_serialisation_roundtrip(self):
        entry = ReferenceEntry(name="n", filename="n.npz", description="d", tags=("t",))
        assert ReferenceEntry.from_dict(entry.to_dict()) == entry
        with pytest.raises(ModelError):
            ReferenceEntry.from_dict({"description": "missing name"})

    def test_entry_roundtrip_keeps_fingerprint(self):
        entry = ReferenceEntry(
            name="n",
            filename="n.npz",
            fingerprint={"dimension": 4, "n_points": 100, "type_registry_hash": "ab"},
        )
        rebuilt = ReferenceEntry.from_dict(entry.to_dict())
        assert dict(rebuilt.fingerprint) == dict(entry.fingerprint)

    def test_stale_model_file_fails_fingerprint_check(self, learned_model, tmp_path):
        model, _ = learned_model
        db = ReferenceDatabase(tmp_path / "refdb")
        entry = db.add("gstreamer-1080p", model)
        # Replace the stored file behind the catalogue's back with a model
        # of a different shape — get() must refuse to score with it.
        imposter = ReferenceModel.from_points(
            model.points[:15], model.type_names, k_neighbours=10
        )
        imposter.save(db.root / entry.filename)
        with pytest.raises(ModelError, match="gstreamer-1080p.*fingerprint"):
            db.get("gstreamer-1080p")

    def test_fingerprint_check_passes_for_untouched_entry(self, learned_model, tmp_path):
        model, _ = learned_model
        db = ReferenceDatabase(tmp_path / "refdb")
        db.add("clean", model)
        loaded = ReferenceDatabase(tmp_path / "refdb").get("clean")
        assert loaded.fingerprint() == model.fingerprint()

    def test_empty_name_rejected(self, learned_model, tmp_path):
        model, _ = learned_model
        with pytest.raises(ModelError):
            ReferenceDatabase(tmp_path / "refdb").add("", model)
