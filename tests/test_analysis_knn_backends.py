"""Equivalence suite for the sublinear k-NN backends.

Every index behind :class:`~repro.analysis.knn.KnnIndex` is *exact*: for any
reference set and any query batch it must return bit-identical neighbour
sets — same distances, same indices, ties broken by ascending point index —
as :class:`BruteForceKnn`.  That contract is what lets the monitor swap
backends purely for speed: LOF scores, decisions, reports and recorded
bytes cannot change.  This module locks the contract down at every layer:

* raw index queries (single, batched, duplicates, degenerate dims, k edge
  cases, hypothesis-driven random instances),
* incremental ``add_points`` versus a from-scratch rebuild,
* pickle round-trips of fitted indexes (the PR 3 fleet transport path),
* LOF scores and ``partial_fit`` versus fit-on-combined,
* full monitor decisions/reports and fleet output files (serial and
  process-parallel) across ``MonitorConfig.knn_backend`` values.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.fleet import ShardedTraceMonitor
from repro.analysis.knn import (
    AUTO_CROSSOVER_POINTS,
    KNN_BACKENDS,
    BallTreeKnn,
    BruteForceKnn,
    GridSimplexKnn,
    KdTreeKnn,
    make_index,
    resolve_backend,
)
from repro.analysis.lof import LocalOutlierFactor
from repro.analysis.model import ReferenceModel
from repro.analysis.monitor import TraceMonitor
from repro.config import DetectorConfig, MonitorConfig
from repro.errors import ModelError
from repro.trace.event import EventTypeRegistry
from repro.trace.generator import PeriodicTraceGenerator, SyntheticTraceGenerator
from repro.trace.stream import windows_by_duration

INDEXED_BACKENDS = tuple(name for name in KNN_BACKENDS if name != "brute")

INDEX_CLASSES = {
    "brute": BruteForceKnn,
    "kdtree": KdTreeKnn,
    "grid": GridSimplexKnn,
    "balltree": BallTreeKnn,
}


def dirichlet_points(seed: int, n: int, dim: int) -> np.ndarray:
    """Clustered points on the probability simplex, like real pmf vectors."""
    rng = np.random.default_rng(seed)
    if dim == 1:
        # Degenerate simplex: every pmf is exactly (1.0,); perturb a little
        # so distance ties and near-ties both occur.
        return 1.0 + rng.normal(scale=1e-9, size=(n, 1))
    centers = rng.dirichlet(np.ones(dim), size=4)
    assignments = rng.integers(0, len(centers), size=n)
    points = np.empty((n, dim))
    for row, center in enumerate(assignments):
        points[row] = rng.dirichlet(centers[center] * 50.0 + 1e-3)
    return points


def assert_bit_identical(result, oracle):
    """Distances and indices must match exactly — not just approximately."""
    distances, indices = result
    oracle_distances, oracle_indices = oracle
    np.testing.assert_array_equal(indices, oracle_indices)
    np.testing.assert_array_equal(distances, oracle_distances)


class TestBackendRegistry:
    def test_backend_names(self):
        assert KNN_BACKENDS == ("brute", "kdtree", "grid", "balltree")

    def test_make_index_constructs_each_backend(self):
        points = dirichlet_points(0, 60, 4)
        for name in KNN_BACKENDS:
            assert isinstance(make_index(name, points), INDEX_CLASSES[name])

    def test_auto_resolves_by_reference_size(self):
        assert resolve_backend("auto", AUTO_CROSSOVER_POINTS - 1) == "brute"
        assert resolve_backend("auto", AUTO_CROSSOVER_POINTS) == "balltree"
        assert resolve_backend("grid", 10) == "grid"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ModelError):
            resolve_backend("octree", 100)
        with pytest.raises(ModelError):
            make_index("octree", dirichlet_points(0, 20, 3))
        with pytest.raises(ModelError):
            LocalOutlierFactor(k_neighbours=3, index_kind="octree")


class TestExactEquivalence:
    @pytest.mark.parametrize("backend", INDEXED_BACKENDS)
    @pytest.mark.parametrize("dim", [1, 3, 8])
    def test_query_many_bit_identical_to_brute(self, backend, dim):
        points = dirichlet_points(11, 300, dim)
        queries = np.vstack([points[:20], dirichlet_points(77, 25, dim)])
        brute = BruteForceKnn(points)
        index = make_index(backend, points)
        for k in (1, 5, len(points) - 1, len(points)):
            assert_bit_identical(
                index.query_many(queries, k), brute.query_many(queries, k)
            )

    @pytest.mark.parametrize("backend", KNN_BACKENDS)
    def test_batched_matches_single_queries(self, backend):
        points = dirichlet_points(5, 120, 6)
        queries = dirichlet_points(6, 9, 6)
        index = make_index(backend, points)
        distances, indices = index.query_many(queries, k=7)
        for row, query in enumerate(queries):
            solo_d, solo_i = index.query(query, k=7)
            np.testing.assert_array_equal(indices[row], solo_i)
            np.testing.assert_array_equal(distances[row], solo_d)

    @pytest.mark.parametrize("backend", KNN_BACKENDS)
    def test_equal_distances_break_ties_by_ascending_index(self, backend):
        # Every point identical: all candidate distances tie, so the k
        # nearest must be exactly the k lowest point indices.
        points = np.tile(np.array([[0.25, 0.25, 0.5]]), (40, 1))
        index = make_index(backend, points)
        for k in (1, 7, 40):
            _, indices = index.query(np.array([0.25, 0.25, 0.5]), k)
            assert indices.tolist() == list(range(k))

    @pytest.mark.parametrize("backend", INDEXED_BACKENDS)
    def test_duplicate_points_match_brute(self, backend):
        rng = np.random.default_rng(21)
        base = dirichlet_points(21, 30, 4)
        # Triplicate every point and shuffle, so ties cross block/cell
        # boundaries in the indexed backends.
        points = np.vstack([base, base, base])[rng.permutation(90)]
        queries = np.vstack([base[:10], dirichlet_points(22, 5, 4)])
        brute = BruteForceKnn(points)
        index = make_index(backend, points)
        for k in (1, 4, 89, 90):
            assert_bit_identical(
                index.query_many(queries, k), brute.query_many(queries, k)
            )

    @pytest.mark.parametrize("backend", INDEXED_BACKENDS)
    def test_constant_column_degenerate_dims(self, backend):
        # A pmf dimension that never varies (event type with constant share)
        # gives the index zero spread on that axis.
        rng = np.random.default_rng(31)
        points = np.zeros((80, 3))
        points[:, 0] = rng.uniform(size=80)
        points[:, 2] = 1.0 - points[:, 0]
        queries = points[:6] + rng.normal(scale=1e-3, size=(6, 3))
        assert_bit_identical(
            make_index(backend, points).query_many(queries, 10),
            BruteForceKnn(points).query_many(queries, 10),
        )

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        dim=st.integers(min_value=1, max_value=6),
        n=st.integers(min_value=12, max_value=70),
        k_choice=st.sampled_from(["one", "middle", "n_minus_1", "n"]),
        backend=st.sampled_from(INDEXED_BACKENDS),
    )
    def test_random_instances_match_brute(self, seed, dim, n, k_choice, backend):
        points = dirichlet_points(seed, n, dim)
        queries = np.vstack([points[: min(4, n)], dirichlet_points(seed + 1, 4, dim)])
        k = {"one": 1, "middle": max(1, n // 3), "n_minus_1": n - 1, "n": n}[k_choice]
        assert_bit_identical(
            make_index(backend, points).query_many(queries, k),
            BruteForceKnn(points).query_many(queries, k),
        )


class TestAddPoints:
    @pytest.mark.parametrize("backend", KNN_BACKENDS)
    def test_incremental_equals_from_scratch(self, backend):
        full = dirichlet_points(41, 240, 5)
        queries = dirichlet_points(42, 12, 5)
        index = make_index(backend, full[:100])
        for start in range(100, 240, 35):
            index.add_points(full[start : start + 35])
        assert index.n_points == 240
        rebuilt = make_index(backend, full)
        assert_bit_identical(
            index.query_many(queries, 9), rebuilt.query_many(queries, 9)
        )

    def test_balltree_tail_rebuild_keeps_equivalence(self):
        # Grow the tail far past the rebuild fraction so the absorbed tail
        # is folded back into the tree at least once.
        full = dirichlet_points(43, 400, 4)
        queries = dirichlet_points(44, 8, 4)
        index = BallTreeKnn(full[:80], leaf_size=16)
        for start in range(80, 400, 20):
            index.add_points(full[start : start + 20])
        assert_bit_identical(
            index.query_many(queries, 11),
            BruteForceKnn(full).query_many(queries, 11),
        )

    @pytest.mark.parametrize("backend", KNN_BACKENDS)
    def test_add_points_validation(self, backend):
        index = make_index(backend, dirichlet_points(45, 50, 3))
        with pytest.raises(ModelError):
            index.add_points(np.zeros((2, 5)))  # wrong dimension
        with pytest.raises(ModelError):
            index.add_points(np.array([[np.nan, 0.5, 0.5]]))


class TestPickleRoundTrip:
    @pytest.mark.parametrize("backend", KNN_BACKENDS)
    def test_fitted_index_survives_pickle(self, backend):
        points = dirichlet_points(51, 150, 4)
        queries = dirichlet_points(52, 10, 4)
        index = make_index(backend, points)
        index.add_points(dirichlet_points(53, 30, 4))
        clone = pickle.loads(pickle.dumps(index))
        assert clone.n_points == index.n_points
        assert_bit_identical(
            clone.query_many(queries, 8), index.query_many(queries, 8)
        )
        # The clone must keep absorbing points, same as the original.
        extra = dirichlet_points(54, 15, 4)
        index.add_points(extra)
        clone.add_points(extra)
        assert_bit_identical(
            clone.query_many(queries, 8), index.query_many(queries, 8)
        )


class TestLofAcrossBackends:
    @pytest.mark.parametrize("backend", INDEXED_BACKENDS)
    def test_scores_bit_identical_to_brute(self, backend):
        points = dirichlet_points(61, 260, 6)
        queries = dirichlet_points(62, 30, 6)
        brute = LocalOutlierFactor(k_neighbours=12, index_kind="brute").fit(points)
        other = LocalOutlierFactor(k_neighbours=12, index_kind=backend).fit(points)
        assert other.resolved_index_kind == backend
        np.testing.assert_array_equal(other.training_scores, brute.training_scores)
        np.testing.assert_array_equal(
            other.score_many(queries), brute.score_many(queries)
        )

    @pytest.mark.parametrize("backend", KNN_BACKENDS)
    def test_partial_fit_equals_fit_on_combined(self, backend):
        full = dirichlet_points(63, 200, 5)
        queries = dirichlet_points(64, 20, 5)
        grown = LocalOutlierFactor(k_neighbours=10, index_kind=backend).fit(full[:120])
        grown.partial_fit(full[120:160])
        grown.partial_fit(full[160:])
        fresh = LocalOutlierFactor(k_neighbours=10, index_kind=backend).fit(full)
        assert grown.n_reference_points == fresh.n_reference_points
        np.testing.assert_array_equal(grown.training_scores, fresh.training_scores)
        np.testing.assert_array_equal(
            grown.score_many(queries), fresh.score_many(queries)
        )

    def test_partial_fit_requires_fit(self):
        lof = LocalOutlierFactor(k_neighbours=5)
        with pytest.raises(Exception):
            lof.partial_fit(dirichlet_points(65, 10, 3))

    def test_auto_resolves_to_brute_for_small_references(self):
        points = dirichlet_points(66, 100, 4)
        lof = LocalOutlierFactor(k_neighbours=8, index_kind="auto").fit(points)
        assert lof.resolved_index_kind == "brute"


# --------------------------------------------------------------------------- #
# Monitor-level equivalence: decisions, reports and recorded bytes
# --------------------------------------------------------------------------- #

WINDOW_US = 40_000
K = 10
NORMAL_MIX = {"mb_row_decode": 8.0, "frame_display": 1.0, "vsync": 1.0, "audio_decode": 2.0}
ANOMALY_MIX = {"mb_row_decode": 1.0, "frame_drop": 3.0, "buffer_underrun": 2.0}


@pytest.fixture(scope="module")
def monitor_registry() -> EventTypeRegistry:
    registry = EventTypeRegistry()
    for name in NORMAL_MIX:
        registry.register(name)
    return registry


@pytest.fixture(scope="module")
def reference_windows():
    generator = SyntheticTraceGenerator(NORMAL_MIX, rate_per_s=2_000, seed=7)
    return list(windows_by_duration(generator.events(20.0), WINDOW_US))


@pytest.fixture(scope="module")
def monitored_streams():
    streams = {}
    for position in range(3):
        generator = PeriodicTraceGenerator(
            NORMAL_MIX,
            ANOMALY_MIX,
            anomaly_intervals=[(2.0 + position, 3.5 + position)],
            rate_per_s=2_000,
            seed=100 + position,
        )
        streams[f"device-{position}"] = list(
            windows_by_duration(generator.events(8.0), WINDOW_US)
        )
    return streams


def monitor_with_backend(backend, monitor_registry, reference_windows, monitored_streams):
    monitor = TraceMonitor(
        DetectorConfig(k_neighbours=K, lof_threshold=1.2),
        MonitorConfig(batch_size=16, record_context_windows=1, knn_backend=backend),
        EventTypeRegistry(monitor_registry.names),
    )
    model = monitor.learn_reference(iter(reference_windows))
    label = next(iter(monitored_streams))
    return model, monitor.monitor_windows(iter(monitored_streams[label]), model)


class TestMonitorBackendEquivalence:
    @pytest.mark.parametrize("backend", INDEXED_BACKENDS + ("auto",))
    def test_decisions_and_reports_match_brute(
        self, backend, monitor_registry, reference_windows, monitored_streams
    ):
        brute_model, brute_result = monitor_with_backend(
            "brute", monitor_registry, reference_windows, monitored_streams
        )
        model, result = monitor_with_backend(
            backend, monitor_registry, reference_windows, monitored_streams
        )
        assert model.points.shape == brute_model.points.shape
        assert result.decisions == brute_result.decisions
        assert result.lof_scores() == brute_result.lof_scores()
        assert result.recorded_indices == brute_result.recorded_indices
        assert result.report == brute_result.report
        assert result.detector_stats == brute_result.detector_stats

    @pytest.mark.parametrize("workers", [1, 2])
    def test_fleet_output_files_identical_across_backends(
        self, workers, tmp_path, monitor_registry, reference_windows, monitored_streams
    ):
        reference_model = ReferenceModel(k_neighbours=K).learn(
            iter(reference_windows), EventTypeRegistry(monitor_registry.names)
        )
        outputs = {}
        for backend in ("brute", "balltree"):
            config = MonitorConfig(
                batch_size=8,
                record_context_windows=1,
                fleet_workers=workers,
                knn_backend=backend,
            )
            model = ReferenceModel(k_neighbours=K, index_kind=backend).learn(
                iter(reference_windows), EventTypeRegistry(monitor_registry.names)
            )
            fleet = ShardedTraceMonitor(
                DetectorConfig(k_neighbours=K, lof_threshold=1.2),
                config,
                EventTypeRegistry(monitor_registry.names),
            )
            output_dir = tmp_path / f"{backend}-{workers}"
            result = fleet.monitor_shards(
                {label: iter(windows) for label, windows in monitored_streams.items()},
                model,
                output_dir=output_dir,
            )
            outputs[backend] = (result.to_dict(), {
                path.name: path.read_bytes()
                for path in sorted(output_dir.iterdir())
            })
        assert outputs["balltree"][0] == outputs["brute"][0]
        assert outputs["balltree"][1].keys() == outputs["brute"][1].keys()
        for name in outputs["brute"][1]:
            assert outputs["balltree"][1][name] == outputs["brute"][1][name], name

    def test_model_survives_worker_pickle_with_indexed_backend(
        self, monitor_registry, reference_windows
    ):
        model = ReferenceModel(k_neighbours=K, index_kind="balltree").learn(
            iter(reference_windows), EventTypeRegistry(monitor_registry.names)
        )
        clone = pickle.loads(pickle.dumps(model))
        queries = model.points[:10]
        np.testing.assert_array_equal(
            clone.score_vectors(queries), model.score_vectors(queries)
        )


class TestModelAdaptation:
    def test_learn_on_fitted_model_routes_to_adapt(
        self, monitor_registry, reference_windows
    ):
        registry = EventTypeRegistry(monitor_registry.names)
        model = ReferenceModel(k_neighbours=K).learn(
            iter(reference_windows[:300]), registry
        )
        n_before = model.n_reference_windows
        model.learn(iter(reference_windows[300:]), registry)
        assert model.n_windows_seen == len(reference_windows)
        assert model.n_reference_windows > n_before
        assert len(model.points) >= n_before

    @pytest.mark.parametrize("backend", ["brute", "balltree"])
    def test_adapt_scores_equal_fit_on_combined(
        self, backend, monitor_registry, reference_windows
    ):
        registry = EventTypeRegistry(monitor_registry.names)
        adapted = ReferenceModel(k_neighbours=K, index_kind=backend).learn(
            iter(reference_windows[:300]), registry
        )
        adapted.adapt(iter(reference_windows[300:]), registry)
        fresh = ReferenceModel(k_neighbours=K, index_kind=backend).learn(
            iter(reference_windows), registry
        )
        np.testing.assert_array_equal(
            np.sort(adapted.points, axis=0), np.sort(fresh.points, axis=0)
        )
        queries = fresh.points[::10]
        np.testing.assert_array_equal(
            adapted.score_vectors(queries), fresh.score_vectors(queries)
        )

    def test_adapt_on_unfitted_model_raises(self, monitor_registry, reference_windows):
        model = ReferenceModel(k_neighbours=K)
        with pytest.raises(Exception):
            model.adapt(iter(reference_windows[:50]), monitor_registry)

    def test_reindex_preserves_scores(self, monitor_registry, reference_windows):
        registry = EventTypeRegistry(monitor_registry.names)
        model = ReferenceModel(k_neighbours=K).learn(iter(reference_windows), registry)
        queries = model.points[:15]
        before = model.score_vectors(queries)
        model.reindex("grid")
        np.testing.assert_array_equal(model.score_vectors(queries), before)
        assert model.index_kind == "grid"
