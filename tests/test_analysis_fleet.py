"""Equivalence suite for the sharded monitoring fleet.

The contract being locked down: a :class:`ShardedTraceMonitor` run over N
labelled streams must be *bit-identical* — decisions, KL divergences, LOF
scores, recorded window indices, byte accounting, detector counters, output
files — to N independent :class:`TraceMonitor` runs over the same fitted
model, regardless of batch size, shard scheduling caps, submission order
**or execution backend**: the process-parallel fleet
(``MonitorConfig.fleet_workers > 1``) must reproduce the serial fleet
exactly, and a worker failure must surface as :class:`FleetError` naming
the shard after every sibling shard has closed its output file.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.analysis import parallel as parallel_backend
from repro.analysis.fleet import FleetResult, ShardedTraceMonitor
from repro.analysis.model import ReferenceModel
from repro.analysis.monitor import TraceMonitor
from repro.config import DetectorConfig, MonitorConfig
from repro.errors import FleetError, ModelError
from repro.experiments.endurance import run_fleet_endurance_experiment
from repro.trace.event import EventTypeRegistry, TraceEvent
from repro.trace.generator import PeriodicTraceGenerator, SyntheticTraceGenerator
from repro.trace.reader import read_trace
from repro.trace.stream import TraceStream, windows_by_duration
from repro.trace.window import TraceWindow
from tests.conftest import make_mini_config

WINDOW_US = 40_000
K = 10

NORMAL_MIX = {"mb_row_decode": 8.0, "frame_display": 1.0, "vsync": 1.0, "audio_decode": 2.0}
ANOMALY_MIX = {"mb_row_decode": 1.0, "frame_drop": 3.0, "buffer_underrun": 2.0}


@pytest.fixture(scope="module")
def base_registry() -> EventTypeRegistry:
    registry = EventTypeRegistry()
    for name in NORMAL_MIX:
        registry.register(name)
    return registry


@pytest.fixture(scope="module")
def shared_model(base_registry) -> ReferenceModel:
    generator = SyntheticTraceGenerator(NORMAL_MIX, rate_per_s=2_000, seed=7)
    reference = list(windows_by_duration(generator.events(20.0), WINDOW_US))
    return ReferenceModel(k_neighbours=K).learn(reference, base_registry)


@pytest.fixture(scope="module")
def stream_windows() -> dict[str, list]:
    """Five labelled streams: four perturbed ones and one with event types
    the reference run never produced (registry-isolation probe)."""
    streams = {}
    for position in range(4):
        generator = PeriodicTraceGenerator(
            NORMAL_MIX,
            ANOMALY_MIX,
            anomaly_intervals=[(2.0 + position, 3.5 + position)],
            rate_per_s=2_000,
            seed=100 + position,
        )
        streams[f"device-{position}"] = list(
            windows_by_duration(generator.events(8.0), WINDOW_US)
        )
    exotic_mix = dict(NORMAL_MIX)
    exotic_mix["never_seen_before"] = 4.0
    generator = SyntheticTraceGenerator(exotic_mix, rate_per_s=2_000, seed=999)
    streams["exotic"] = list(windows_by_duration(generator.events(8.0), WINDOW_US))
    return streams


def independent_results(detector_config, monitor_config, base_registry, shared_model, stream_windows):
    """N single-stream runs, each with its own clone of the base registry."""
    results = {}
    for label, windows in stream_windows.items():
        solo = TraceMonitor(
            detector_config, monitor_config, EventTypeRegistry(base_registry.names)
        )
        results[label] = solo.monitor_windows(iter(windows), shared_model)
    return results


def assert_shard_equals_solo(shard, solo):
    assert shard.decisions == solo.decisions
    assert shard.lof_scores() == solo.lof_scores()
    assert shard.recorded_indices == solo.recorded_indices
    assert shard.report == solo.report
    assert shard.detector_stats == solo.detector_stats


class TestFleetEquivalence:
    @pytest.mark.parametrize("batch_size", [1, 4, 64])
    def test_fleet_identical_to_independent_runs(
        self, base_registry, shared_model, stream_windows, batch_size
    ):
        detector_config = DetectorConfig(k_neighbours=K, lof_threshold=1.2)
        monitor_config = MonitorConfig(batch_size=batch_size, record_context_windows=1)
        fleet = ShardedTraceMonitor(
            detector_config, monitor_config, EventTypeRegistry(base_registry.names)
        )
        fleet_result = fleet.monitor_shards(
            {label: iter(windows) for label, windows in stream_windows.items()},
            shared_model,
        )
        solo_results = independent_results(
            detector_config, monitor_config, base_registry, shared_model, stream_windows
        )
        assert fleet_result.shard_labels == tuple(stream_windows)
        for label in stream_windows:
            assert_shard_equals_solo(fleet_result.shard(label), solo_results[label])

    def test_max_active_shards_does_not_change_results(
        self, base_registry, shared_model, stream_windows
    ):
        detector_config = DetectorConfig(k_neighbours=K, lof_threshold=1.2)
        reference = None
        for cap in (None, 1, 2, 3):
            monitor_config = MonitorConfig(batch_size=16, max_active_shards=cap)
            fleet = ShardedTraceMonitor(
                detector_config, monitor_config, EventTypeRegistry(base_registry.names)
            )
            result = fleet.monitor_shards(
                {label: iter(windows) for label, windows in stream_windows.items()},
                shared_model,
            )
            payload = result.to_dict()
            if reference is None:
                reference = payload
            else:
                assert payload == reference

    def test_deterministic_across_repeated_runs(
        self, base_registry, shared_model, stream_windows
    ):
        detector_config = DetectorConfig(k_neighbours=K, lof_threshold=1.2)
        monitor_config = MonitorConfig(batch_size=8)

        def run():
            fleet = ShardedTraceMonitor(
                detector_config, monitor_config, EventTypeRegistry(base_registry.names)
            )
            return fleet.monitor_shards(
                {label: iter(windows) for label, windows in stream_windows.items()},
                shared_model,
            )

        first, second = run(), run()
        assert first.to_dict() == second.to_dict()
        for label in stream_windows:
            assert first.shard(label).decisions == second.shard(label).decisions

    def test_output_files_match_single_stream_runs(
        self, tmp_path, base_registry, shared_model, stream_windows
    ):
        detector_config = DetectorConfig(k_neighbours=K, lof_threshold=1.2)
        monitor_config = MonitorConfig(batch_size=16, record_context_windows=1)
        fleet = ShardedTraceMonitor(
            detector_config, monitor_config, EventTypeRegistry(base_registry.names)
        )
        fleet_dir = tmp_path / "fleet"
        fleet.monitor_shards(
            {label: iter(windows) for label, windows in stream_windows.items()},
            shared_model,
            output_dir=fleet_dir,
        )
        for label, windows in stream_windows.items():
            solo = TraceMonitor(
                detector_config, monitor_config, EventTypeRegistry(base_registry.names)
            )
            solo_path = tmp_path / f"solo-{label}.jsonl"
            solo.monitor_windows(iter(windows), shared_model, output_path=solo_path)
            assert read_trace(fleet_dir / f"{label}.jsonl") == read_trace(solo_path)


class TestFleetAggregation:
    @pytest.fixture(scope="class")
    def fleet_result(self, base_registry, shared_model, stream_windows) -> FleetResult:
        fleet = ShardedTraceMonitor(
            DetectorConfig(k_neighbours=K, lof_threshold=1.2),
            MonitorConfig(batch_size=16),
            EventTypeRegistry(base_registry.names),
        )
        return fleet.monitor_shards(
            {label: iter(windows) for label, windows in stream_windows.items()},
            shared_model,
        )

    def test_aggregates_are_sums_of_shards(self, fleet_result):
        shards = fleet_result.shard_results.values()
        assert fleet_result.n_shards == len(fleet_result.shard_results)
        assert fleet_result.n_windows == sum(s.n_windows for s in shards)
        assert fleet_result.n_anomalous == sum(s.n_anomalous for s in shards)
        report = fleet_result.report
        for attribute in (
            "total_windows",
            "total_events",
            "total_bytes",
            "recorded_windows",
            "recorded_events",
            "recorded_bytes",
        ):
            assert getattr(report, attribute) == sum(
                getattr(s.report, attribute) for s in shards
            )
        assert fleet_result.reduction_factor == report.reduction_factor
        assert fleet_result.anomaly_rate == pytest.approx(
            fleet_result.n_anomalous / fleet_result.n_windows
        )

    def test_merged_detector_stats(self, fleet_result):
        stats = fleet_result.detector_stats
        shards = fleet_result.shard_results.values()
        assert stats["windows_processed"] == sum(
            s.detector_stats["windows_processed"] for s in shards
        )
        assert stats["lof_computations"] == sum(
            s.detector_stats["lof_computations"] for s in shards
        )
        assert stats["lof_computation_rate"] == pytest.approx(
            stats["lof_computations"] / stats["windows_processed"]
        )

    def test_recorded_indices_per_shard(self, fleet_result):
        per_shard = fleet_result.recorded_indices
        assert set(per_shard) == set(fleet_result.shard_labels)
        for label, indices in per_shard.items():
            assert indices == fleet_result.shard(label).recorded_indices

    def test_to_dict_is_json_ready(self, fleet_result):
        import json

        payload = fleet_result.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["fleet"]["n_shards"] == fleet_result.n_shards
        assert set(payload["shards"]) == set(fleet_result.shard_labels)


def run_fleet(base_registry, shared_model, stream_windows, monitor_config, output_dir=None):
    fleet = ShardedTraceMonitor(
        DetectorConfig(k_neighbours=K, lof_threshold=1.2),
        monitor_config,
        EventTypeRegistry(base_registry.names),
    )
    return fleet.monitor_shards(
        {label: iter(windows) for label, windows in stream_windows.items()},
        shared_model,
        output_dir=output_dir,
    )


class TestParallelFleetEquivalence:
    """The process-parallel backend against the serial fleet oracle."""

    @pytest.mark.parametrize("workers", [2, 3])
    @pytest.mark.parametrize("batch_size", [1, 16])
    def test_parallel_bit_identical_to_serial(
        self, base_registry, shared_model, stream_windows, workers, batch_size
    ):
        serial = run_fleet(
            base_registry,
            shared_model,
            stream_windows,
            MonitorConfig(batch_size=batch_size, record_context_windows=1),
        )
        parallel = run_fleet(
            base_registry,
            shared_model,
            stream_windows,
            MonitorConfig(
                batch_size=batch_size,
                record_context_windows=1,
                fleet_workers=workers,
            ),
        )
        assert parallel.shard_labels == serial.shard_labels
        assert parallel.to_dict() == serial.to_dict()
        for label in stream_windows:
            assert_shard_equals_solo(parallel.shard(label), serial.shard(label))

    def test_parallel_identical_to_independent_runs(
        self, base_registry, shared_model, stream_windows
    ):
        detector_config = DetectorConfig(k_neighbours=K, lof_threshold=1.2)
        monitor_config = MonitorConfig(batch_size=8, fleet_workers=2)
        parallel = run_fleet(
            base_registry, shared_model, stream_windows, monitor_config
        )
        solo_results = independent_results(
            detector_config, monitor_config, base_registry, shared_model, stream_windows
        )
        for label in stream_windows:
            assert_shard_equals_solo(parallel.shard(label), solo_results[label])

    def test_parallel_output_files_identical_to_serial(
        self, tmp_path, base_registry, shared_model, stream_windows
    ):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        run_fleet(
            base_registry,
            shared_model,
            stream_windows,
            MonitorConfig(batch_size=16, record_context_windows=1),
            output_dir=serial_dir,
        )
        run_fleet(
            base_registry,
            shared_model,
            stream_windows,
            MonitorConfig(
                batch_size=16, record_context_windows=1, fleet_workers=2
            ),
            output_dir=parallel_dir,
        )
        for label in stream_windows:
            parallel_file = parallel_dir / f"{label}.jsonl"
            serial_file = serial_dir / f"{label}.jsonl"
            assert parallel_file.read_bytes() == serial_file.read_bytes()

    def test_parallel_deterministic_across_repeated_runs(
        self, base_registry, shared_model, stream_windows
    ):
        config = MonitorConfig(batch_size=8, fleet_workers=3)
        first = run_fleet(base_registry, shared_model, stream_windows, config)
        second = run_fleet(base_registry, shared_model, stream_windows, config)
        assert first.to_dict() == second.to_dict()
        for label in stream_windows:
            assert first.shard(label).decisions == second.shard(label).decisions

    def test_pickle_transport_matches_fork_transport(
        self, base_registry, shared_model, stream_windows, monkeypatch
    ):
        """Both window transports (fork inheritance / pickle queue) agree."""
        config = MonitorConfig(batch_size=16, fleet_workers=2)
        default_transport = run_fleet(
            base_registry, shared_model, stream_windows, config
        )
        monkeypatch.setattr(
            parallel_backend, "fork_transport_available", lambda: False
        )
        pickled_transport = run_fleet(
            base_registry, shared_model, stream_windows, config
        )
        assert pickled_transport.to_dict() == default_transport.to_dict()
        for label in stream_windows:
            assert (
                pickled_transport.shard(label).decisions
                == default_transport.shard(label).decisions
            )

    def test_worker_count_larger_than_fleet(
        self, base_registry, shared_model, stream_windows
    ):
        serial = run_fleet(
            base_registry, shared_model, stream_windows, MonitorConfig(batch_size=16)
        )
        oversized = run_fleet(
            base_registry,
            shared_model,
            stream_windows,
            MonitorConfig(batch_size=16, fleet_workers=32),
        )
        assert oversized.to_dict() == serial.to_dict()


class TestParallelFleetFailures:
    """Worker failures must surface as FleetError, never as a hang."""

    @pytest.fixture()
    def good_windows(self) -> list:
        generator = SyntheticTraceGenerator(NORMAL_MIX, rate_per_s=2_000, seed=5)
        return list(windows_by_duration(generator.events(4.0), WINDOW_US))

    @pytest.fixture()
    def poison_windows(self) -> list:
        # A perfectly valid TraceWindow whose event carries core=999: the
        # codec's byte accounting rejects it inside the worker, long after
        # the parent validated and pickled the shard.
        return [
            TraceWindow(
                0, 0, WINDOW_US, (TraceEvent(5, "mb_row_decode", core=999),)
            )
        ]

    def test_worker_failure_names_shard_and_closes_others(
        self, tmp_path, base_registry, shared_model, good_windows, poison_windows
    ):
        detector_config = DetectorConfig(k_neighbours=K, lof_threshold=1.2)
        fleet = ShardedTraceMonitor(
            detector_config,
            MonitorConfig(batch_size=8, fleet_workers=2),
            EventTypeRegistry(base_registry.names),
        )
        output_dir = tmp_path / "fleet"
        with pytest.raises(FleetError, match="'poison'"):
            fleet.monitor_shards(
                {
                    "healthy-a": iter(good_windows),
                    "poison": iter(poison_windows),
                    "healthy-b": iter(list(good_windows)),
                },
                shared_model,
                output_dir=output_dir,
            )
        # Every sibling shard ran to completion and closed its output file:
        # the recorded bytes equal an independent single-stream run's.
        solo = TraceMonitor(
            detector_config,
            MonitorConfig(batch_size=8),
            EventTypeRegistry(base_registry.names),
        )
        solo_path = tmp_path / "solo.jsonl"
        solo.monitor_windows(iter(good_windows), shared_model, output_path=solo_path)
        for label in ("healthy-a", "healthy-b"):
            assert (output_dir / f"{label}.jsonl").read_bytes() == solo_path.read_bytes()

    def test_failure_carries_original_error_text(
        self, base_registry, shared_model, poison_windows
    ):
        fleet = ShardedTraceMonitor(
            DetectorConfig(k_neighbours=K),
            MonitorConfig(batch_size=8, fleet_workers=2),
            EventTypeRegistry(base_registry.names),
        )
        with pytest.raises(FleetError, match="TraceFormatError"):
            fleet.monitor_shards({"poison": iter(poison_windows)}, shared_model)

    def test_serial_backend_propagates_failures_too(
        self, base_registry, shared_model, poison_windows
    ):
        from repro.errors import TraceFormatError

        fleet = ShardedTraceMonitor(
            DetectorConfig(k_neighbours=K),
            MonitorConfig(batch_size=8),
            EventTypeRegistry(base_registry.names),
        )
        with pytest.raises(TraceFormatError):
            fleet.monitor_shards({"poison": iter(poison_windows)}, shared_model)


class TestParallelWorkerInternals:
    """The worker entry points, driven in-process for exact coverage."""

    @pytest.fixture()
    def worker_state(self, base_registry, shared_model):
        return parallel_backend._WorkerState(
            model=shared_model,
            detector_config=DetectorConfig(k_neighbours=K, lof_threshold=1.2),
            monitor_config=MonitorConfig(batch_size=8),
            registry_names=base_registry.names,
        )

    @pytest.fixture()
    def installed_worker_state(self, worker_state):
        payload = pickle.dumps(worker_state)
        saved = parallel_backend._WORKER_STATE
        parallel_backend._initialize_worker(payload)
        yield parallel_backend._WORKER_STATE
        parallel_backend._WORKER_STATE = saved

    def test_run_shard_matches_solo_monitor(
        self, installed_worker_state, base_registry, shared_model, stream_windows
    ):
        label, windows = next(iter(stream_windows.items()))
        outcome = parallel_backend._run_shard(
            parallel_backend._ShardTask(label, tuple(windows), None, False)
        )
        assert outcome.error is None
        solo = TraceMonitor(
            DetectorConfig(k_neighbours=K, lof_threshold=1.2),
            MonitorConfig(batch_size=8),
            EventTypeRegistry(base_registry.names),
        ).monitor_windows(iter(windows), shared_model)
        assert outcome.decisions == solo.decisions
        assert outcome.report == solo.report
        assert outcome.recorded_indices == solo.recorded_indices
        assert outcome.detector_stats == solo.detector_stats

    def test_run_shard_marshals_exceptions_as_data(self, installed_worker_state):
        poison = TraceWindow(0, 0, WINDOW_US, (TraceEvent(5, "mb_row_decode", core=999),))
        outcome = parallel_backend._run_shard(
            parallel_backend._ShardTask("bad", (poison,), None, False)
        )
        assert outcome.error is not None
        assert "TraceFormatError" in outcome.error

    def test_run_shard_without_windows_reports_error(self, installed_worker_state):
        outcome = parallel_backend._run_shard(
            parallel_backend._ShardTask("ghost", None, None, False)
        )
        assert outcome.error is not None
        assert "neither pickled nor fork-inherited" in outcome.error

    def test_run_shard_reads_fork_inherited_windows(
        self, installed_worker_state, stream_windows, monkeypatch
    ):
        label, windows = next(iter(stream_windows.items()))
        monkeypatch.setattr(
            parallel_backend, "_SHARD_WINDOWS", {label: tuple(windows)}
        )
        inherited = parallel_backend._run_shard(
            parallel_backend._ShardTask(label, None, None, False)
        )
        shipped = parallel_backend._run_shard(
            parallel_backend._ShardTask(label, tuple(windows), None, False)
        )
        assert inherited.error is None
        assert inherited.decisions == shipped.decisions
        assert inherited.report == shipped.report

    def test_run_shard_without_initialisation_reports_error(self):
        saved = parallel_backend._WORKER_STATE
        parallel_backend._WORKER_STATE = None
        try:
            outcome = parallel_backend._run_shard(
                parallel_backend._ShardTask("orphan", (), None, False)
            )
        finally:
            parallel_backend._WORKER_STATE = saved
        assert outcome.error is not None and "initialised" in outcome.error

    def test_model_pickle_roundtrip_scores_identically(self, shared_model, base_registry):
        clone = pickle.loads(pickle.dumps(shared_model))
        assert clone._projection_cache == {}
        assert clone.type_names == shared_model.type_names
        np.testing.assert_array_equal(clone.points, shared_model.points)
        probe = np.full((3, shared_model.dimension), 1.0 / shared_model.dimension)
        np.testing.assert_array_equal(
            clone.score_vectors(clone.vectors_for(probe, EventTypeRegistry(base_registry.names))),
            shared_model.score_vectors(
                shared_model.vectors_for(probe, EventTypeRegistry(base_registry.names))
            ),
        )

    def test_recorder_refuses_to_pickle(self):
        from repro.analysis.recorder import SelectiveTraceRecorder
        from repro.errors import RecorderError

        recorder = SelectiveTraceRecorder()
        with pytest.raises(RecorderError, match="worker-local"):
            pickle.dumps(recorder)
        assert not recorder.closed
        recorder.close()
        assert recorder.closed

    def test_fleet_workers_config_validated(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            MonitorConfig(fleet_workers=0)


class TestFleetValidation:
    def test_unfitted_model_rejected(self, base_registry, stream_windows):
        fleet = ShardedTraceMonitor(registry=EventTypeRegistry(base_registry.names))
        with pytest.raises(ModelError):
            fleet.monitor_shards(
                {"x": iter(next(iter(stream_windows.values())))},
                ReferenceModel(k_neighbours=K),
            )

    def test_unknown_shard_label_rejected(self, base_registry, shared_model, stream_windows):
        fleet = ShardedTraceMonitor(
            DetectorConfig(k_neighbours=K),
            MonitorConfig(batch_size=16),
            EventTypeRegistry(base_registry.names),
        )
        result = fleet.monitor_shards(
            {"only": iter(next(iter(stream_windows.values())))}, shared_model
        )
        with pytest.raises(FleetError):
            result.shard("nope")

    def test_empty_fleet(self, shared_model, base_registry):
        fleet = ShardedTraceMonitor(registry=EventTypeRegistry(base_registry.names))
        result = fleet.monitor_shards({}, shared_model)
        assert result.n_shards == 0
        assert result.n_windows == 0
        assert result.anomaly_rate == 0.0
        assert result.report.reduction_factor == 1.0

    def test_sequence_streams_get_default_labels(self, base_registry, shared_model):
        events = [TraceEvent(i * 1_000, "mb_row_decode", task="t") for i in range(200)]
        streams = [TraceStream(iter(list(events))) for _ in range(3)]
        fleet = ShardedTraceMonitor(
            DetectorConfig(k_neighbours=K),
            MonitorConfig(window_duration_us=WINDOW_US),
            EventTypeRegistry(base_registry.names),
        )
        result = fleet.run_on_streams(streams, shared_model)
        assert result.shard_labels == ("stream-00", "stream-01", "stream-02")


class TestFleetEnduranceExperiment:
    def test_multi_stream_endurance_entry_point(self):
        config = make_mini_config(duration_s=90.0)
        result = run_fleet_endurance_experiment(config, n_streams=2, seed_stride=17)
        assert result.n_streams == 2
        assert result.reference_window_count > 0
        assert result.fleet_result.n_shards == 2
        assert result.fleet_result.n_windows > 0
        payload = result.summary()
        assert payload["fleet"]["n_streams"] == 2
        assert "stream-00" in payload["shards"]
        # Different media seeds must give genuinely different streams.
        shard0, shard1 = result.fleet_result.shard_results.values()
        assert shard0.report.total_bytes != shard1.report.total_bytes

    def test_n_streams_validation(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            run_fleet_endurance_experiment(make_mini_config(), n_streams=0)

    def test_worker_pool_matches_serial_endurance_fleet(self):
        config = make_mini_config(duration_s=90.0)
        serial = run_fleet_endurance_experiment(config, n_streams=2, seed_stride=17)
        parallel = run_fleet_endurance_experiment(
            config, n_streams=2, seed_stride=17, fleet_workers=2
        )
        assert parallel.config.monitor.fleet_workers == 2
        summary = parallel.summary()
        reference = serial.summary()
        assert summary["shards"] == reference["shards"]
        assert summary["fleet"]["n_windows"] == reference["fleet"]["n_windows"]
        assert summary["fleet"]["n_anomalous"] == reference["fleet"]["n_anomalous"]
