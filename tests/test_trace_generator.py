"""Tests for the synthetic trace generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.trace.generator import PeriodicTraceGenerator, SyntheticTraceGenerator


class TestSyntheticTraceGenerator:
    def test_deterministic_for_same_seed(self):
        mix = {"a": 1.0, "b": 2.0}
        first = list(SyntheticTraceGenerator(mix, rate_per_s=1000, seed=3).events(1.0))
        second = list(SyntheticTraceGenerator(mix, rate_per_s=1000, seed=3).events(1.0))
        assert first == second

    def test_different_seed_differs(self):
        mix = {"a": 1.0, "b": 2.0}
        first = list(SyntheticTraceGenerator(mix, rate_per_s=1000, seed=1).events(1.0))
        second = list(SyntheticTraceGenerator(mix, rate_per_s=1000, seed=2).events(1.0))
        assert first != second

    def test_rate_approximately_respected(self):
        events = list(
            SyntheticTraceGenerator({"a": 1.0}, rate_per_s=5000, seed=0).events(2.0)
        )
        assert 8_000 < len(events) < 12_000

    def test_mix_approximately_respected(self):
        events = list(
            SyntheticTraceGenerator({"a": 3.0, "b": 1.0}, rate_per_s=5000, seed=0).events(2.0)
        )
        fraction_a = sum(1 for event in events if event.etype == "a") / len(events)
        assert 0.70 < fraction_a < 0.80

    def test_timestamps_sorted_and_in_range(self):
        events = list(
            SyntheticTraceGenerator({"a": 1.0}, rate_per_s=2000, seed=0).events(
                1.0, start_us=500_000
            )
        )
        timestamps = [event.timestamp_us for event in events]
        assert timestamps == sorted(timestamps)
        assert all(500_000 <= t < 1_500_000 for t in timestamps)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            SyntheticTraceGenerator({}, rate_per_s=100)
        with pytest.raises(ConfigurationError):
            SyntheticTraceGenerator({"a": 1.0}, rate_per_s=0)
        with pytest.raises(ConfigurationError):
            SyntheticTraceGenerator({"a": -1.0})
        with pytest.raises(ConfigurationError):
            list(SyntheticTraceGenerator({"a": 1.0}).events(0))

    def test_anomalous_variant_shifts_mix(self):
        base = SyntheticTraceGenerator({"a": 1.0, "b": 1.0}, rate_per_s=3000, seed=0)
        shifted = base.anomalous_variant({"b": 5.0})
        events = list(shifted.events(2.0))
        fraction_b = sum(1 for event in events if event.etype == "b") / len(events)
        assert fraction_b > 0.7


class TestPeriodicTraceGenerator:
    def _generator(self, **kwargs):
        defaults = dict(
            normal_mix={"normal": 1.0},
            anomaly_mix={"weird": 1.0},
            anomaly_intervals=[(1.0, 2.0)],
            rate_per_s=3000,
            seed=5,
        )
        defaults.update(kwargs)
        return PeriodicTraceGenerator(**defaults)

    def test_anomalous_events_only_inside_intervals(self):
        events = list(self._generator().events(3.0))
        for event in events:
            t_s = event.timestamp_us / 1e6
            if event.etype == "weird":
                assert 1.0 <= t_s < 2.0
            else:
                assert not (1.0 <= t_s < 2.0)

    def test_anomaly_rate_override(self):
        generator = self._generator(anomaly_rate_per_s=9000)
        events = list(generator.events(3.0))
        inside = sum(1 for e in events if 1.0 <= e.timestamp_us / 1e6 < 2.0)
        outside = len(events) - inside
        # the anomalous second is ~3x denser than a normal second (of which there are 2)
        assert inside > outside

    def test_invalid_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            self._generator(anomaly_intervals=[(2.0, 1.0)])

    def test_task_field_marks_regime(self):
        events = list(self._generator().events(3.0))
        assert {event.task for event in events} == {"normal", "anomaly"}

    def test_deterministic(self):
        assert list(self._generator().events(2.0)) == list(self._generator().events(2.0))
