"""Chaos suite: deterministic fault injection against the fleet's guarantees.

Every test here drives a *real* failure — a worker exception, a hard
``os._exit`` kill, an ENOSPC write error, garbled stream bytes — through
the production code paths via :mod:`repro.testing.faults`, and asserts the
fault-tolerance contract:

* shard isolation: a failing shard is quarantined while its siblings
  produce results bit-identical to fault-free runs;
* retry equivalence: a retried shard's results are bit-identical to a run
  that never faulted;
* crash consistency: a killed worker leaves no partial output file, and
  ``manifest.json`` records exactly what is on disk;
* corrupt-record quarantine: mangled records are skipped, counted and
  located — never silently dropped, never fatal unless asked;
* the default policy (``abort``, ``on_corrupt="raise"``) is unchanged.
"""

from __future__ import annotations

import errno
import json
import struct
import threading

import numpy as np
import pytest

from repro.analysis import parallel as parallel_backend
from repro.analysis.fleet import MANIFEST_NAME, ShardedTraceMonitor
from repro.analysis.model import ReferenceModel
from repro.analysis.recorder import partial_output_path
from repro.cli.main import main as cli_main
from repro.config import DetectorConfig, MonitorConfig
from repro.errors import FaultInjectionError, TraceFormatError, TraceStreamError
from repro.testing import FaultSpec, InjectedFault, corrupt_chunk, fault_point, inject
from repro.testing import faults as faults_module
from repro.trace.codec import BinaryTraceCodec
from repro.trace.columns import (
    BinaryColumnsDecoder,
    JsonColumnsDecoder,
    decode_binary_columns,
)
from repro.trace.event import EventTypeRegistry, TraceEvent
from repro.trace.generator import PeriodicTraceGenerator, SyntheticTraceGenerator
from repro.trace.stream import windows_by_duration
from repro.trace.streaming import StreamRecipe, StreamingWindowSource
from repro.trace.writer import write_trace

WINDOW_US = 40_000
K = 10

NORMAL_MIX = {"mb_row_decode": 8.0, "frame_display": 1.0, "vsync": 1.0, "audio_decode": 2.0}
ANOMALY_MIX = {"mb_row_decode": 1.0, "frame_drop": 3.0, "buffer_underrun": 2.0}


@pytest.fixture(scope="module")
def base_registry() -> EventTypeRegistry:
    registry = EventTypeRegistry()
    for name in NORMAL_MIX:
        registry.register(name)
    return registry


@pytest.fixture(scope="module")
def shared_model(base_registry) -> ReferenceModel:
    generator = SyntheticTraceGenerator(NORMAL_MIX, rate_per_s=2_000, seed=7)
    reference = list(windows_by_duration(generator.events(12.0), WINDOW_US))
    return ReferenceModel(k_neighbours=K).learn(reference, base_registry)


@pytest.fixture(scope="module")
def stream_windows() -> dict[str, list]:
    """Three labelled streams with anomalous stretches (so recording happens)."""
    streams = {}
    for position in range(3):
        generator = PeriodicTraceGenerator(
            NORMAL_MIX,
            ANOMALY_MIX,
            anomaly_intervals=[(1.0 + position * 0.5, 2.0 + position * 0.5)],
            rate_per_s=2_000,
            seed=300 + position,
        )
        streams[f"dev-{position}"] = list(
            windows_by_duration(generator.events(4.0), WINDOW_US)
        )
    return streams


def make_fleet(base_registry, **config_kwargs) -> ShardedTraceMonitor:
    detector_config = DetectorConfig(k_neighbours=K, lof_threshold=1.2)
    monitor_config = MonitorConfig(record_context_windows=1, **config_kwargs)
    return ShardedTraceMonitor(
        detector_config, monitor_config, EventTypeRegistry(base_registry.names)
    )


def assert_shard_equals(shard, other) -> None:
    assert shard.decisions == other.decisions
    assert shard.lof_scores() == other.lof_scores()
    assert shard.recorded_indices == other.recorded_indices
    assert shard.report == other.report
    assert shard.detector_stats == other.detector_stats


# ---------------------------------------------------------------------- #
# The injection harness itself
# ---------------------------------------------------------------------- #
class TestFaultHarness:
    def test_spec_validation(self):
        with pytest.raises(FaultInjectionError, match="unknown fault action"):
            FaultSpec(site="x", action="explode")
        with pytest.raises(FaultInjectionError, match="non-empty"):
            FaultSpec(site="")
        with pytest.raises(FaultInjectionError, match="attempts"):
            FaultSpec(site="x", attempts=())
        with pytest.raises(FaultInjectionError, match="attempts"):
            FaultSpec(site="x", attempts=(0,))
        with pytest.raises(FaultInjectionError, match="after"):
            FaultSpec(site="x", after=-1)
        with pytest.raises(FaultInjectionError, match="count"):
            FaultSpec(site="x", count=0)

    def test_plan_roundtrip(self):
        specs = (
            FaultSpec(site="shard.start", shard="a", attempts=(1, 2), after=3),
            FaultSpec(site="recorder.write", action="oserror"),
        )
        assert faults_module.decode_plan(faults_module.encode_plan(specs)) == specs

    def test_decode_plan_rejects_garbage(self):
        with pytest.raises(FaultInjectionError, match="unparseable"):
            faults_module.decode_plan("not json")
        with pytest.raises(FaultInjectionError, match="JSON list"):
            faults_module.decode_plan('{"site": "x"}')
        with pytest.raises(FaultInjectionError, match="malformed fault spec"):
            faults_module.decode_plan('[{"site": "x", "bogus_field": 1}]')

    def test_fault_point_is_noop_without_plan(self, monkeypatch):
        monkeypatch.delenv(faults_module.ENV_VAR, raising=False)
        fault_point("shard.start")  # must not raise
        assert corrupt_chunk("stream.chunk", b"abc") == b"abc"

    def test_after_and_count_schedule(self):
        fired = 0
        with inject(FaultSpec(site="shard.batch", after=2, count=1)):
            for _ in range(6):
                try:
                    fault_point("shard.batch")
                except InjectedFault:
                    fired += 1
        assert fired == 1  # hits 1 and 2 pass, hit 3 fires, 4-6 pass again

    def test_shard_scope_filters_by_label_and_attempt(self):
        spec = FaultSpec(site="shard.start", shard="a", attempts=(2,))
        with inject(spec):
            with faults_module.shard_scope("b", 2):
                fault_point("shard.start")  # wrong shard
            with faults_module.shard_scope("a", 1):
                fault_point("shard.start")  # wrong attempt
            with faults_module.shard_scope("a", 2):
                with pytest.raises(InjectedFault, match="shard='a', attempt=2"):
                    fault_point("shard.start")

    def test_oserror_action_is_enospc(self):
        with inject(FaultSpec(site="recorder.write", action="oserror")):
            with pytest.raises(OSError) as excinfo:
                fault_point("recorder.write")
        assert excinfo.value.errno == errno.ENOSPC

    def test_injected_fault_is_not_a_repro_error(self):
        from repro.errors import ReproError

        assert not issubclass(InjectedFault, ReproError)

    def test_corrupt_chunk_is_deterministic(self):
        data = bytes(range(64))
        with inject(FaultSpec(site="stream.chunk", action="garble", count=2)):
            first = corrupt_chunk("stream.chunk", data)
        with inject(FaultSpec(site="stream.chunk", action="garble", count=2)):
            second = corrupt_chunk("stream.chunk", data)
        assert first == second != data
        with inject(FaultSpec(site="stream.chunk", action="truncate")):
            half = corrupt_chunk("stream.chunk", data)
        assert half == data[:32]


# ---------------------------------------------------------------------- #
# Decoder-level corrupt-record quarantine
# ---------------------------------------------------------------------- #
class TestJsonDecoderQuarantine:
    GOOD = b'{"t": 10, "type": "a"}\n{"t": 20, "type": "b"}\n'

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="on_corrupt"):
            JsonColumnsDecoder(on_corrupt="ignore")

    def test_skip_counts_and_locates_bad_lines(self):
        decoder = JsonColumnsDecoder(on_corrupt="skip")
        decoder.feed(self.GOOD)
        decoder.feed(b'garbage line\n{"t": "x"}\n{"t": -1, "type": "c"}\n')
        columns = decoder.feed(b'{"t": 30, "type": "a"}\n')
        tail = decoder.finish()
        assert decoder.corrupt_records == 3
        assert decoder.corrupt_offsets == (3, 4, 5)
        assert len(columns) + len(tail) == 1

    def test_skip_survives_invalid_utf8(self):
        decoder = JsonColumnsDecoder(on_corrupt="skip")
        decoder.feed(self.GOOD + b"\xff\xfe{broken}\n" + b'{"t": 30, "type": "a"}\n')
        decoder.finish()
        assert decoder.corrupt_records == 1

    def test_raise_is_the_default_and_unchanged(self):
        decoder = JsonColumnsDecoder()
        with pytest.raises(TraceFormatError, match="malformed JSON event line 3"):
            decoder.feed(self.GOOD + b"garbage line\n")

    def test_clean_stream_identical_under_both_policies(self):
        plain = JsonColumnsDecoder()
        skipping = JsonColumnsDecoder(on_corrupt="skip")
        a = plain.feed(self.GOOD)
        b = skipping.feed(self.GOOD)
        np.testing.assert_array_equal(a.timestamps_us, b.timestamps_us)
        np.testing.assert_array_equal(a.type_codes, b.type_codes)
        assert skipping.corrupt_records == 0


class TestBinaryDecoderQuarantine:
    @pytest.fixture(scope="class")
    def segments(self) -> tuple[bytes, bytes]:
        codec = BinaryTraceCodec()
        first = codec.encode(
            [TraceEvent(t, f"evt{t % 3}", core=0) for t in range(50)]
        )
        second = codec.encode(
            [TraceEvent(t, f"evt{t % 3}", core=1) for t in range(100, 150)]
        )
        return first, second

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="on_corrupt"):
            BinaryColumnsDecoder(on_corrupt="ignore")

    def test_skip_resyncs_at_next_segment_magic(self, segments):
        first, second = segments
        blob = bytearray(first + second)
        (header_len,) = struct.unpack("<I", first[4:8])
        garble_at = 8 + header_len + (len(first) - 8 - header_len) // 2
        # 16 continuation bytes guarantee a varint-too-long failure at an
        # aligned record boundary (shorter runs can parse as a huge but
        # "valid" varint and silently misalign the rest of the segment).
        blob[garble_at : garble_at + 16] = b"\xff" * 16
        decoder = BinaryColumnsDecoder(on_corrupt="skip")
        chunks = [decoder.feed(bytes(blob[i : i + 7])) for i in range(0, len(blob), 7)]
        chunks.append(decoder.finish())
        total = sum(len(c) for c in chunks)
        # All 50 events of the clean second segment survive; the damaged
        # region of the first is dropped, not fatal.
        assert 50 <= total < 100
        assert decoder.corrupt_records >= 1
        assert all(offset < len(first) for offset in decoder.corrupt_offsets)

    def test_skip_tolerates_truncated_tail(self, segments):
        first, _ = segments
        decoder = BinaryColumnsDecoder(on_corrupt="skip")
        decoder.feed(first[:-5])
        decoder.finish()  # must not raise
        assert decoder.corrupt_records == 1

    def test_raise_is_the_default_and_unchanged(self, segments):
        first, _ = segments
        decoder = BinaryColumnsDecoder()
        decoder.feed(first[:-5])
        with pytest.raises(TraceFormatError, match="truncated"):
            decoder.finish()

    def test_clean_stream_identical_under_both_policies(self, segments):
        first, second = segments
        blob = first + second
        reference = decode_binary_columns(blob)
        decoder = BinaryColumnsDecoder(on_corrupt="skip")
        parts = [decoder.feed(blob), decoder.finish()]
        timestamps = np.concatenate([p.timestamps_us for p in parts])
        np.testing.assert_array_equal(timestamps, reference.timestamps_us)
        assert decoder.corrupt_records == 0


class TestStreamingQuarantine:
    @staticmethod
    def jsonl_chunks(n_events: int = 600, chunk: int = 512) -> list[bytes]:
        blob = b"".join(
            b'{"t": %d, "type": "evt%d"}\n' % (t * 100, t % 3)
            for t in range(n_events)
        )
        return [blob[i : i + chunk] for i in range(0, len(blob), chunk)]

    def test_recipe_validates_on_corrupt(self):
        with pytest.raises(TraceStreamError, match="on_corrupt"):
            StreamRecipe(on_corrupt="ignore")

    def test_garbled_chunks_skipped_and_counted(self):
        recipe = StreamRecipe(
            format="jsonl", window_duration_us=10_000, on_corrupt="skip"
        )
        source = StreamingWindowSource(
            byte_chunks=iter(self.jsonl_chunks()), recipe=recipe
        )
        with inject(
            FaultSpec(site="stream.chunk", action="garble", after=1, count=2)
        ):
            batches = list(source.batches(EventTypeRegistry(), batch_size=4))
        assert batches
        assert source.stats.corrupt_records >= 1
        assert source.stats.corrupt_offsets  # line numbers of the damage

    def test_default_policy_still_raises_on_garble(self):
        recipe = StreamRecipe(format="jsonl", window_duration_us=10_000)
        source = StreamingWindowSource(
            byte_chunks=iter(self.jsonl_chunks()), recipe=recipe
        )
        with inject(
            FaultSpec(site="stream.chunk", action="garble", after=1, count=2)
        ):
            with pytest.raises(TraceFormatError):
                list(source.batches(EventTypeRegistry(), batch_size=4))


# ---------------------------------------------------------------------- #
# Serial fleet: isolation / retry / abort
# ---------------------------------------------------------------------- #
class TestSerialFaultTolerance:
    def fault_free(self, base_registry, shared_model, stream_windows, **kwargs):
        fleet = make_fleet(base_registry, **kwargs)
        return fleet.monitor_shards(dict(stream_windows), shared_model)

    def test_abort_remains_the_default(self, base_registry, shared_model, stream_windows):
        fleet = make_fleet(base_registry)
        assert fleet.monitor_config.shard_failure_policy == "abort"
        with inject(FaultSpec(site="shard.start", shard="dev-1")):
            with pytest.raises(InjectedFault):
                fleet.monitor_shards(dict(stream_windows), shared_model)

    def test_isolate_quarantines_and_siblings_are_bit_identical(
        self, base_registry, shared_model, stream_windows
    ):
        baseline = self.fault_free(base_registry, shared_model, stream_windows)
        fleet = make_fleet(base_registry, shard_failure_policy="isolate")
        with inject(FaultSpec(site="shard.start", shard="dev-1")):
            result = fleet.monitor_shards(dict(stream_windows), shared_model)
        assert result.degraded
        assert result.failed_labels == ("dev-1",)
        outcome = result.outcomes["dev-1"]
        assert outcome.status == "failed"
        assert outcome.attempts == 1
        assert "InjectedFault" in outcome.error
        assert set(result.shard_results) == {"dev-0", "dev-2"}
        for label in ("dev-0", "dev-2"):
            assert result.outcomes[label].ok
            assert_shard_equals(result.shard(label), baseline.shard(label))

    def test_isolate_mid_stream_batch_failure(
        self, base_registry, shared_model, stream_windows
    ):
        fleet = make_fleet(
            base_registry, shard_failure_policy="isolate", batch_size=8
        )
        with inject(FaultSpec(site="shard.batch", shard="dev-0", after=2)):
            result = fleet.monitor_shards(dict(stream_windows), shared_model)
        assert result.failed_labels == ("dev-0",)
        assert set(result.shard_results) == {"dev-1", "dev-2"}

    def test_retry_recovers_transient_fault_bit_identically(
        self, base_registry, shared_model, stream_windows
    ):
        baseline = self.fault_free(base_registry, shared_model, stream_windows)
        fleet = make_fleet(base_registry, shard_retries=1)
        with inject(FaultSpec(site="shard.start", shard="dev-1", attempts=(1,))):
            result = fleet.monitor_shards(dict(stream_windows), shared_model)
        assert not result.degraded
        assert result.outcomes["dev-1"].attempts == 2
        assert result.outcomes["dev-0"].attempts == 1
        for label in stream_windows:
            assert_shard_equals(result.shard(label), baseline.shard(label))

    def test_retry_budget_exhaustion_still_quarantines(
        self, base_registry, shared_model, stream_windows
    ):
        fleet = make_fleet(
            base_registry, shard_failure_policy="isolate", shard_retries=1
        )
        with inject(
            FaultSpec(site="shard.start", shard="dev-1", attempts=(1, 2))
        ):
            result = fleet.monitor_shards(dict(stream_windows), shared_model)
        assert result.failed_labels == ("dev-1",)
        assert result.outcomes["dev-1"].attempts == 2

    def test_non_replayable_source_is_not_retried(
        self, base_registry, shared_model, stream_windows
    ):
        fleet = make_fleet(
            base_registry, shard_failure_policy="isolate", shard_retries=2
        )
        shards = {
            label: iter(windows) for label, windows in stream_windows.items()
        }
        with inject(FaultSpec(site="shard.start", shard="dev-1", attempts=(1,))):
            result = fleet.monitor_shards(shards, shared_model)
        # The iterator was part-consumed by the failed attempt: retrying it
        # would score a different stream, so it fails terminally instead.
        assert result.failed_labels == ("dev-1",)
        assert result.outcomes["dev-1"].attempts == 1

    def test_isolate_without_faults_is_bit_identical_to_abort(
        self, base_registry, shared_model, stream_windows
    ):
        baseline = self.fault_free(base_registry, shared_model, stream_windows)
        result = self.fault_free(
            base_registry,
            shared_model,
            stream_windows,
            shard_failure_policy="isolate",
            shard_retries=2,
        )
        assert not result.degraded
        for label in stream_windows:
            assert_shard_equals(result.shard(label), baseline.shard(label))


# ---------------------------------------------------------------------- #
# Parallel fleet: worker crashes, hard kills, retry waves
# ---------------------------------------------------------------------- #
class TestParallelFaultTolerance:
    def run_parallel(self, base_registry, shared_model, stream_windows, **kwargs):
        fleet = make_fleet(base_registry, fleet_workers=2, **kwargs)
        return fleet.monitor_shards(dict(stream_windows), shared_model)

    def test_parallel_abort_raises_fleet_error(
        self, base_registry, shared_model, stream_windows
    ):
        from repro.errors import FleetError

        with inject(FaultSpec(site="shard.start", shard="dev-1")):
            with pytest.raises(FleetError, match="'dev-1'"):
                self.run_parallel(base_registry, shared_model, stream_windows)

    def test_parallel_isolate_siblings_bit_identical(
        self, base_registry, shared_model, stream_windows
    ):
        baseline = self.run_parallel(base_registry, shared_model, stream_windows)
        with inject(FaultSpec(site="shard.start", shard="dev-1")):
            result = self.run_parallel(
                base_registry,
                shared_model,
                stream_windows,
                shard_failure_policy="isolate",
            )
        assert result.failed_labels == ("dev-1",)
        assert "InjectedFault" in result.outcomes["dev-1"].error
        for label in ("dev-0", "dev-2"):
            assert_shard_equals(result.shard(label), baseline.shard(label))

    def test_parallel_retry_recovers_bit_identically(
        self, base_registry, shared_model, stream_windows
    ):
        baseline = self.run_parallel(base_registry, shared_model, stream_windows)
        with inject(FaultSpec(site="shard.start", shard="dev-2", attempts=(1,))):
            result = self.run_parallel(
                base_registry, shared_model, stream_windows, shard_retries=1
            )
        assert not result.degraded
        assert result.outcomes["dev-2"].attempts == 2
        for label in stream_windows:
            assert_shard_equals(result.shard(label), baseline.shard(label))

    def test_hard_kill_recovered_by_retry_wave(
        self, base_registry, shared_model, stream_windows
    ):
        """A worker hard-killed mid-shard breaks the whole pool; the retry
        wave rebuilds it from clean state and every shard still finishes
        bit-identically (collaterally-broken siblings are retried too)."""
        baseline = self.run_parallel(base_registry, shared_model, stream_windows)
        with inject(
            FaultSpec(
                site="shard.batch", shard="dev-1", action="exit", after=1
            )
        ):
            result = self.run_parallel(
                base_registry,
                shared_model,
                stream_windows,
                shard_retries=1,
                shard_failure_policy="isolate",
            )
        assert not result.degraded
        assert result.outcomes["dev-1"].attempts == 2
        for label in stream_windows:
            assert_shard_equals(result.shard(label), baseline.shard(label))

    def test_worker_boot_crash_isolates_everything_not_hangs(
        self, base_registry, shared_model, stream_windows
    ):
        with inject(FaultSpec(site="worker.boot", count=16)):
            result = self.run_parallel(
                base_registry,
                shared_model,
                stream_windows,
                shard_failure_policy="isolate",
            )
        assert result.n_failed == len(stream_windows)
        assert result.shard_results == {}


# ---------------------------------------------------------------------- #
# Crash-consistent outputs and the fleet manifest
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("recording_format", ["jsonl", "binary"])
class TestCrashConsistency:
    def shard_file(self, output_dir, label, recording_format):
        suffix = ".bin" if recording_format == "binary" else ".jsonl"
        return output_dir / f"{label}{suffix}"

    def test_enospc_shard_leaves_no_output_and_manifest_marks_it(
        self, tmp_path, base_registry, shared_model, stream_windows, recording_format
    ):
        fleet = make_fleet(
            base_registry,
            shard_failure_policy="isolate",
            recording_format=recording_format,
        )
        with inject(
            FaultSpec(site="recorder.write", shard="dev-1", action="oserror")
        ):
            result = fleet.monitor_shards(
                dict(stream_windows), shared_model, output_dir=tmp_path
            )
        assert result.failed_labels == ("dev-1",)
        failed = self.shard_file(tmp_path, "dev-1", recording_format)
        assert not failed.exists()
        assert not partial_output_path(failed).exists()
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["policy"] == "isolate"
        assert manifest["recording_format"] == recording_format
        assert manifest["shards"]["dev-1"]["status"] == "failed"
        assert manifest["shards"]["dev-1"]["output"] is None
        assert manifest["shards"]["dev-1"]["output_bytes"] is None
        for label in ("dev-0", "dev-2"):
            entry = manifest["shards"][label]
            path = self.shard_file(tmp_path, label, recording_format)
            assert entry["status"] == "ok"
            assert entry["output"] == path.name
            assert entry["output_bytes"] == path.stat().st_size

    def test_hard_killed_worker_leaves_no_partial_file(
        self, tmp_path, base_registry, shared_model, stream_windows, recording_format
    ):
        fleet = make_fleet(
            base_registry,
            fleet_workers=2,
            shard_failure_policy="isolate",
            recording_format=recording_format,
        )
        shards = {"dev-0": stream_windows["dev-0"]}
        with inject(
            FaultSpec(site="shard.batch", shard="dev-0", action="exit", after=1)
        ):
            result = fleet.monitor_shards(shards, shared_model, output_dir=tmp_path)
        assert result.failed_labels == ("dev-0",)
        assert "worker process failed" in result.outcomes["dev-0"].error
        leftovers = sorted(p.name for p in tmp_path.iterdir())
        # Only the manifest survives: no committed output, no .partial.
        assert leftovers == [MANIFEST_NAME]
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["shards"]["dev-0"]["status"] == "failed"

    def test_committed_outputs_identical_to_fault_free_run(
        self, tmp_path, base_registry, shared_model, stream_windows, recording_format
    ):
        clean_dir = tmp_path / "clean"
        faulty_dir = tmp_path / "faulty"
        clean_dir.mkdir()
        faulty_dir.mkdir()
        fleet = make_fleet(base_registry, recording_format=recording_format)
        fleet.monitor_shards(
            dict(stream_windows), shared_model, output_dir=clean_dir
        )
        faulty = make_fleet(
            base_registry,
            shard_failure_policy="isolate",
            recording_format=recording_format,
        )
        with inject(FaultSpec(site="shard.start", shard="dev-1")):
            faulty.monitor_shards(
                dict(stream_windows), shared_model, output_dir=faulty_dir
            )
        for label in ("dev-0", "dev-2"):
            name = self.shard_file(clean_dir, label, recording_format).name
            assert (faulty_dir / name).read_bytes() == (
                clean_dir / name
            ).read_bytes()


# ---------------------------------------------------------------------- #
# Feeder-thread abandonment diagnostic
# ---------------------------------------------------------------------- #
def test_abandoned_feeder_surfaces_as_diagnostic(
    monkeypatch, base_registry, shared_model, stream_windows
):
    monkeypatch.setattr(parallel_backend, "_FEEDER_JOIN_TIMEOUT_S", 0.05)
    release = threading.Event()

    def stalling_windows():
        windows = stream_windows["dev-0"]
        yield from windows[:3]
        release.wait(timeout=10.0)
        yield from windows[3:]

    fleet = make_fleet(
        base_registry,
        fleet_workers=2,
        shard_failure_policy="isolate",
        shard_chunk_windows=2,
    )
    try:
        with inject(FaultSpec(site="shard.start", shard="stall")):
            result = fleet.monitor_shards(
                {"stall": stalling_windows()}, shared_model
            )
    finally:
        release.set()
    assert result.failed_labels == ("stall",)
    assert any(
        "feeder thread for shard 'stall'" in message
        for message in result.diagnostics
    ), result.diagnostics


# ---------------------------------------------------------------------- #
# CLI: degraded exit codes and knob validation
# ---------------------------------------------------------------------- #
class TestCliFaultTolerance:
    @pytest.fixture(scope="class")
    def trace_pair(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli-traces")
        paths = []
        for position, name in enumerate(["alpha", "beta"]):
            generator = PeriodicTraceGenerator(
                NORMAL_MIX,
                ANOMALY_MIX,
                anomaly_intervals=[(2.5, 3.5)],
                rate_per_s=2_000,
                seed=400 + position,
            )
            path = root / f"{name}.jsonl"
            write_trace(list(generator.events(5.0)), path, fmt="jsonl")
            paths.append(path)
        return paths

    def fleet_args(self, trace_pair, output_dir):
        return [
            "--json",
            "fleet",
            str(trace_pair[0]),
            str(trace_pair[1]),
            "--reference-s",
            "2",
            "--k",
            "5",
            "--output-dir",
            str(output_dir),
        ]

    def test_fleet_isolate_exits_3_and_writes_manifest(
        self, tmp_path, capsys, trace_pair
    ):
        args = self.fleet_args(trace_pair, tmp_path) + [
            "--failure-policy",
            "isolate",
        ]
        with inject(FaultSpec(site="shard.start", shard="beta")):
            code = cli_main(args)
        assert code == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["fleet"]["degraded"] is True
        assert payload["fleet"]["n_failed"] == 1
        assert payload["outcomes"]["beta"]["status"] == "failed"
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["shards"]["beta"]["status"] == "failed"
        assert manifest["shards"]["alpha"]["status"] == "ok"

    def test_fleet_clean_run_exits_0(self, tmp_path, capsys, trace_pair):
        args = self.fleet_args(trace_pair, tmp_path) + [
            "--failure-policy",
            "isolate",
            "--shard-retries",
            "1",
        ]
        assert cli_main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fleet"]["degraded"] is False

    def test_fleet_rejects_bad_knobs(self, tmp_path, trace_pair):
        with pytest.raises(SystemExit):
            cli_main(
                self.fleet_args(trace_pair, tmp_path)
                + ["--failure-policy", "panic"]
            )
        with pytest.raises(SystemExit):
            cli_main(
                self.fleet_args(trace_pair, tmp_path) + ["--shard-retries", "-1"]
            )
        with pytest.raises(SystemExit):
            cli_main(
                self.fleet_args(trace_pair, tmp_path) + ["--retry-backoff", "-0.5"]
            )

    @pytest.fixture()
    def corrupt_trace(self, tmp_path, trace_pair):
        """A copy of the first trace with one line mangled past the
        reference prefix."""
        lines = trace_pair[0].read_bytes().splitlines(keepends=True)
        victim = int(len(lines) * 0.75)
        lines[victim] = b"@@@ not json @@@\n"
        path = tmp_path / "corrupt.jsonl"
        path.write_bytes(b"".join(lines))
        return path

    def monitor_follow_args(self, path):
        return [
            "--json",
            "monitor",
            str(path),
            "--reference-s",
            "2",
            "--k",
            "5",
            "--follow",
            "--poll-interval",
            "0.01",
            "--idle-timeout",
            "0.2",
        ]

    def test_monitor_follow_skip_exits_3_with_tally(
        self, capsys, corrupt_trace
    ):
        code = cli_main(
            self.monitor_follow_args(corrupt_trace) + ["--on-corrupt", "skip"]
        )
        assert code == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["corrupt_records"] == 1
        assert len(payload["corrupt_offsets"]) == 1

    def test_monitor_follow_default_still_fails_hard(self, capsys, corrupt_trace):
        assert cli_main(self.monitor_follow_args(corrupt_trace)) == 2
        assert "malformed" in capsys.readouterr().err

    def test_on_corrupt_requires_follow(self, capsys, trace_pair):
        code = cli_main(
            [
                "--json",
                "monitor",
                str(trace_pair[0]),
                "--reference-s",
                "2",
                "--on-corrupt",
                "skip",
            ]
        )
        assert code == 2
        assert "--follow" in capsys.readouterr().err
