"""Integration tests for the multimedia pipeline, the perturbation injector
and the complete endurance run."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import (
    EnduranceConfig,
    MediaConfig,
    MonitorConfig,
    PerturbationConfig,
    PlatformConfig,
)
from repro.errors import SimulationError
from repro.media.app import EnduranceRun
from repro.media.perturbation import PerturbationInterval, plan_intervals
from repro.media.pipeline import MediaPipeline
from repro.platform.cpu import Core
from repro.platform.memory import MemoryModel
from repro.platform.scheduler import RoundRobinScheduler
from repro.platform.simulator import Simulator
from repro.platform.tracer import HardwareTracer
from repro.trace.event import EventType


def run_pipeline_only(duration_s=20.0, seed=5):
    """Run the pipeline without perturbations and return (pipeline, tracer)."""
    simulator = Simulator()
    tracer = HardwareTracer()
    scheduler = RoundRobinScheduler(
        simulator, [Core(0)], tracer, memory=MemoryModel(), quantum_us=4_000
    )
    pipeline = MediaPipeline.build(
        simulator, scheduler, tracer, MediaConfig(duration_s=duration_s, seed=seed)
    )
    until_us = int(duration_s * 1e6)
    pipeline.start(until_us)
    simulator.run(until_us=until_us)
    return pipeline, tracer


class TestPerturbationPlanning:
    def test_intervals_follow_schedule(self):
        config = PerturbationConfig(start_offset_s=100.0, period_s=50.0, duration_s=10.0)
        intervals = plan_intervals(config, run_duration_s=260.0)
        assert [(i.start_s, i.end_s) for i in intervals] == [
            (100.0, 110.0),
            (150.0, 160.0),
            (200.0, 210.0),
        ]

    def test_truncated_interval_discarded(self):
        config = PerturbationConfig(start_offset_s=100.0, period_s=50.0, duration_s=10.0)
        intervals = plan_intervals(config, run_duration_s=105.0)
        assert intervals == []

    def test_jitter_stays_reproducible(self):
        config = PerturbationConfig(
            start_offset_s=100.0, period_s=50.0, duration_s=10.0, jitter_s=5.0, seed=3
        )
        assert plan_intervals(config, 300.0) == plan_intervals(config, 300.0)

    def test_interval_helpers(self):
        interval = PerturbationInterval(10.0, 20.0)
        assert interval.duration_s == 10.0
        assert interval.contains(15e6)
        assert not interval.contains(25e6)
        with pytest.raises(SimulationError):
            PerturbationInterval(20.0, 10.0)

    def test_invalid_run_duration_rejected(self):
        with pytest.raises(SimulationError):
            plan_intervals(PerturbationConfig(), 0.0)


class TestHealthyPipeline:
    def test_frames_displayed_at_real_time_rate(self):
        pipeline, _ = run_pipeline_only(duration_s=20.0)
        expected = 20.0 * 25.0
        assert pipeline.frames_displayed() >= expected * 0.9
        assert pipeline.frames_dropped() <= expected * 0.02

    def test_no_qos_errors_without_perturbation(self):
        pipeline, _ = run_pipeline_only(duration_s=20.0)
        assert pipeline.qos_error_count() == 0

    def test_pipeline_emits_expected_event_types(self):
        _, tracer = run_pipeline_only(duration_s=5.0)
        types = {event.etype for event in tracer.events()}
        for expected in (
            EventType.DEMUX_PACKET,
            EventType.FRAME_DECODE_START,
            EventType.FRAME_DECODE_END,
            EventType.MB_ROW_DECODE,
            EventType.FRAME_DISPLAY,
            EventType.BUFFER_PUSH,
            EventType.BUFFER_POP,
            EventType.AUDIO_DECODE,
            EventType.VSYNC,
        ):
            assert str(expected) in types

    def test_buffer_reaches_steady_occupancy(self):
        pipeline, _ = run_pipeline_only(duration_s=10.0)
        assert pipeline.buffer.peak_level >= pipeline.buffer.capacity * 0.5


class TestEnduranceRun:
    def test_trace_bundle_contents(self, mini_trace, mini_config):
        assert mini_trace.duration_s == pytest.approx(mini_config.media.duration_s)
        assert mini_trace.n_events > 50_000
        assert len(mini_trace.perturbation_intervals) == 2
        assert mini_trace.frames_displayed > 0
        assert mini_trace.scheduler_jobs > 1_000
        assert 0.0 < mini_trace.core_utilisation[0] <= 1.0

    def test_timestamps_sorted(self, mini_trace):
        timestamps = [event.timestamp_us for event in mini_trace.events]
        assert timestamps == sorted(timestamps)

    def test_qos_errors_concentrated_in_perturbations(self, mini_trace):
        error_times = np.array(mini_trace.qos_timestamps_us()) / 1e6
        assert len(error_times) > 50
        in_impact = 0
        for t in error_times:
            for interval in mini_trace.perturbation_intervals:
                if interval.start_s <= t <= interval.end_s + 10.0:
                    in_impact += 1
                    break
        assert in_impact / len(error_times) > 0.95

    def test_application_scope_excludes_kernel_events(self, mini_trace):
        types = {event.etype for event in mini_trace.events}
        assert str(EventType.SCHED_SWITCH) not in types
        assert str(EventType.FRAME_DECODE_END) in types

    def test_full_scope_includes_kernel_events(self):
        config = EnduranceConfig(
            platform=PlatformConfig(trace_scope="full"),
            monitor=MonitorConfig(reference_duration_us=10_000_000),
            media=MediaConfig(duration_s=20.0, seed=1),
            perturbation=PerturbationConfig(start_offset_s=12.0, period_s=100.0, duration_s=5.0),
        )
        trace = EnduranceRun(config).run()
        types = {event.etype for event in trace.events}
        assert str(EventType.SCHED_SWITCH) in types
        assert str(EventType.TIMER_TICK) in types

    def test_run_is_single_use(self, mini_config):
        config = dataclasses.replace(
            mini_config, media=dataclasses.replace(mini_config.media, duration_s=50.0)
        )
        run = EnduranceRun(config)
        run.run()
        with pytest.raises(SimulationError):
            run.run()

    def test_same_seed_reproducible(self):
        config = EnduranceConfig(
            monitor=MonitorConfig(reference_duration_us=5_000_000),
            media=MediaConfig(duration_s=15.0, seed=21),
            perturbation=PerturbationConfig(start_offset_s=8.0, period_s=100.0, duration_s=4.0),
        )
        first = EnduranceRun(config).run()
        second = EnduranceRun(config).run()
        assert first.n_events == second.n_events
        assert first.events[:100] == second.events[:100]
        assert len(first.qos_messages) == len(second.qos_messages)
