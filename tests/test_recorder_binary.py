"""Binary recording sink: bytes on disk match the accounted window bytes.

``MonitorConfig.recording_format="binary"`` routes the recorders through
:class:`~repro.trace.codec.BinaryTraceCodec`: every recorded window becomes
one self-describing segment whose *body* bytes equal the window's accounted
``window_bytes`` (fresh per-window registry, deltas restarting at the
window), and the whole file round-trips through ``read_trace``.
"""

from __future__ import annotations

import json
import random
import struct

import pytest

from repro.analysis.monitor import TraceMonitor
from repro.analysis.recorder import FullTraceRecorder, SelectiveTraceRecorder
from repro.config import DetectorConfig, MonitorConfig
from repro.errors import RecorderError
from repro.trace.codec import BinaryTraceCodec, encoded_trace_size
from repro.trace.event import EventTypeRegistry
from repro.trace.reader import read_trace, read_trace_columns
from repro.trace.stream import TraceStream, windows_by_duration

from test_property_roundtrip import random_events


def walk_segments(data: bytes):
    """Yield ``(header, body_bytes)`` for every segment of a recorded file."""
    offset = 0
    while offset < len(data):
        assert data[offset : offset + 4] == b"RTRC"
        (header_len,) = struct.unpack("<I", data[offset + 4 : offset + 8])
        header = json.loads(data[offset + 8 : offset + 8 + header_len])
        body_start = offset + 8 + header_len
        registry = EventTypeRegistry.from_dict(header["registry"])
        codec = BinaryTraceCodec(registry)
        offset = body_start
        previous = 0
        for _ in range(header["count"]):
            event, offset = codec.decode_event(data, offset, previous)
            previous = event.timestamp_us
        yield header, data[body_start:offset]


@pytest.fixture()
def windows():
    events = random_events(random.Random(23), 400)
    return list(windows_by_duration(iter(events), 40_000))


def test_rejects_unknown_format():
    with pytest.raises(RecorderError, match="unknown recording_format"):
        SelectiveTraceRecorder(recording_format="xml")


@pytest.mark.parametrize("context_windows", [0, 2])
def test_binary_sink_round_trips_via_read_trace(tmp_path, windows, context_windows):
    path = tmp_path / "recorded.bin"
    recorder = SelectiveTraceRecorder(
        context_windows=context_windows,
        output_path=path,
        recording_format="binary",
    )
    flags = [i % 5 == 0 for i in range(len(windows))]
    recorder.observe_batch(windows, flags)
    recorder.close()

    by_index = {window.index: window for window in windows}
    recorded = [by_index[i] for i in recorder.recorded_indices]
    expected_events = [event for window in recorded for event in window.events]
    assert read_trace(path) == expected_events
    # The columnar reader decodes the segmented file identically.
    assert read_trace_columns(path).to_events() == tuple(expected_events)


def test_binary_sink_body_bytes_equal_accounted_window_bytes(tmp_path, windows):
    path = tmp_path / "recorded.bin"
    recorder = SelectiveTraceRecorder(
        context_windows=1, output_path=path, recording_format="binary"
    )
    flags = [i % 4 == 0 for i in range(len(windows))]
    recorder.observe_batch(windows, flags)
    recorder.close()
    report = recorder.report()

    by_index = {window.index: window for window in windows}
    recorded = [by_index[i] for i in recorder.recorded_indices]
    accounted = [encoded_trace_size(window.events) for window in recorded]
    bodies = [body for _, body in walk_segments(path.read_bytes())]
    # One segment per non-empty recorded window, in recording order, and
    # each segment body is byte-for-byte the accounted window size.
    non_empty = [window for window in recorded if window.events]
    assert len(bodies) == len(non_empty)
    assert [len(body) for body in bodies] == [
        encoded_trace_size(window.events) for window in non_empty
    ]
    assert sum(len(body) for body in bodies) == sum(accounted) == report.recorded_bytes


def test_full_trace_recorder_binary(tmp_path, windows):
    path = tmp_path / "full.bin"
    with FullTraceRecorder(output_path=path, recording_format="binary") as recorder:
        recorder.observe_batch(windows)
    expected = [event for window in windows for event in window.events]
    assert read_trace(path) == expected
    report = recorder.report()
    bodies = [body for _, body in walk_segments(path.read_bytes())]
    assert sum(len(body) for body in bodies) == report.recorded_bytes


def test_monitor_config_validates_recording_format():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="recording_format"):
        MonitorConfig(recording_format="csv")


def test_monitor_records_binary_when_configured(tmp_path):
    events = random_events(random.Random(31), 600)
    detector_config = DetectorConfig(k_neighbours=3, lof_threshold=1.05)
    monitor_config = MonitorConfig(
        reference_duration_us=500_000,
        batch_size=16,
        recording_format="binary",
    )
    monitor = TraceMonitor(detector_config, monitor_config, EventTypeRegistry())
    path = tmp_path / "monitored.bin"
    result = monitor.run_on_stream(TraceStream(iter(events)), output_path=path)
    assert result.n_anomalous > 0 and result.report.recorded_bytes > 0
    assert path.read_bytes()[:4] == b"RTRC"
    recorded = read_trace(path)
    bodies = [body for _, body in walk_segments(path.read_bytes())]
    assert sum(len(body) for body in bodies) == result.report.recorded_bytes
    assert len(recorded) == result.report.recorded_events
