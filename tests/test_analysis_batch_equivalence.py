"""Batch/serial equivalence: the vectorized plane must be a drop-in.

The contract of the batch scoring plane is that it changes *cost*, never
*results*: ``pmf_matrix`` rows equal per-window pmf counts,
``query_many``/``score_many`` equal their per-query loops, and
``OnlineAnomalyDetector.process_batch`` reproduces the per-window ``process``
loop decision for decision — outcomes, KL divergences, LOF scores, counters
and the running past pmf — for any batch size, including streams with empty
windows and event types that appear for the first time mid-batch.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.detector import OnlineAnomalyDetector
from repro.analysis.divergence import (
    kl_divergence,
    kl_divergence_matrix,
    symmetric_kl_divergence,
    symmetric_kl_divergence_matrix,
)
from repro.analysis.knn import BruteForceKnn
from repro.analysis.lof import LocalOutlierFactor
from repro.analysis.model import ReferenceModel
from repro.analysis.pmf import Pmf, merge_counts, pmf_from_window, pmf_matrix
from repro.config import DetectorConfig, MonitorConfig
from repro.trace.batch import WindowBatch, batch_windows
from repro.trace.event import EventTypeRegistry
from repro.trace.generator import PeriodicTraceGenerator, SyntheticTraceGenerator
from repro.trace.stream import windows_by_duration

NORMAL_MIX = {"steady": 8.0, "tick": 2.0, "flush": 1.0, "poll": 1.0}
#: The anomaly mix deliberately introduces event types absent from the
#: reference run, so live monitoring grows the registry mid-stream.
ANOMALY_MIX = {"steady": 1.0, "tick": 4.0, "burst": 3.0, "stall": 2.0}


def reference_setup(seed: int, rate: float = 2_000.0):
    registry = EventTypeRegistry()
    generator = SyntheticTraceGenerator(NORMAL_MIX, rate_per_s=rate, seed=seed)
    reference = list(windows_by_duration(generator.events(4.0), 40_000))
    model = ReferenceModel(k_neighbours=10).learn(reference, registry)
    return model, registry


def live_windows(seed: int, rate: float = 2_000.0, duration_s: float = 3.0):
    generator = PeriodicTraceGenerator(
        NORMAL_MIX,
        ANOMALY_MIX,
        anomaly_intervals=[(1.0, 1.6), (2.2, 2.6)],
        rate_per_s=rate,
        seed=seed,
    )
    return list(windows_by_duration(generator.events(duration_s), 40_000))


def decisions_equal(serial, batched) -> bool:
    if len(serial) != len(batched):
        return False
    for a, b in zip(serial, batched):
        if (
            a.window_index != b.window_index
            or a.start_us != b.start_us
            or a.end_us != b.end_us
            or a.n_events != b.n_events
            or a.outcome != b.outcome
            or a.lof_score != b.lof_score
        ):
            return False
        if not (
            a.kl_to_past == b.kl_to_past
            or (math.isnan(a.kl_to_past) and math.isnan(b.kl_to_past))
        ):
            return False
    return True


class TestPmfMatrixEquivalence:
    def test_rows_equal_per_window_pmfs(self):
        registry = EventTypeRegistry()
        windows = live_windows(seed=3)
        batch = WindowBatch.from_windows(windows, registry)
        matrix = pmf_matrix(batch, registry)
        for row, window in zip(matrix, windows):
            serial_registry_view = pmf_from_window(window, registry).counts
            assert np.array_equal(row[: len(serial_registry_view)], serial_registry_view)
            assert row[len(serial_registry_view):].sum() == 0.0

    def test_merge_counts_mirrors_pmf_merge(self):
        rng = np.random.default_rng(11)
        registry = EventTypeRegistry([f"t{i}" for i in range(6)])
        for _ in range(50):
            mine = np.round(rng.uniform(0, 40, size=6), 3)
            theirs = np.round(rng.uniform(0, 40, size=6), 3)
            decay = float(rng.uniform(0.05, 1.0))
            via_pmf = Pmf(mine, registry).merge(Pmf(theirs, registry), decay=decay)
            via_raw = merge_counts(mine, theirs, decay)
            assert np.array_equal(via_pmf.counts, via_raw)


class TestDivergenceMatrixEquivalence:
    def test_matrix_rows_equal_scalar_calls(self):
        rng = np.random.default_rng(4)
        rows = rng.uniform(0, 30, size=(20, 8))
        reference = rng.uniform(0, 30, size=8)
        sym = symmetric_kl_divergence_matrix(rows, reference, smoothing=1e-6)
        forward = kl_divergence_matrix(rows, reference, smoothing=1e-6)
        for i in range(len(rows)):
            assert sym[i] == pytest.approx(
                symmetric_kl_divergence(rows[i], reference, smoothing=1e-6),
                rel=1e-12,
            )
            assert forward[i] == pytest.approx(
                kl_divergence(rows[i], reference, smoothing=1e-6), rel=1e-12
            )

    def test_width_padding_matches_pmf_semantics(self):
        short = np.array([[3.0, 1.0]])
        long_ref = np.array([2.0, 1.0, 1.0])
        registry = EventTypeRegistry(["a", "b", "c"])
        expected = symmetric_kl_divergence(
            Pmf(np.array([3.0, 1.0, 0.0]), registry),
            Pmf(long_ref, registry),
            smoothing=1e-6,
        )
        got = symmetric_kl_divergence_matrix(short, long_ref, smoothing=1e-6)
        assert got[0] == pytest.approx(expected, rel=1e-12)


class TestKnnLofEquivalence:
    def test_query_many_rows_independent_of_batching(self):
        rng = np.random.default_rng(7)
        points = rng.uniform(size=(200, 6))
        queries = rng.uniform(size=(32, 6))
        index = BruteForceKnn(points)
        full_d, full_i = index.query_many(queries, k=9)
        for start in (0, 5, 31):
            row_d, row_i = index.query_many(queries[start:start + 1], k=9)
            assert np.array_equal(full_d[start], row_d[0])
            assert np.array_equal(full_i[start], row_i[0])

    def test_query_many_matches_query_loop(self):
        rng = np.random.default_rng(8)
        points = rng.uniform(size=(120, 5))
        queries = rng.uniform(size=(10, 5))
        index = BruteForceKnn(points)
        many_d, many_i = index.query_many(queries, k=7)
        for row, query in enumerate(queries):
            one_d, one_i = index.query(query, k=7)
            assert np.allclose(many_d[row], one_d, atol=1e-9)
            assert np.array_equal(many_i[row], one_i)

    def test_score_many_equals_score_loop_bitwise(self):
        rng = np.random.default_rng(9)
        points = rng.uniform(size=(150, 5))
        queries = rng.uniform(size=(25, 5))
        lof = LocalOutlierFactor(k_neighbours=12).fit(points)
        batch = lof.score_many(queries)
        singles = np.array([lof.score(q) for q in queries])
        assert np.array_equal(batch, singles)

    def test_fit_with_more_than_k_identical_points(self):
        # Regression: heavily duplicated reference points must not crash fit
        # (the old padding path could index an empty distance row).
        for index_kind in ("brute", "kdtree"):
            points = np.vstack([np.ones((25, 3)), np.eye(3)])
            lof = LocalOutlierFactor(k_neighbours=20, index_kind=index_kind).fit(points)
            assert np.all(np.isfinite(lof.training_scores))
            assert np.isfinite(lof.score(np.ones(3)))
            assert np.isfinite(lof.score(np.array([5.0, 5.0, 5.0])))


class TestDetectorBatchEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("batch_size", [1, 7, 64])
    def test_process_batch_matches_process(self, seed, batch_size):
        model, serial_registry = reference_setup(seed)
        _, batch_registry = reference_setup(seed)
        windows = live_windows(seed=seed + 100)

        serial = OnlineAnomalyDetector(
            model, DetectorConfig(k_neighbours=10, lof_threshold=1.3), serial_registry
        )
        serial_decisions = [serial.process(w) for w in windows]

        batched = OnlineAnomalyDetector(
            model, DetectorConfig(k_neighbours=10, lof_threshold=1.3), batch_registry
        )
        batched_decisions = []
        for batch in batch_windows(iter(windows), batch_registry, batch_size):
            batched_decisions.extend(batched.process_batch(batch))

        assert decisions_equal(serial_decisions, batched_decisions)
        assert np.array_equal(serial.past_pmf.counts, batched.past_pmf.counts)
        assert serial.n_processed == batched.n_processed
        assert serial.n_merged == batched.n_merged
        assert serial.n_lof_computed == batched.n_lof_computed
        # at least one window should have introduced a new event type
        assert len(batch_registry) > model.dimension

    def test_empty_windows_match(self):
        model, serial_registry = reference_setup(seed=5)
        _, batch_registry = reference_setup(seed=5)
        # A very sparse stream: most 40 ms windows are empty.
        generator = SyntheticTraceGenerator(NORMAL_MIX, rate_per_s=20.0, seed=6)
        windows = list(windows_by_duration(generator.events(3.0), 40_000))
        assert any(w.is_empty for w in windows)

        config = DetectorConfig(k_neighbours=10, lof_threshold=1.3)
        serial = OnlineAnomalyDetector(model, config, serial_registry)
        serial_decisions = [serial.process(w) for w in windows]
        batched = OnlineAnomalyDetector(model, config, batch_registry)
        batched_decisions = []
        for batch in batch_windows(iter(windows), batch_registry, 16):
            batched_decisions.extend(batched.process_batch(batch))
        assert decisions_equal(serial_decisions, batched_decisions)

    def test_kl_gate_disabled_matches(self):
        model, serial_registry = reference_setup(seed=7)
        _, batch_registry = reference_setup(seed=7)
        windows = live_windows(seed=8)
        config = DetectorConfig(k_neighbours=10, lof_threshold=1.3, use_kl_gate=False)
        serial = OnlineAnomalyDetector(model, config, serial_registry)
        serial_decisions = [serial.process(w) for w in windows]
        batched = OnlineAnomalyDetector(model, config, batch_registry)
        batched_decisions = []
        for batch in batch_windows(iter(windows), batch_registry, 32):
            batched_decisions.extend(batched.process_batch(batch))
        assert decisions_equal(serial_decisions, batched_decisions)
        assert batched.n_lof_computed == sum(1 for w in windows if not w.is_empty)

    def test_empty_batch_is_a_noop(self):
        model, registry = reference_setup(seed=9)
        detector = OnlineAnomalyDetector(
            model, DetectorConfig(k_neighbours=10), registry
        )
        batch = WindowBatch.from_windows([], registry)
        assert detector.process_batch(batch) == []
        assert detector.n_processed == 0


class TestMonitorBatchEquivalence:
    def test_monitor_results_identical_across_batch_sizes(self):
        from repro.analysis.monitor import TraceMonitor

        windows = live_windows(seed=12, duration_s=2.0)
        results = []
        for batch_size in (1, 16):
            model, registry = reference_setup(seed=12)
            monitor = TraceMonitor(
                DetectorConfig(k_neighbours=10, lof_threshold=1.3),
                MonitorConfig(batch_size=batch_size),
                registry,
            )
            results.append(monitor.monitor_windows(iter(windows), model))
        serial_result, batched_result = results
        assert decisions_equal(serial_result.decisions, batched_result.decisions)
        assert [d.window_bytes for d in serial_result.decisions] == [
            d.window_bytes for d in batched_result.decisions
        ]
        assert serial_result.report == batched_result.report
        assert serial_result.recorded_indices == batched_result.recorded_indices
        assert serial_result.detector_stats == batched_result.detector_stats
