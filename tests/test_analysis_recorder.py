"""Tests for the selective trace recorder and its size accounting."""

from __future__ import annotations

import pytest

from repro.analysis.recorder import FullTraceRecorder, RecorderReport, SelectiveTraceRecorder
from repro.errors import RecorderError
from repro.trace.codec import encoded_trace_size
from repro.trace.event import TraceEvent
from repro.trace.reader import read_trace
from repro.trace.stream import windows_by_duration


def make_windows(n_windows=10, events_per_window=5):
    events = []
    for w in range(n_windows):
        for i in range(events_per_window):
            events.append(TraceEvent(w * 1_000 + i * 10, "timer_tick", task="t"))
    return list(windows_by_duration(events, 1_000))


class TestSelectiveRecorder:
    def test_records_only_requested_windows(self):
        windows = make_windows()
        recorder = SelectiveTraceRecorder()
        for window in windows:
            recorder.observe(window, record=window.index in {2, 5})
        report = recorder.report()
        assert recorder.recorded_indices == [2, 5]
        assert report.recorded_windows == 2
        assert report.total_windows == len(windows)
        assert report.recorded_events == 10
        assert 0 < report.recorded_bytes < report.total_bytes

    def test_reduction_factor(self):
        windows = make_windows()
        recorder = SelectiveTraceRecorder()
        for window in windows:
            recorder.observe(window, record=window.index == 0)
        report = recorder.report()
        assert report.reduction_factor == pytest.approx(
            report.total_bytes / report.recorded_bytes
        )
        assert report.recorded_fraction == pytest.approx(
            report.recorded_bytes / report.total_bytes
        )

    def test_reduction_factor_edge_cases(self):
        nothing = RecorderReport(0, 0, 0, 0, 0, 0)
        assert nothing.reduction_factor == 1.0
        assert nothing.recorded_fraction == 0.0
        nothing_recorded = RecorderReport(10, 100, 1000, 0, 0, 0)
        assert nothing_recorded.reduction_factor == float("inf")

    def test_precomputed_bytes_are_trusted(self):
        windows = make_windows(n_windows=2)
        recorder = SelectiveTraceRecorder()
        recorder.observe(windows[0], record=True, window_bytes=123)
        recorder.observe(windows[1], record=False, window_bytes=77)
        report = recorder.report()
        assert report.recorded_bytes == 123
        assert report.total_bytes == 200

    def test_context_windows_recorded_around_anomaly(self):
        windows = make_windows(n_windows=10)
        recorder = SelectiveTraceRecorder(context_windows=2)
        for window in windows:
            recorder.observe(window, record=window.index == 5)
        # two windows before and after the anomalous one are kept
        assert recorder.recorded_indices == [3, 4, 5, 6, 7]

    def test_keep_events(self):
        windows = make_windows(n_windows=3)
        recorder = SelectiveTraceRecorder(keep_events=True)
        for window in windows:
            recorder.observe(window, record=True)
        assert len(recorder.recorded_windows) == 3
        plain = SelectiveTraceRecorder()
        plain.observe(windows[0], record=True)
        with pytest.raises(RecorderError):
            _ = plain.recorded_windows

    def test_output_file_contains_recorded_events(self, tmp_path):
        windows = make_windows(n_windows=4)
        path = tmp_path / "recorded.jsonl"
        with SelectiveTraceRecorder(output_path=path) as recorder:
            for window in windows:
                recorder.observe(window, record=window.index in {1, 3})
        saved = read_trace(path)
        expected = [event for window in windows if window.index in {1, 3} for event in window.events]
        assert saved == expected

    def test_observe_after_close_rejected(self):
        recorder = SelectiveTraceRecorder()
        recorder.close()
        with pytest.raises(RecorderError):
            recorder.observe(make_windows(1)[0], record=True)

    def test_negative_context_rejected(self):
        with pytest.raises(RecorderError):
            SelectiveTraceRecorder(context_windows=-1)

    def test_report_to_dict_is_consistent(self):
        windows = make_windows()
        recorder = SelectiveTraceRecorder()
        for window in windows:
            recorder.observe(window, record=True)
        payload = recorder.report().to_dict()
        assert payload["recorded_bytes"] == payload["total_bytes"]
        assert payload["reduction_factor"] == pytest.approx(1.0)


class TestFullRecorder:
    def test_records_everything(self):
        windows = make_windows()
        recorder = FullTraceRecorder()
        for window in windows:
            recorder.observe(window)
        report = recorder.report()
        assert report.recorded_windows == report.total_windows == len(windows)
        assert report.recorded_bytes == report.total_bytes
        expected_bytes = sum(encoded_trace_size(window.events) for window in windows)
        assert report.total_bytes == expected_bytes
        recorder.close()
