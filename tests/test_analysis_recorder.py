"""Tests for the selective trace recorder and its size accounting."""

from __future__ import annotations

import random

import pytest

from repro.analysis.recorder import FullTraceRecorder, RecorderReport, SelectiveTraceRecorder
from repro.errors import RecorderError
from repro.trace.codec import encoded_trace_size
from repro.trace.event import TraceEvent
from repro.trace.reader import read_trace
from repro.trace.stream import windows_by_duration


def make_windows(n_windows=10, events_per_window=5):
    events = []
    for w in range(n_windows):
        for i in range(events_per_window):
            events.append(TraceEvent(w * 1_000 + i * 10, "timer_tick", task="t"))
    return list(windows_by_duration(events, 1_000))


class TestSelectiveRecorder:
    def test_records_only_requested_windows(self):
        windows = make_windows()
        recorder = SelectiveTraceRecorder()
        for window in windows:
            recorder.observe(window, record=window.index in {2, 5})
        report = recorder.report()
        assert recorder.recorded_indices == [2, 5]
        assert report.recorded_windows == 2
        assert report.total_windows == len(windows)
        assert report.recorded_events == 10
        assert 0 < report.recorded_bytes < report.total_bytes

    def test_reduction_factor(self):
        windows = make_windows()
        recorder = SelectiveTraceRecorder()
        for window in windows:
            recorder.observe(window, record=window.index == 0)
        report = recorder.report()
        assert report.reduction_factor == pytest.approx(
            report.total_bytes / report.recorded_bytes
        )
        assert report.recorded_fraction == pytest.approx(
            report.recorded_bytes / report.total_bytes
        )

    def test_reduction_factor_edge_cases(self):
        nothing = RecorderReport(0, 0, 0, 0, 0, 0)
        assert nothing.reduction_factor == 1.0
        assert nothing.recorded_fraction == 0.0
        nothing_recorded = RecorderReport(10, 100, 1000, 0, 0, 0)
        assert nothing_recorded.reduction_factor == float("inf")

    def test_precomputed_bytes_are_trusted(self):
        windows = make_windows(n_windows=2)
        recorder = SelectiveTraceRecorder()
        recorder.observe(windows[0], record=True, window_bytes=123)
        recorder.observe(windows[1], record=False, window_bytes=77)
        report = recorder.report()
        assert report.recorded_bytes == 123
        assert report.total_bytes == 200

    def test_context_windows_recorded_around_anomaly(self):
        windows = make_windows(n_windows=10)
        recorder = SelectiveTraceRecorder(context_windows=2)
        for window in windows:
            recorder.observe(window, record=window.index == 5)
        # two windows before and after the anomalous one are kept
        assert recorder.recorded_indices == [3, 4, 5, 6, 7]

    def test_keep_events(self):
        windows = make_windows(n_windows=3)
        recorder = SelectiveTraceRecorder(keep_events=True)
        for window in windows:
            recorder.observe(window, record=True)
        assert len(recorder.recorded_windows) == 3
        plain = SelectiveTraceRecorder()
        plain.observe(windows[0], record=True)
        with pytest.raises(RecorderError):
            _ = plain.recorded_windows

    def test_output_file_contains_recorded_events(self, tmp_path):
        windows = make_windows(n_windows=4)
        path = tmp_path / "recorded.jsonl"
        with SelectiveTraceRecorder(output_path=path) as recorder:
            for window in windows:
                recorder.observe(window, record=window.index in {1, 3})
        saved = read_trace(path)
        expected = [event for window in windows if window.index in {1, 3} for event in window.events]
        assert saved == expected

    def test_observe_after_close_rejected(self):
        recorder = SelectiveTraceRecorder()
        recorder.close()
        with pytest.raises(RecorderError):
            recorder.observe(make_windows(1)[0], record=True)

    def test_negative_context_rejected(self):
        with pytest.raises(RecorderError):
            SelectiveTraceRecorder(context_windows=-1)

    def test_report_to_dict_is_consistent(self):
        windows = make_windows()
        recorder = SelectiveTraceRecorder()
        for window in windows:
            recorder.observe(window, record=True)
        payload = recorder.report().to_dict()
        assert payload["recorded_bytes"] == payload["total_bytes"]
        assert payload["reduction_factor"] == pytest.approx(1.0)


class TestContextWindowSemantics:
    """Context recording around anomalies, serial and batched alike."""

    def test_overlapping_contexts_record_each_window_once(self):
        windows = make_windows(n_windows=12)
        recorder = SelectiveTraceRecorder(context_windows=2)
        for window in windows:
            recorder.observe(window, record=window.index in {4, 7})
        # Contexts [2..6] and [5..9] intersect; the shared windows 5 and 6
        # fall in window 4's post-context and must not be written twice.
        assert recorder.recorded_indices == [2, 3, 4, 5, 6, 7, 8, 9]

    def test_anomaly_in_first_window_has_no_pre_context(self):
        windows = make_windows(n_windows=6)
        recorder = SelectiveTraceRecorder(context_windows=2)
        for window in windows:
            recorder.observe(window, record=window.index == 0)
        assert recorder.recorded_indices == [0, 1, 2]

    def test_anomaly_in_last_window_has_no_post_context(self):
        windows = make_windows(n_windows=6)
        recorder = SelectiveTraceRecorder(context_windows=2)
        for window in windows:
            recorder.observe(window, record=window.index == 5)
        assert recorder.recorded_indices == [3, 4, 5]

    def test_pre_context_bytes_are_not_recomputed(self):
        """Pre-context windows keep the byte size supplied to observe()."""
        windows = make_windows(n_windows=4)
        recorder = SelectiveTraceRecorder(context_windows=2)
        sentinel_sizes = [1000, 2000, 4000, 8000]
        for window, size in zip(windows, sentinel_sizes):
            recorder.observe(window, record=window.index == 2, window_bytes=size)
        report = recorder.report()
        # Windows 0, 1 (pre-context), 2 (anomaly) and 3 (post-context) were
        # recorded; the accounting must reuse the caller-provided sizes even
        # for the buffered pre-context windows.
        assert recorder.recorded_indices == [0, 1, 2, 3]
        assert report.recorded_bytes == sum(sentinel_sizes)

    @pytest.mark.parametrize("context", [0, 1, 3])
    @pytest.mark.parametrize("chunk", [1, 2, 5, 64])
    def test_observe_batch_matches_serial_observe(self, tmp_path, context, chunk):
        rng = random.Random(context * 100 + chunk)
        windows = make_windows(n_windows=40)
        flags = [rng.random() < 0.2 for _ in windows]
        sizes = [encoded_trace_size(window.events) for window in windows]

        serial_path = tmp_path / f"serial-{context}-{chunk}.jsonl"
        serial = SelectiveTraceRecorder(
            context_windows=context, output_path=serial_path, io_buffer_bytes=0
        )
        serial_wrote = [
            serial.observe(window, flag, size)
            for window, flag, size in zip(windows, flags, sizes)
        ]
        serial.close()

        batched_path = tmp_path / f"batched-{context}-{chunk}.jsonl"
        batched = SelectiveTraceRecorder(
            context_windows=context, output_path=batched_path
        )
        batched_wrote = []
        for start in range(0, len(windows), chunk):
            stop = start + chunk
            batched_wrote.extend(
                batched.observe_batch(
                    windows[start:stop], flags[start:stop], sizes[start:stop]
                )
            )
        batched.close()

        assert batched_wrote == serial_wrote
        assert batched.recorded_indices == serial.recorded_indices
        assert batched.report() == serial.report()
        assert batched_path.read_text() == serial_path.read_text()

    def test_context_with_batches_straddling_anomalies(self):
        """Anomaly at a batch boundary must pull pre-context from the
        previous batch and post-context from the next one."""
        windows = make_windows(n_windows=9)
        flags = [window.index == 4 for window in windows]
        recorder = SelectiveTraceRecorder(context_windows=2)
        for start in range(0, 9, 3):
            recorder.observe_batch(windows[start : start + 3], flags[start : start + 3])
        assert recorder.recorded_indices == [2, 3, 4, 5, 6]


class TestBatchedIo:
    def test_observe_batch_length_mismatch_rejected(self):
        windows = make_windows(n_windows=3)
        recorder = SelectiveTraceRecorder()
        with pytest.raises(RecorderError):
            recorder.observe_batch(windows, [True])
        with pytest.raises(RecorderError):
            recorder.observe_batch(windows, [True] * 3, window_bytes=[1])

    def test_observe_batch_after_close_rejected(self):
        recorder = SelectiveTraceRecorder()
        recorder.close()
        with pytest.raises(RecorderError):
            recorder.observe_batch(make_windows(1), [True])

    def test_negative_io_buffer_rejected(self):
        with pytest.raises(RecorderError):
            SelectiveTraceRecorder(io_buffer_bytes=-1)

    def test_buffered_and_unbuffered_files_are_identical(self, tmp_path):
        windows = make_windows(n_windows=20)
        unbuffered_path = tmp_path / "unbuffered.jsonl"
        with SelectiveTraceRecorder(
            output_path=unbuffered_path, io_buffer_bytes=0
        ) as unbuffered:
            for window in windows:
                unbuffered.observe(window, record=True)
        buffered_path = tmp_path / "buffered.jsonl"
        with SelectiveTraceRecorder(
            output_path=buffered_path, io_buffer_bytes=1 << 20
        ) as buffered:
            buffered.observe_batch(windows, [True] * len(windows))
        assert buffered_path.read_text() == unbuffered_path.read_text()
        assert buffered.io_write_count < unbuffered.io_write_count

    def test_buffer_flushes_at_threshold(self, tmp_path):
        windows = make_windows(n_windows=10)
        path = tmp_path / "threshold.jsonl"
        recorder = SelectiveTraceRecorder(output_path=path, io_buffer_bytes=1)
        recorder.observe(windows[0], record=True)
        # A 1-byte buffer flushes on every recorded window.
        assert recorder.io_write_count == 1
        recorder.close()
        assert read_trace(path) == list(windows[0].events)


class TestFullRecorder:
    def test_records_everything(self):
        windows = make_windows()
        recorder = FullTraceRecorder()
        for window in windows:
            recorder.observe(window)
        report = recorder.report()
        assert report.recorded_windows == report.total_windows == len(windows)
        assert report.recorded_bytes == report.total_bytes
        expected_bytes = sum(encoded_trace_size(window.events) for window in windows)
        assert report.total_bytes == expected_bytes
        recorder.close()

    def test_context_manager_and_observe_batch(self, tmp_path):
        windows = make_windows(n_windows=5)
        path = tmp_path / "full.jsonl"
        with FullTraceRecorder(output_path=path) as recorder:
            wrote = recorder.observe_batch(windows)
        assert wrote == [True] * len(windows)
        assert recorder.report().recorded_windows == len(windows)
        saved = read_trace(path)
        assert saved == [event for window in windows for event in window.events]

    def test_report_merged_with_sums_fields(self):
        left = RecorderReport(2, 10, 100, 1, 5, 50)
        right = RecorderReport(3, 20, 200, 2, 10, 150)
        merged = left.merged_with(right)
        assert merged == RecorderReport(5, 30, 300, 3, 15, 200)
