"""Shared fixtures for the test suite.

The expensive fixture is ``mini_experiment``: one small simulated endurance
run (a couple of minutes of media with two perturbations) that the
integration tests share instead of re-simulating it per test.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    DetectorConfig,
    EnduranceConfig,
    MediaConfig,
    MonitorConfig,
    PerturbationConfig,
    PlatformConfig,
)
from repro.experiments.endurance import run_endurance_experiment
from repro.media.app import EnduranceRun
from repro.trace.event import EventType, EventTypeRegistry, TraceEvent
from repro.trace.generator import PeriodicTraceGenerator, SyntheticTraceGenerator
from repro.trace.window import TraceWindow


@pytest.fixture()
def registry() -> EventTypeRegistry:
    """A fresh registry pre-populated with the canonical event types."""
    return EventTypeRegistry.with_default_types()


@pytest.fixture()
def simple_events() -> list[TraceEvent]:
    """A tiny, hand-written event sequence used by trace-layer unit tests."""
    return [
        TraceEvent(0, EventType.DEMUX_PACKET, core=0, task="demuxer", args={"frame": 0}),
        TraceEvent(5, EventType.FRAME_DECODE_START, core=0, task="decoder", args={"frame": 0}),
        TraceEvent(12_000, EventType.FRAME_DECODE_END, core=0, task="decoder", args={"frame": 0}),
        TraceEvent(12_500, EventType.BUFFER_PUSH, core=0, task="converter", args={"level": 1}),
        TraceEvent(40_000, EventType.FRAME_DISPLAY, core=0, task="sink", args={"frame": 0}),
        TraceEvent(40_001, EventType.VSYNC, core=0, task="sink"),
        TraceEvent(52_000, EventType.AUDIO_DECODE, core=0, task="audio", args={"chunk": 1}),
        TraceEvent(79_999, EventType.TIMER_TICK, core=0, task=""),
    ]


@pytest.fixture()
def simple_window(simple_events) -> TraceWindow:
    """A single window wrapping :func:`simple_events`."""
    return TraceWindow(index=0, start_us=0, end_us=80_000, events=tuple(simple_events))


@pytest.fixture()
def normal_mix() -> dict[str, float]:
    """Event mix of a healthy decoding window (synthetic streams)."""
    return {
        str(EventType.MB_ROW_DECODE): 10.0,
        str(EventType.FRAME_DECODE_START): 1.0,
        str(EventType.FRAME_DECODE_END): 1.0,
        str(EventType.FRAME_DISPLAY): 1.0,
        str(EventType.VSYNC): 1.0,
        str(EventType.AUDIO_DECODE): 2.0,
        str(EventType.BUFFER_PUSH): 1.0,
        str(EventType.BUFFER_POP): 1.0,
        str(EventType.DEMUX_PACKET): 1.0,
        str(EventType.SYSCALL_ENTER): 1.0,
        str(EventType.SYSCALL_EXIT): 1.0,
    }


@pytest.fixture()
def anomaly_mix(normal_mix) -> dict[str, float]:
    """Event mix of a starved decoder (used to build anomalous segments)."""
    mix = dict(normal_mix)
    mix[str(EventType.MB_ROW_DECODE)] = 1.0
    mix[str(EventType.FRAME_DISPLAY)] = 0.2
    mix[str(EventType.BUFFER_UNDERRUN)] = 3.0
    mix[str(EventType.FRAME_DROP)] = 2.0
    return mix


@pytest.fixture()
def synthetic_stream(normal_mix, anomaly_mix) -> PeriodicTraceGenerator:
    """A synthetic trace with two known anomalous intervals."""
    return PeriodicTraceGenerator(
        normal_mix,
        anomaly_mix,
        anomaly_intervals=[(20.0, 24.0), (40.0, 44.0)],
        rate_per_s=2_000.0,
        seed=42,
    )


def make_mini_config(duration_s: float = 150.0, seed: int = 77) -> EnduranceConfig:
    """A small but complete endurance configuration used across tests."""
    return EnduranceConfig(
        detector=DetectorConfig(k_neighbours=15, lof_threshold=1.2),
        monitor=MonitorConfig(
            window_duration_us=40_000, reference_duration_us=40_000_000
        ),
        platform=PlatformConfig(),
        media=MediaConfig(duration_s=duration_s, seed=seed),
        perturbation=PerturbationConfig(
            start_offset_s=55.0, period_s=45.0, duration_s=12.0, load_factor=3.0
        ),
    )


@pytest.fixture(scope="session")
def mini_config() -> EnduranceConfig:
    """Session-wide copy of the small endurance configuration."""
    return make_mini_config()


@pytest.fixture(scope="session")
def mini_trace(mini_config):
    """One simulated endurance trace shared by the integration tests."""
    return EnduranceRun(mini_config).run()


@pytest.fixture(scope="session")
def mini_experiment(mini_config):
    """One complete endurance experiment (simulation + monitoring + metrics)."""
    return run_endurance_experiment(mini_config)
