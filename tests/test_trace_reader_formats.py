"""Reader format detection and the columnar file entry points.

Regression coverage for the ``_detect_format`` fixes (empty and truncated
files used to raise ``IndexError`` or silently misdetect as empty JSON
traces) plus the behaviour of ``read_trace_columns`` /
``iter_window_batches`` against both codecs.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.trace.codec import BinaryTraceCodec
from repro.trace.event import EventTypeRegistry
from repro.trace.reader import (
    iter_trace_file,
    iter_window_batches,
    read_trace,
    read_trace_columns,
)
from repro.trace.stream import windows_by_duration
from repro.trace.writer import write_trace

from test_property_roundtrip import random_events


@pytest.fixture()
def events():
    return random_events(random.Random(17), 200)


# ---------------------------------------------------------------------- #
# _detect_format hardening
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "reader", [read_trace, read_trace_columns, lambda p: list(iter_trace_file(p))]
)
def test_empty_file_raises_clear_error_naming_path(tmp_path, reader):
    path = tmp_path / "empty.jsonl"
    path.write_bytes(b"")
    with pytest.raises(TraceFormatError, match="empty trace file") as excinfo:
        reader(path)
    assert str(path) in str(excinfo.value)


@pytest.mark.parametrize("reader", [read_trace, read_trace_columns])
@pytest.mark.parametrize("head", [b"R", b"RT", b"RTR"])
def test_partial_magic_prefix_raises_truncation_error(tmp_path, reader, head):
    path = tmp_path / "trunc.bin"
    path.write_bytes(head)
    with pytest.raises(TraceFormatError, match="truncated trace file") as excinfo:
        reader(path)
    assert str(path) in str(excinfo.value)


@pytest.mark.parametrize("reader", [read_trace, read_trace_columns])
@pytest.mark.parametrize("cut", [5, 10, 40])
def test_truncated_binary_trace_raises_clear_error(tmp_path, events, reader, cut):
    blob = BinaryTraceCodec().encode(events)
    path = tmp_path / "cut.bin"
    path.write_bytes(blob[:cut] if cut <= 10 else blob[:-cut])
    with pytest.raises(TraceFormatError, match="truncated|malformed") as excinfo:
        reader(path)
    assert str(path) in str(excinfo.value)


def test_truncated_json_trace_raises_clear_error(tmp_path, events):
    path = tmp_path / "cut.jsonl"
    text = "\n".join(
        line for line in write_trace(events, tmp_path / "full.jsonl").read_text().splitlines()
    )
    path.write_text(text[: len(text) // 2])
    with pytest.raises(TraceFormatError, match="malformed"):
        read_trace(path)
    with pytest.raises(TraceFormatError, match="malformed") as excinfo:
        read_trace_columns(path)
    assert str(path) in str(excinfo.value)


def test_missing_file_raises(tmp_path):
    for reader in (read_trace, read_trace_columns):
        with pytest.raises(TraceFormatError, match="does not exist"):
            reader(tmp_path / "nope.jsonl")


# ---------------------------------------------------------------------- #
# Columnar file entry points
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("fmt,name", [("jsonl", "t.jsonl"), ("binary", "t.bin")])
def test_read_trace_columns_equals_read_trace(tmp_path, events, fmt, name):
    path = write_trace(events, tmp_path / name, fmt=fmt)
    columns = read_trace_columns(path)
    assert columns.source_kind == fmt
    assert columns.to_events() == tuple(read_trace(path))


@pytest.mark.parametrize("prefetch", [0, 3])
@pytest.mark.parametrize("fmt,name", [("jsonl", "t.jsonl"), ("binary", "t.bin")])
def test_iter_window_batches_matches_object_windows(
    tmp_path, events, fmt, name, prefetch
):
    path = write_trace(events, tmp_path / name, fmt=fmt)
    expected = list(windows_by_duration(iter(events), 40_000))
    batches = list(
        iter_window_batches(
            path, EventTypeRegistry(), batch_size=16, prefetch=prefetch
        )
    )
    produced = [w for batch in batches for w in batch.to_windows()]
    assert produced == expected
    assert all(len(batch) <= 16 for batch in batches)
    sizes = [s for batch in batches for s in batch.window_sizes()]
    from repro.trace.codec import encoded_window_sizes

    assert sizes == encoded_window_sizes(expected)


def test_iter_window_batches_default_registry(tmp_path, events):
    path = write_trace(events, tmp_path / "t.jsonl", fmt="jsonl")
    batches = list(iter_window_batches(path))
    assert sum(len(b) for b in batches) == len(
        list(windows_by_duration(iter(events), 40_000))
    )


def test_iter_window_batches_propagates_decode_errors(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("not json at all\n")
    with pytest.raises(TraceFormatError, match="malformed"):
        list(iter_window_batches(path, EventTypeRegistry(), prefetch=2))
