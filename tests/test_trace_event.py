"""Unit tests for trace events and the event-type registry."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import TraceFormatError
from repro.trace.event import (
    APPLICATION_SCOPE_TYPES,
    DEFAULT_REGISTRY,
    EventType,
    EventTypeRegistry,
    TraceEvent,
)


class TestEventTypeRegistry:
    def test_register_returns_dense_codes(self):
        registry = EventTypeRegistry()
        assert registry.register("a") == 0
        assert registry.register("b") == 1
        assert registry.register("a") == 0  # idempotent
        assert len(registry) == 2

    def test_code_and_name_roundtrip(self):
        registry = EventTypeRegistry(["x", "y", "z"])
        for name in ("x", "y", "z"):
            assert registry.name(registry.code(name)) == name

    def test_unknown_name_raises(self):
        registry = EventTypeRegistry(["x"])
        with pytest.raises(TraceFormatError):
            registry.code("unknown")

    def test_unknown_code_raises(self):
        registry = EventTypeRegistry(["x"])
        with pytest.raises(TraceFormatError):
            registry.name(5)

    def test_contains_and_iteration(self):
        registry = EventTypeRegistry(["x", "y"])
        assert "x" in registry
        assert "nope" not in registry
        assert list(registry) == ["x", "y"]
        assert registry.names == ("x", "y")

    def test_accepts_event_type_enum(self):
        registry = EventTypeRegistry()
        code = registry.register(EventType.SCHED_SWITCH)
        assert registry.code("sched_switch") == code
        assert EventType.SCHED_SWITCH in registry

    def test_with_default_types_covers_every_enum_member(self):
        registry = EventTypeRegistry.with_default_types()
        assert len(registry) == len(EventType)
        for event_type in EventType:
            assert event_type in registry

    def test_to_dict_from_dict_roundtrip(self):
        registry = EventTypeRegistry(["a", "b", "c"])
        rebuilt = EventTypeRegistry.from_dict(registry.to_dict())
        assert rebuilt.names == registry.names

    def test_from_dict_rejects_non_contiguous_codes(self):
        with pytest.raises(TraceFormatError):
            EventTypeRegistry.from_dict({"a": 0, "b": 2})

    def test_default_registry_is_prepopulated(self):
        assert len(DEFAULT_REGISTRY) == len(EventType)

    def test_application_scope_is_a_strict_subset_of_all_types(self):
        all_types = {event_type.value for event_type in EventType}
        assert APPLICATION_SCOPE_TYPES < all_types
        assert EventType.SCHED_SWITCH.value not in APPLICATION_SCOPE_TYPES
        assert EventType.FRAME_DECODE_END.value in APPLICATION_SCOPE_TYPES


class TestTraceEvent:
    def test_basic_fields(self):
        event = TraceEvent(10, EventType.FRAME_DISPLAY, core=1, task="sink", args={"frame": 3})
        assert event.timestamp_us == 10
        assert event.etype == "frame_display"
        assert event.core == 1
        assert event.task == "sink"
        assert event.args["frame"] == 3
        assert event.timestamp_s == pytest.approx(1e-5)

    def test_negative_timestamp_rejected(self):
        with pytest.raises(TraceFormatError):
            TraceEvent(-1, "x")

    def test_enum_etype_normalised_to_string(self):
        event = TraceEvent(0, EventType.VSYNC)
        assert isinstance(event.etype, str)
        assert event.etype == "vsync"

    def test_with_timestamp_shifts_only_time(self):
        event = TraceEvent(5, "x", core=2, task="t", args={"k": 1})
        moved = event.with_timestamp(99)
        assert moved.timestamp_us == 99
        assert (moved.etype, moved.core, moved.task, dict(moved.args)) == (
            "x",
            2,
            "t",
            {"k": 1},
        )

    def test_to_dict_from_dict_roundtrip(self):
        event = TraceEvent(123, "custom_event", core=3, task="worker", args={"a": [1, 2]})
        rebuilt = TraceEvent.from_dict(event.to_dict())
        assert rebuilt == event

    def test_from_dict_rejects_malformed_records(self):
        with pytest.raises(TraceFormatError):
            TraceEvent.from_dict({"type": "x"})  # missing timestamp
        with pytest.raises(TraceFormatError):
            TraceEvent.from_dict({"t": "not-a-number", "type": "x"})

    @given(
        timestamp=st.integers(min_value=0, max_value=10**15),
        etype=st.text(min_size=1, max_size=20),
        core=st.integers(min_value=0, max_value=255),
        task=st.text(max_size=10),
    )
    def test_dict_roundtrip_property(self, timestamp, etype, core, task):
        event = TraceEvent(timestamp, etype, core=core, task=task)
        assert TraceEvent.from_dict(event.to_dict()) == event
