"""Tests for the discrete-event simulation engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.platform.simulator import Simulator


class TestScheduling:
    def test_callbacks_run_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule_at(30, lambda: order.append("c"))
        simulator.schedule_at(10, lambda: order.append("a"))
        simulator.schedule_at(20, lambda: order.append("b"))
        simulator.run()
        assert order == ["a", "b", "c"]
        assert simulator.now_us == 30

    def test_simultaneous_callbacks_run_in_scheduling_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule_at(10, lambda: order.append("first"))
        simulator.schedule_at(10, lambda: order.append("second"))
        simulator.run()
        assert order == ["first", "second"]

    def test_schedule_in_is_relative_to_now(self):
        simulator = Simulator(start_us=100)
        seen = []
        simulator.schedule_in(50, lambda: seen.append(simulator.now_us))
        simulator.run()
        assert seen == [150]

    def test_scheduling_in_the_past_rejected(self):
        simulator = Simulator(start_us=100)
        with pytest.raises(SimulationError):
            simulator.schedule_at(50, lambda: None)
        with pytest.raises(SimulationError):
            simulator.schedule_in(-1, lambda: None)

    def test_callbacks_can_schedule_more_work(self):
        simulator = Simulator()
        seen = []

        def chain(depth):
            seen.append(simulator.now_us)
            if depth:
                simulator.schedule_in(10, lambda: chain(depth - 1))

        simulator.schedule_at(0, lambda: chain(3))
        simulator.run()
        assert seen == [0, 10, 20, 30]

    def test_cancelled_event_does_not_run(self):
        simulator = Simulator()
        seen = []
        handle = simulator.schedule_at(10, lambda: seen.append("no"))
        simulator.schedule_at(5, lambda: seen.append("yes"))
        handle.cancel()
        simulator.run()
        assert seen == ["yes"]

    def test_periodic_scheduling_until_bound(self):
        simulator = Simulator()
        ticks = []
        simulator.schedule_periodic(10, lambda: ticks.append(simulator.now_us), start_us=10, until_us=45)
        simulator.run()
        assert ticks == [10, 20, 30, 40]

    def test_periodic_requires_positive_period(self):
        simulator = Simulator()
        with pytest.raises(SimulationError):
            simulator.schedule_periodic(0, lambda: None)


class TestRun:
    def test_run_until_advances_clock_even_without_events(self):
        simulator = Simulator()
        simulator.schedule_at(10, lambda: None)
        simulator.run(until_us=100)
        assert simulator.now_us == 100

    def test_run_until_leaves_later_events_pending(self):
        simulator = Simulator()
        seen = []
        simulator.schedule_at(10, lambda: seen.append("early"))
        simulator.schedule_at(200, lambda: seen.append("late"))
        simulator.run(until_us=100)
        assert seen == ["early"]
        assert simulator.pending() == 1
        simulator.run()
        assert seen == ["early", "late"]

    def test_max_events_guard(self):
        simulator = Simulator()

        def forever():
            simulator.schedule_in(1, forever)

        simulator.schedule_at(0, forever)
        with pytest.raises(SimulationError):
            simulator.run(max_events=100)

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_processed_events_counter(self):
        simulator = Simulator()
        for t in range(5):
            simulator.schedule_at(t, lambda: None)
        simulator.run()
        assert simulator.processed_events == 5

    def test_reentrant_run_rejected(self):
        simulator = Simulator()

        def nested():
            simulator.run()

        simulator.schedule_at(0, nested)
        with pytest.raises(SimulationError):
            simulator.run()
