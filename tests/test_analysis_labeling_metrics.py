"""Tests for ground-truth labelling and the evaluation metrics."""

from __future__ import annotations

import pytest

from repro.analysis.detector import DetectionOutcome, WindowDecision
from repro.analysis.labeling import (
    GroundTruth,
    ImpactInterval,
    WindowLabel,
    estimate_impact_delays,
    label_windows,
)
from repro.analysis.metrics import ConfusionCounts, DetectionMetrics, compute_metrics, reduction_factor
from repro.analysis.recorder import RecorderReport
from repro.errors import LabelingError
from repro.media.perturbation import PerturbationInterval


def decision(index, lof, start_s, anomalous=None, window_bytes=100):
    lof_checked = lof is not None
    is_anomalous = anomalous if anomalous is not None else (lof_checked and lof >= 1.2)
    return WindowDecision(
        window_index=index,
        start_us=int(start_s * 1e6),
        end_us=int(start_s * 1e6) + 40_000,
        n_events=10,
        kl_to_past=0.1,
        lof_score=lof,
        outcome=DetectionOutcome.ANOMALOUS if is_anomalous else DetectionOutcome.NORMAL,
        window_bytes=window_bytes,
    )


class TestImpactDelays:
    def test_delays_estimated_from_first_and_last_errors(self):
        intervals = [PerturbationInterval(10.0, 20.0), PerturbationInterval(50.0, 60.0)]
        errors = [int(12.0e6), int(15e6), int(21.5e6), int(53.0e6), int(61.0e6)]
        delta_start, delta_end = estimate_impact_delays(intervals, errors, calibration_intervals=2)
        assert delta_start == pytest.approx(2.5e6)   # mean of 2.0 s and 3.0 s
        assert delta_end == pytest.approx(1.25e6)    # mean of 1.5 s and 1.0 s

    def test_perturbations_without_errors_are_skipped(self):
        intervals = [PerturbationInterval(10.0, 20.0), PerturbationInterval(50.0, 60.0)]
        errors = [int(52e6)]
        delta_start, delta_end = estimate_impact_delays(intervals, errors)
        assert delta_start == pytest.approx(2e6)

    def test_no_errors_gives_zero_delays(self):
        assert estimate_impact_delays([PerturbationInterval(1.0, 2.0)], []) == (0.0, 0.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(LabelingError):
            estimate_impact_delays([], [], calibration_intervals=0)
        with pytest.raises(LabelingError):
            estimate_impact_delays([], [], max_tail_s=0)


class TestGroundTruth:
    def test_from_run_builds_shifted_intervals(self):
        intervals = [PerturbationInterval(10.0, 20.0)]
        errors = [int(12e6), int(21e6)]
        truth = GroundTruth.from_run(intervals, errors)
        assert truth.delta_start_us == pytest.approx(2e6)
        assert truth.delta_end_us == pytest.approx(1e6)
        assert truth.impact_intervals[0].start_us == pytest.approx(12e6)
        assert truth.impact_intervals[0].end_us == pytest.approx(21e6)

    def test_window_queries(self):
        truth = GroundTruth(
            impact_intervals=(ImpactInterval(10e6, 20e6),),
            error_timestamps_us=(int(12e6), int(15e6)),
        )
        assert truth.window_in_impact(11e6, 11.1e6)
        assert not truth.window_in_impact(21e6, 22e6)
        assert truth.window_has_error(11.99e6, 12.01e6)
        assert not truth.window_has_error(13e6, 14e6)
        assert truth.expected_anomalous(11.99e6, 12.01e6)
        assert not truth.expected_anomalous(30e6, 31e6)

    def test_invalid_impact_interval_rejected(self):
        with pytest.raises(LabelingError):
            ImpactInterval(10.0, 10.0)


class TestLabeling:
    def _truth(self):
        return GroundTruth(
            impact_intervals=(ImpactInterval(10e6, 20e6),),
            error_timestamps_us=tuple(int(t * 1e6) for t in (11.0, 12.0, 15.0, 19.0)),
        )

    def test_four_label_kinds(self):
        truth = self._truth()
        decisions = [
            decision(0, 2.0, start_s=11.0),    # in impact, error, detected  -> TP
            decision(1, 1.0, start_s=12.0),    # in impact, error, missed    -> FN
            decision(2, 3.0, start_s=40.0),    # outside impact, detected    -> FP
            decision(3, 1.0, start_s=41.0),    # outside impact, not flagged -> TN
            decision(4, 2.5, start_s=13.0),    # in impact but no error      -> FP
        ]
        labels = label_windows(decisions, truth)
        assert labels == [
            WindowLabel.TRUE_POSITIVE,
            WindowLabel.FALSE_NEGATIVE,
            WindowLabel.FALSE_POSITIVE,
            WindowLabel.TRUE_NEGATIVE,
            WindowLabel.FALSE_POSITIVE,
        ]

    def test_alpha_override_rethresholds(self):
        truth = self._truth()
        decisions = [decision(0, 1.4, start_s=11.0)]
        assert label_windows(decisions, truth, alpha=1.2) == [WindowLabel.TRUE_POSITIVE]
        assert label_windows(decisions, truth, alpha=1.5) == [WindowLabel.FALSE_NEGATIVE]

    def test_merged_windows_count_as_negatives(self):
        truth = self._truth()
        merged = decision(0, None, start_s=11.0, anomalous=False)
        assert label_windows([merged], truth, alpha=0.5) == [WindowLabel.FALSE_NEGATIVE]
        outside = decision(1, None, start_s=40.0, anomalous=False)
        assert label_windows([outside], truth, alpha=0.5) == [WindowLabel.TRUE_NEGATIVE]


class TestMetrics:
    def test_confusion_counts_from_labels(self):
        counts = ConfusionCounts.from_labels(
            [WindowLabel.TRUE_POSITIVE] * 3
            + [WindowLabel.FALSE_POSITIVE] * 1
            + [WindowLabel.FALSE_NEGATIVE] * 2
            + [WindowLabel.TRUE_NEGATIVE] * 4
        )
        assert (counts.tp, counts.fp, counts.fn, counts.tn) == (3, 1, 2, 4)
        assert counts.precision == pytest.approx(0.75)
        assert counts.recall == pytest.approx(0.6)
        assert counts.f1 == pytest.approx(2 * 0.75 * 0.6 / 1.35)
        assert counts.accuracy == pytest.approx(0.7)
        assert counts.false_positive_rate == pytest.approx(0.2)
        assert counts.total == 10

    def test_degenerate_counts(self):
        empty = ConfusionCounts()
        assert empty.precision == 0.0
        assert empty.recall == 1.0
        assert empty.f1 == 0.0
        assert empty.accuracy == 0.0
        with pytest.raises(LabelingError):
            ConfusionCounts(tp=-1)

    def test_counts_addition(self):
        total = ConfusionCounts(1, 2, 3, 4) + ConfusionCounts(10, 20, 30, 40)
        assert (total.tp, total.fp, total.fn, total.tn) == (11, 22, 33, 44)

    def test_compute_metrics_with_report(self):
        labels = [WindowLabel.TRUE_POSITIVE, WindowLabel.TRUE_NEGATIVE]
        report = RecorderReport(2, 20, 1_000, 1, 10, 100)
        metrics = compute_metrics(labels, report)
        assert metrics.precision == 1.0
        assert metrics.reduction_factor == pytest.approx(10.0)
        payload = metrics.to_dict()
        assert payload["tp"] == 1 and payload["reduction_factor"] == pytest.approx(10.0)

    def test_compute_metrics_without_report(self):
        metrics = compute_metrics([WindowLabel.TRUE_NEGATIVE])
        assert metrics.total_bytes == 0
        assert metrics.reduction_factor == 1.0

    def test_reduction_factor_function(self):
        assert reduction_factor(100, 10) == pytest.approx(10.0)
        assert reduction_factor(0, 0) == 1.0
        assert reduction_factor(100, 0) == float("inf")
        with pytest.raises(LabelingError):
            reduction_factor(-1, 0)
