"""Tests for the configuration dataclasses and their (de)serialisation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    DetectorConfig,
    EnduranceConfig,
    MediaConfig,
    MonitorConfig,
    PerturbationConfig,
    PlatformConfig,
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from repro.errors import ConfigurationError


class TestValidation:
    def test_defaults_are_valid(self):
        EnduranceConfig()  # should not raise

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k_neighbours": 0},
            {"lof_threshold": 0.0},
            {"kl_threshold": -0.1},
            {"kl_smoothing": 0.0},
            {"merge_decay": 0.0},
            {"merge_decay": 1.5},
        ],
    )
    def test_detector_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            DetectorConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_duration_us": 0},
            {"window_event_capacity": 0},
            {"reference_duration_us": 0},
            {"record_context_windows": -1},
        ],
    )
    def test_monitor_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            MonitorConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_cores": 0},
            {"scheduler_quantum_us": 0},
            {"trace_buffer_events": 0},
            {"trace_scope": "kernel-only"},
        ],
    )
    def test_platform_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            PlatformConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"frame_rate_fps": 0},
            {"duration_s": 0},
            {"gop_length": 0},
            {"buffer_capacity_frames": 0},
        ],
    )
    def test_media_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            MediaConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"period_s": 0},
            {"duration_s": 0},
            {"duration_s": 200.0, "period_s": 100.0},
            {"load_factor": 0},
        ],
    )
    def test_perturbation_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            PerturbationConfig(**kwargs)

    def test_endurance_rejects_reference_longer_than_media(self):
        with pytest.raises(ConfigurationError):
            EnduranceConfig(
                monitor=MonitorConfig(reference_duration_us=700_000_000),
                media=MediaConfig(duration_s=600.0),
            )

    def test_endurance_rejects_perturbation_inside_reference(self):
        with pytest.raises(ConfigurationError):
            EnduranceConfig(
                monitor=MonitorConfig(reference_duration_us=300_000_000),
                media=MediaConfig(duration_s=600.0),
                perturbation=PerturbationConfig(start_offset_s=100.0),
            )


class TestDerivedValues:
    def test_media_frame_period_and_count(self):
        media = MediaConfig(frame_rate_fps=25.0, duration_s=10.0)
        assert media.frame_period_us == pytest.approx(40_000.0)
        assert media.n_frames == 250

    def test_detector_with_alpha(self):
        detector = DetectorConfig(lof_threshold=1.2)
        assert detector.with_alpha(2.5).lof_threshold == 2.5
        assert detector.lof_threshold == 1.2  # original untouched

    def test_scaled_paper_setup_keeps_paper_parameters(self):
        config = EnduranceConfig.scaled_paper_setup(duration_s=900.0)
        assert config.monitor.window_duration_us == 40_000
        assert config.detector.k_neighbours == 20
        assert config.monitor.reference_duration_us == 300_000_000
        assert config.perturbation.duration_s == pytest.approx(20.0)
        assert config.perturbation.period_s == pytest.approx(180.0)

    def test_scaled_paper_setup_rejects_too_short_runs(self):
        with pytest.raises(ConfigurationError):
            EnduranceConfig.scaled_paper_setup(duration_s=310.0, reference_s=300.0)


class TestSerialization:
    def test_dict_roundtrip(self):
        config = EnduranceConfig.scaled_paper_setup(duration_s=900.0)
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt == config

    def test_unknown_section_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"nonsense": {}})

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"detector": {"k_neighbours": 5, "typo": 1}})

    def test_partial_dict_uses_defaults(self):
        config = config_from_dict({"detector": {"k_neighbours": 7}})
        assert config.detector.k_neighbours == 7
        assert config.media == MediaConfig()

    def test_file_roundtrip(self, tmp_path):
        config = EnduranceConfig.scaled_paper_setup(duration_s=1200.0, seed=9)
        path = save_config(config, tmp_path / "experiment.json")
        assert load_config(path) == config

    def test_load_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_config(tmp_path / "missing.json")

    def test_load_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_config(path)

    def test_config_to_dict_rejects_non_dataclass(self):
        with pytest.raises(ConfigurationError):
            config_to_dict({"not": "a dataclass"})
