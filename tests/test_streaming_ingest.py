"""Streaming columnar ingest: chunked feeds == one-shot reads, bit for bit.

The acceptance bar of the streaming ingest plane: a trace fed in chunks —
1-byte, record-aligned, or random-sized — through the resumable decoders and
:class:`~repro.trace.streaming.StreamingWindowSource` must reproduce a
one-shot columnar read of the final bytes exactly, for the single-stream
monitor, the serial fleet and the process-parallel fleet (both transports).
Alongside: the truncation/shutdown hardening regression tests (partial
trailing records name path offsets; a dead prefetch producer raises instead
of hanging; knob validation at the config and CLI layers) and the bounded
memory / no-leaked-thread guarantees.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

import repro.analysis.parallel as parallel_backend
from repro.analysis.fleet import ShardedTraceMonitor
from repro.analysis.model import ReferenceModel
from repro.analysis.monitor import TraceMonitor
from repro.cli.main import build_parser, main as cli_main
from repro.config import DetectorConfig, MonitorConfig
from repro.errors import (
    ConfigurationError,
    TraceFormatError,
    TraceStreamError,
)
from repro.trace.codec import BinaryTraceCodec
from repro.trace.columns import (
    BinaryColumnsDecoder,
    JsonColumnsDecoder,
    decode_binary_columns,
    decode_json_columns,
)
from repro.trace.event import EventTypeRegistry
from repro.trace.generator import SyntheticTraceGenerator
from repro.trace.pipeline import BoundedHandoff, HandoffStats, prefetch_batches
from repro.trace.reader import read_trace_columns
from repro.trace.stream import WindowPolicy, iter_column_batches
from repro.trace.streaming import (
    FileTail,
    PushFeed,
    StreamRecipe,
    StreamingWindowSource,
    StreamStats,
)
from repro.trace.writer import write_trace

MIX = {
    "mb_row_decode": 8.0,
    "frame_decode_start": 1.0,
    "frame_decode_end": 1.0,
    "vsync": 1.0,
    "audio_decode": 2.0,
    "buffer_push": 1.0,
    "buffer_pop": 1.0,
    "syscall_enter": 1.0,
}

WINDOW_US = 40_000


def generated_events(seed: int, duration_s: float):
    return list(
        SyntheticTraceGenerator(MIX, rate_per_s=4000, seed=seed).events(duration_s)
    )


def assert_results_identical(a, b):
    assert a.decisions == b.decisions
    assert a.report == b.report
    assert a.recorded_indices == b.recorded_indices
    assert a.detector_stats == b.detector_stats
    assert a.reference_window_count == b.reference_window_count


def chunk_plans(data: bytes, seed: int = 0):
    """(name, list-of-chunks) plans: 1-byte, random-sized and whole-blob."""
    rng = np.random.default_rng(seed)
    random_chunks, pos = [], 0
    while pos < len(data):
        size = int(rng.integers(1, 4096))
        random_chunks.append(data[pos : pos + size])
        pos += size
    return [
        ("one-byte", [data[i : i + 1] for i in range(len(data))]),
        ("random", random_chunks),
        ("whole", [data]),
    ]


@pytest.fixture(scope="module")
def trace_files(tmp_path_factory):
    root = tmp_path_factory.mktemp("traces")
    events = generated_events(seed=5, duration_s=6.0)
    return {
        "jsonl": write_trace(events, root / "trace.jsonl", fmt="jsonl"),
        "binary": write_trace(events, root / "trace.bin", fmt="binary"),
    }


@pytest.fixture(scope="module")
def small_trace_files(tmp_path_factory):
    """A short trace cheap enough to feed byte by byte."""
    root = tmp_path_factory.mktemp("small")
    events = generated_events(seed=7, duration_s=0.4)
    return {
        "jsonl": write_trace(events, root / "small.jsonl", fmt="jsonl"),
        "binary": write_trace(events, root / "small.bin", fmt="binary"),
    }


def assert_columns_equal(actual, expected):
    np.testing.assert_array_equal(actual.timestamps_us, expected.timestamps_us)
    np.testing.assert_array_equal(actual.type_codes, expected.type_codes)
    np.testing.assert_array_equal(actual.cores, expected.cores)
    np.testing.assert_array_equal(actual.static_sizes, expected.static_sizes)
    assert actual.type_names == expected.type_names


def decode_chunked(decoder_cls, data, chunks):
    decoder = decoder_cls()
    parts = [decoder.feed(chunk) for chunk in chunks]
    tail = decoder.finish()
    if len(tail):
        parts.append(tail)
    parts = [part for part in parts if len(part)]
    return decoder, parts


def concatenated_events(parts):
    events = []
    for part in parts:
        events.extend(part.events(0, len(part)))
    return events


# ---------------------------------------------------------------------- #
# Resumable decoders == one-shot decoders
# ---------------------------------------------------------------------- #
def test_binary_decoder_chunked_equals_one_shot(small_trace_files):
    data = small_trace_files["binary"].read_bytes()
    expected = decode_binary_columns(data)
    for name, chunks in chunk_plans(data):
        decoder, parts = decode_chunked(BinaryColumnsDecoder, data, chunks)
        assert decoder.resume_offset == len(data), name
        assert decoder.type_names == expected.type_names, name
        merged_ts = np.concatenate([p.timestamps_us for p in parts])
        np.testing.assert_array_equal(merged_ts, expected.timestamps_us)
        merged_codes = np.concatenate([p.type_codes for p in parts])
        np.testing.assert_array_equal(merged_codes, expected.type_codes)
        merged_static = np.concatenate([p.static_sizes for p in parts])
        np.testing.assert_array_equal(merged_static, expected.static_sizes)
        assert concatenated_events(parts) == list(
            expected.events(0, len(expected))
        ), name


def test_binary_decoder_record_aligned_chunks(small_trace_files):
    """Chunks cut exactly at record boundaries (the friendliest feed)."""
    data = small_trace_files["binary"].read_bytes()
    expected = decode_binary_columns(data)
    offsets = [int(o) for o in expected._record_offsets] + [len(data)]
    chunks = [data[: offsets[0]]] + [
        data[offsets[i] : offsets[i + 1]] for i in range(len(offsets) - 1)
    ]
    decoder, parts = decode_chunked(BinaryColumnsDecoder, data, chunks)
    merged_ts = np.concatenate([p.timestamps_us for p in parts])
    np.testing.assert_array_equal(merged_ts, expected.timestamps_us)
    assert decoder.type_names == expected.type_names


def test_binary_decoder_multi_segment_stream():
    """Concatenated self-describing segments decode across chunk boundaries."""
    events = generated_events(seed=11, duration_s=0.6)
    codec = BinaryTraceCodec()
    third = len(events) // 3
    data = b"".join(
        codec.encode(events[i : i + third or None])
        for i in range(0, len(events), third)
    )
    expected = decode_binary_columns(data)
    for name, chunks in chunk_plans(data, seed=3)[:2]:
        decoder, parts = decode_chunked(BinaryColumnsDecoder, data, chunks)
        merged_ts = np.concatenate([p.timestamps_us for p in parts])
        np.testing.assert_array_equal(merged_ts, expected.timestamps_us, name)
        assert decoder.type_names == expected.type_names, name
        assert concatenated_events(parts) == list(
            expected.events(0, len(expected))
        ), name


def test_json_decoder_chunked_equals_one_shot(small_trace_files):
    text = small_trace_files["jsonl"].read_text(encoding="utf-8")
    data = text.encode("utf-8")
    expected = decode_json_columns(text)
    for name, chunks in chunk_plans(data, seed=1):
        decoder, parts = decode_chunked(JsonColumnsDecoder, data, chunks)
        assert decoder.type_names == expected.type_names, name
        merged_ts = np.concatenate([p.timestamps_us for p in parts])
        np.testing.assert_array_equal(merged_ts, expected.timestamps_us)
        merged_static = np.concatenate([p.static_sizes for p in parts])
        np.testing.assert_array_equal(merged_static, expected.static_sizes)
        assert concatenated_events(parts) == list(
            expected.events(0, len(expected))
        ), name


def test_json_decoder_utf8_split_across_chunks():
    """A multi-byte UTF-8 sequence split mid-character decodes cleanly."""
    lines = [
        json.dumps(
            {"t": 10 * (i + 1), "type": "vsync", "core": 0, "task": "décodeur", "args": {}},
            ensure_ascii=False,
        )
        for i in range(5)
    ]
    data = ("\n".join(lines) + "\n").encode("utf-8")
    expected = decode_json_columns(data.decode("utf-8"))
    decoder, parts = decode_chunked(
        JsonColumnsDecoder, data, [data[i : i + 1] for i in range(len(data))]
    )
    assert concatenated_events(parts) == list(expected.events(0, len(expected)))


def test_json_decoder_final_line_without_newline(small_trace_files):
    """A complete final line missing its newline parses, as in one-shot."""
    text = small_trace_files["jsonl"].read_text(encoding="utf-8").rstrip("\n")
    expected = decode_json_columns(text)
    decoder = JsonColumnsDecoder()
    first = decoder.feed(text.encode("utf-8"))
    tail = decoder.finish()
    total = len(first) + len(tail)
    assert total == len(expected)


# ---------------------------------------------------------------------- #
# Truncation errors name path offsets (regression: they used to be vague)
# ---------------------------------------------------------------------- #
def test_binary_truncated_record_names_byte_offset(small_trace_files):
    data = small_trace_files["binary"].read_bytes()
    cut = data[:-7]
    with pytest.raises(TraceFormatError, match=r"byte offset \d+") as err:
        decode_binary_columns(cut)
    assert "truncated" in str(err.value)


def test_binary_streaming_truncated_record_names_byte_offset(small_trace_files):
    data = small_trace_files["binary"].read_bytes()
    decoder = BinaryColumnsDecoder()
    decoder.feed(data[:-7])
    with pytest.raises(TraceFormatError, match=r"byte offset \d+"):
        decoder.finish()


def test_binary_truncated_header_offset():
    events = generated_events(seed=13, duration_s=0.1)
    data = BinaryTraceCodec().encode(events)
    with pytest.raises(TraceFormatError, match="truncated binary trace header"):
        decode_binary_columns(data[:6])
    decoder = BinaryColumnsDecoder()
    decoder.feed(data[:6])
    with pytest.raises(TraceFormatError, match="truncated binary trace header"):
        decoder.finish()


def test_json_partial_final_line_names_line_number(small_trace_files):
    text = small_trace_files["jsonl"].read_text(encoding="utf-8")
    cut = text[:-9]  # ends inside the final record's JSON
    n_lines = cut.count("\n") + 1
    with pytest.raises(
        TraceFormatError, match=rf"malformed JSON event line {n_lines}"
    ) as err:
        decode_json_columns(cut)
    assert "still being appended" in str(err.value)
    decoder = JsonColumnsDecoder()
    decoder.feed(cut.encode("utf-8"))
    with pytest.raises(
        TraceFormatError, match=rf"malformed JSON event line {n_lines}"
    ):
        decoder.finish()


def test_json_trailing_blank_lines_are_not_an_error(small_trace_files):
    text = small_trace_files["jsonl"].read_text(encoding="utf-8")
    expected = decode_json_columns(text)
    padded = text + "\n\n"
    assert len(decode_json_columns(padded)) == len(expected)
    decoder = JsonColumnsDecoder()
    parts = [decoder.feed(padded.encode("utf-8"))]
    tail = decoder.finish()
    assert len(parts[0]) + len(tail) == len(expected)


def test_binary_decoder_resume_offset_tracks_consumed_records():
    events = generated_events(seed=17, duration_s=0.1)
    data = BinaryTraceCodec().encode(events)
    expected = decode_binary_columns(data)
    boundary = int(expected._record_offsets[len(expected) // 2])
    decoder = BinaryColumnsDecoder()
    decoder.feed(data[: boundary + 3])  # 3 bytes into the next record
    assert decoder.resume_offset == boundary
    decoder.feed(data[boundary + 3 :])
    decoder.finish()
    assert decoder.resume_offset == len(data)


def test_json_decoder_resume_line_tracks_consumed_lines(small_trace_files):
    text = small_trace_files["jsonl"].read_text(encoding="utf-8")
    first_two = text.split("\n", 2)
    decoder = JsonColumnsDecoder()
    decoder.feed((first_two[0] + "\n" + first_two[1] + "\npartial").encode())
    assert decoder.resume_line == 3


def test_empty_binary_stream_raises_on_finish():
    decoder = BinaryColumnsDecoder()
    with pytest.raises(TraceFormatError, match="empty stream"):
        decoder.finish()


# ---------------------------------------------------------------------- #
# Bounded hand-off and prefetch shutdown hardening
# ---------------------------------------------------------------------- #
def test_bounded_handoff_rejects_bad_depth():
    with pytest.raises(TraceStreamError, match="depth must be >= 1"):
        BoundedHandoff(0)


def test_bounded_handoff_counts_stalls_and_peak():
    stats = HandoffStats()
    handoff = BoundedHandoff(2, stats=stats)
    assert handoff.put("a") and handoff.put("b")
    stop = threading.Event()
    timer = threading.Timer(0.05, stop.set)
    timer.start()
    assert not handoff.put("c", stop=stop, poll_s=0.01)  # stalls, then stopped
    assert stats.put_stalls == 1
    assert stats.peak_level >= 1
    assert handoff.get() == "a"
    assert handoff.get() == "b"
    with pytest.raises(Exception):  # queue.Empty via dead keep_waiting
        handoff.get(keep_waiting=lambda: False, poll_s=0.01)
    assert stats.get_stalls == 1
    assert stats.depth == 2
    assert 0.0 < stats.fill_fraction() <= 1.0


def test_prefetch_dead_producer_raises_instead_of_hanging(monkeypatch):
    """Regression: a producer dying without its sentinel hung the consumer."""
    original_put = BoundedHandoff.put

    def dropping_put(self, item, stop=None, poll_s=0.05):
        if isinstance(item, tuple) and item[0] != "item":
            return True  # swallow the completion/error sentinel
        return original_put(self, item, stop=stop, poll_s=poll_s)

    monkeypatch.setattr(BoundedHandoff, "put", dropping_put)

    outcome = {}

    def consume():
        try:
            outcome["items"] = list(prefetch_batches(iter(range(3)), depth=2))
        except TraceStreamError as exc:
            outcome["error"] = exc

    consumer = threading.Thread(target=consume, daemon=True)
    consumer.start()
    consumer.join(timeout=10.0)
    assert not consumer.is_alive(), "consumer hung on a dead producer"
    assert "error" in outcome
    assert "died without delivering" in str(outcome["error"])


def test_prefetch_propagates_producer_error():
    def boom():
        yield 1
        raise ValueError("decode failed")

    iterator = prefetch_batches(boom(), depth=2)
    assert next(iterator) == 1
    with pytest.raises(ValueError, match="decode failed"):
        list(iterator)


def _prefetch_threads():
    return [
        t for t in threading.enumerate() if t.name.startswith("repro-ingest-prefetch")
    ]


def test_prefetch_abandoned_iterator_stops_producer_thread():
    iterator = prefetch_batches(iter(range(1000)), depth=2)
    assert next(iterator) == 0
    iterator.close()
    deadline = time.monotonic() + 5.0
    while _prefetch_threads() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert not _prefetch_threads(), "producer thread leaked after close()"


# ---------------------------------------------------------------------- #
# PushFeed and FileTail
# ---------------------------------------------------------------------- #
def test_push_feed_roundtrip_and_closed_write():
    feed = PushFeed(depth=4)
    feed.write(b"ab")
    feed.write(b"")  # no-op
    feed.write(b"cd")
    feed.close()
    feed.close()  # idempotent
    assert list(feed) == [b"ab", b"cd"]
    with pytest.raises(TraceStreamError, match="closed feed"):
        feed.write(b"late")


def test_push_feed_abandoned_consumer_unblocks_writer():
    feed = PushFeed(depth=1)
    feed.write(b"x")
    iterator = iter(feed)
    assert next(iterator) == b"x"
    iterator.close()  # abandon
    with pytest.raises(TraceStreamError, match="consumer is gone"):
        for _ in range(10):  # the queue has depth 1; the second write blocks
            feed.write(b"y")


def test_file_tail_validates_parameters(tmp_path):
    with pytest.raises(TraceStreamError, match="poll_interval_s"):
        FileTail(tmp_path / "t", poll_interval_s=0)
    with pytest.raises(TraceStreamError, match="idle_timeout_s"):
        FileTail(tmp_path / "t", idle_timeout_s=-1)
    with pytest.raises(TraceStreamError, match="chunk_bytes"):
        FileTail(tmp_path / "t", chunk_bytes=0)


def test_file_tail_reads_file_created_later(tmp_path):
    path = tmp_path / "late.jsonl"

    def create():
        time.sleep(0.1)
        path.write_bytes(b"hello world")

    writer = threading.Thread(target=create, daemon=True)
    writer.start()
    tail = FileTail(path, poll_interval_s=0.02, idle_timeout_s=0.3)
    data = b"".join(tail)
    writer.join()
    assert data == b"hello world"
    assert tail.bytes_read == len(data)


def test_file_tail_idle_timeout_zero_reads_existing_bytes(tmp_path):
    path = tmp_path / "static.bin"
    path.write_bytes(b"0123456789")
    tail = FileTail(path, poll_interval_s=0.01, idle_timeout_s=0.0, chunk_bytes=4)
    assert b"".join(tail) == b"0123456789"


# ---------------------------------------------------------------------- #
# StreamingWindowSource == one-shot batch layout
# ---------------------------------------------------------------------- #
def one_shot_batches(columns, registry, policy, emit_empty=True):
    return list(
        iter_column_batches(
            columns,
            registry,
            batch_size=8,
            policy=policy,
            window_duration_us=WINDOW_US,
            events_per_window=100,
            emit_empty=emit_empty,
        )
    )


def streaming_batches(path, recipe):
    data = path.read_bytes()
    rng = np.random.default_rng(5)
    chunks, pos = [], 0
    while pos < len(data):
        size = int(rng.integers(1, 8192))
        chunks.append(data[pos : pos + size])
        pos += size
    source = StreamingWindowSource(iter(chunks), recipe=recipe)
    registry = EventTypeRegistry.with_default_types()
    return (
        list(source.batches(registry, 8, default_window_duration_us=WINDOW_US)),
        registry,
        source,
    )


@pytest.mark.parametrize("fmt", ["jsonl", "binary"])
@pytest.mark.parametrize(
    "policy,emit_empty",
    [
        (WindowPolicy.BY_DURATION, True),
        (WindowPolicy.BY_DURATION, False),
        (WindowPolicy.BY_COUNT, True),
    ],
)
def test_streaming_batches_match_one_shot(trace_files, fmt, policy, emit_empty):
    path = trace_files[fmt]
    reference_registry = EventTypeRegistry.with_default_types()
    expected = one_shot_batches(
        read_trace_columns(path), reference_registry, policy, emit_empty
    )
    recipe = StreamRecipe(
        policy=policy, events_per_window=100, emit_empty=emit_empty
    )
    actual, registry, source = streaming_batches(path, recipe)
    assert registry.names == reference_registry.names
    assert len(actual) == len(expected)
    total_events = sum(int(b.offsets[-1]) for b in expected)
    for got, want in zip(actual, expected):
        np.testing.assert_array_equal(got.codes, want.codes)
        np.testing.assert_array_equal(got.offsets, want.offsets)
        np.testing.assert_array_equal(got.indices, want.indices)
        np.testing.assert_array_equal(got.start_us, want.start_us)
        np.testing.assert_array_equal(got.end_us, want.end_us)
        np.testing.assert_array_equal(got.dims, want.dims)
        assert got.dimension == want.dimension
        np.testing.assert_array_equal(got.window_sizes(), want.window_sizes())
        for k in range(len(want.indices)):
            assert got.window(k).events == want.window(k).events
    # Bounded memory: the buffered high-water mark tracks the batch extent,
    # not the stream length.
    assert 0 < source.stats.peak_buffered_events < total_events


def test_streaming_source_is_single_pass(trace_files):
    source = StreamingWindowSource(iter([trace_files["jsonl"].read_bytes()]))
    registry = EventTypeRegistry()
    list(source.batches(registry, 8))
    with pytest.raises(TraceStreamError, match="already consumed"):
        source.batches(registry, 8)


def test_streaming_source_rejects_unsorted_chunks():
    lines = [
        json.dumps({"t": t, "type": "vsync", "core": 0, "task": "gst", "args": {}})
        for t in (100, 200, 50)
    ]
    chunks = [(line + "\n").encode() for line in lines]
    source = StreamingWindowSource(iter(chunks))
    with pytest.raises(TraceStreamError, match="not sorted"):
        list(source.batches(EventTypeRegistry(), 4))


def test_streaming_empty_stream_raises():
    source = StreamingWindowSource(iter([]))
    with pytest.raises(TraceFormatError, match="empty trace stream"):
        list(source.batches(EventTypeRegistry(), 4))


def test_streaming_source_requires_exactly_one_input():
    with pytest.raises(TraceStreamError, match="exactly one"):
        StreamingWindowSource()


# ---------------------------------------------------------------------- #
# Monitor-level chunked-feed equivalence
# ---------------------------------------------------------------------- #
def monitor_configs():
    return (
        DetectorConfig(k_neighbours=5, lof_threshold=1.1),
        MonitorConfig(reference_duration_us=2_000_000, batch_size=16),
    )


@pytest.mark.parametrize("fmt", ["jsonl", "binary"])
def test_run_streaming_equals_run_on_file(tmp_path, trace_files, fmt):
    path = trace_files[fmt]
    detector_config, monitor_config = monitor_configs()
    out_file = tmp_path / "oneshot.jsonl"
    baseline_monitor = TraceMonitor(
        detector_config, monitor_config, EventTypeRegistry.with_default_types()
    )
    baseline = baseline_monitor.run_on_file(path, output_path=out_file)
    assert baseline.n_anomalous > 0

    data = path.read_bytes()
    rng = np.random.default_rng(9)
    for trial, prefetch in (("random", 0), ("aligned", 2)):
        if trial == "random":
            chunks, pos = [], 0
            while pos < len(data):
                size = int(rng.integers(1, 16384))
                chunks.append(data[pos : pos + size])
                pos += size
        else:
            chunks = [data]
        out_stream = tmp_path / f"stream-{fmt}-{trial}.jsonl"
        stream_monitor = TraceMonitor(
            detector_config, monitor_config, EventTypeRegistry.with_default_types()
        )
        result = stream_monitor.run_streaming(
            StreamingWindowSource(iter(chunks)),
            output_path=out_stream,
            prefetch_batches=prefetch,
        )
        assert_results_identical(baseline, result)
        assert out_file.read_bytes() == out_stream.read_bytes()
        assert baseline_monitor.registry.names == stream_monitor.registry.names


def test_run_streaming_one_byte_chunks_equals_one_shot(tmp_path, small_trace_files):
    path = small_trace_files["jsonl"]
    detector_config = DetectorConfig(k_neighbours=3, lof_threshold=1.1)
    monitor_config = MonitorConfig(reference_duration_us=200_000, batch_size=4)
    baseline = TraceMonitor(
        detector_config, monitor_config, EventTypeRegistry.with_default_types()
    ).run_on_file(path, output_path=tmp_path / "one.jsonl")
    data = path.read_bytes()
    result = TraceMonitor(
        detector_config, monitor_config, EventTypeRegistry.with_default_types()
    ).run_streaming(
        StreamingWindowSource(data[i : i + 1] for i in range(len(data))),
        output_path=tmp_path / "stream.jsonl",
    )
    assert_results_identical(baseline, result)
    assert (tmp_path / "one.jsonl").read_bytes() == (
        tmp_path / "stream.jsonl"
    ).read_bytes()


def test_run_streaming_with_curated_model(tmp_path, trace_files):
    """Pre-fitted model: no reference split, still bit-identical."""
    path = trace_files["binary"]
    registry = EventTypeRegistry.with_default_types()
    reference_columns = read_trace_columns(trace_files["jsonl"])
    monitor = TraceMonitor(
        DetectorConfig(k_neighbours=5, lof_threshold=1.1),
        MonitorConfig(reference_duration_us=2_000_000, batch_size=16),
        registry,
    )
    model = monitor.run_on_columns(reference_columns).model

    detector_config, monitor_config = monitor_configs()
    baseline = TraceMonitor(
        detector_config, monitor_config, EventTypeRegistry.with_default_types()
    ).run_on_file(path, model=model, output_path=tmp_path / "one.jsonl")
    result = TraceMonitor(
        detector_config, monitor_config, EventTypeRegistry.with_default_types()
    ).run_streaming(
        StreamingWindowSource(iter([path.read_bytes()])),
        model=model,
        output_path=tmp_path / "stream.jsonl",
    )
    assert_results_identical(baseline, result)
    assert (tmp_path / "one.jsonl").read_bytes() == (
        tmp_path / "stream.jsonl"
    ).read_bytes()


def test_follow_file_with_concurrent_appender(tmp_path, trace_files):
    """A file appended while being followed scores like its final contents."""
    path = trace_files["jsonl"]
    detector_config, monitor_config = monitor_configs()
    baseline = TraceMonitor(
        detector_config, monitor_config, EventTypeRegistry.with_default_types()
    ).run_on_file(path, output_path=tmp_path / "one.jsonl")

    data = path.read_bytes()
    live = tmp_path / "live.jsonl"
    live.write_bytes(data[: len(data) // 3])

    def append_rest():
        with live.open("ab") as handle:
            for lo in range(len(data) // 3, len(data), 65536):
                time.sleep(0.01)
                handle.write(data[lo : lo + 65536])
                handle.flush()

    appender = threading.Thread(target=append_rest, daemon=True)
    appender.start()
    result = TraceMonitor(
        detector_config, monitor_config, EventTypeRegistry.with_default_types()
    ).follow_file(
        live,
        output_path=tmp_path / "follow.jsonl",
        poll_interval_s=0.01,
        idle_timeout_s=0.5,
    )
    appender.join()
    assert_results_identical(baseline, result)
    assert (tmp_path / "one.jsonl").read_bytes() == (
        tmp_path / "follow.jsonl"
    ).read_bytes()


# ---------------------------------------------------------------------- #
# Fleet: streaming shards over every backend and transport
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def fleet_fixture(tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet")
    registry = EventTypeRegistry.with_default_types()
    reference_events = generated_events(seed=99, duration_s=8.0)
    from repro.trace.stream import windows_by_duration

    reference = list(windows_by_duration(iter(reference_events), WINDOW_US))
    model = ReferenceModel(k_neighbours=5).learn(reference, registry)
    shard_paths = {}
    for i in range(3):
        events = generated_events(seed=30 + i, duration_s=4.0)
        shard_paths[f"dev-{i:02d}"] = write_trace(
            events, root / f"dev-{i:02d}.jsonl", fmt="jsonl"
        )
    return model, shard_paths


def streaming_shards(shard_paths, chunk_size, seed=0):
    shards = {}
    rng = np.random.default_rng(seed)
    for label, path in shard_paths.items():
        data = path.read_bytes()

        def chunks(data=data):
            pos = 0
            while pos < len(data):
                size = int(rng.integers(1, chunk_size))
                yield data[pos : pos + size]
                pos += size

        shards[label] = StreamingWindowSource(chunks())
    return shards


def run_fleet(monitor_config, shards, model, out_dir):
    fleet = ShardedTraceMonitor(
        DetectorConfig(k_neighbours=5, lof_threshold=1.1),
        monitor_config,
        EventTypeRegistry.with_default_types(),
    )
    return fleet.monitor_shards(shards, model, output_dir=out_dir)


def assert_fleet_identical(a, a_dir, b, b_dir):
    assert a.shard_labels == b.shard_labels
    for label in a.shard_labels:
        assert_results_identical(a.shard(label), b.shard(label))
        assert (a_dir / f"{label}.jsonl").read_bytes() == (
            b_dir / f"{label}.jsonl"
        ).read_bytes()
    assert a.report == b.report
    assert a.detector_stats == b.detector_stats


@pytest.fixture(scope="module")
def fleet_baseline(fleet_fixture, tmp_path_factory):
    model, shard_paths = fleet_fixture
    out = tmp_path_factory.mktemp("fleet-baseline")
    columns = {
        label: read_trace_columns(path) for label, path in shard_paths.items()
    }
    result = run_fleet(MonitorConfig(batch_size=16), columns, model, out)
    assert result.n_anomalous > 0
    return result, out


def test_fleet_streaming_serial_equals_columnar(
    tmp_path, fleet_fixture, fleet_baseline
):
    model, shard_paths = fleet_fixture
    baseline, baseline_dir = fleet_baseline
    result = run_fleet(
        MonitorConfig(batch_size=16),
        streaming_shards(shard_paths, 4096, seed=1),
        model,
        tmp_path,
    )
    assert_fleet_identical(baseline, baseline_dir, result, tmp_path)


def test_fleet_streaming_parallel_fork_equals_columnar(
    tmp_path, fleet_fixture, fleet_baseline
):
    if not parallel_backend.fork_transport_available():
        pytest.skip("fork start method unavailable")
    model, shard_paths = fleet_fixture
    baseline, baseline_dir = fleet_baseline
    result = run_fleet(
        MonitorConfig(batch_size=16, fleet_workers=2, stream_queue_depth=2),
        streaming_shards(shard_paths, 8192, seed=2),
        model,
        tmp_path,
    )
    assert_fleet_identical(baseline, baseline_dir, result, tmp_path)


def test_fleet_streaming_parallel_pickle_equals_columnar(
    tmp_path, fleet_fixture, fleet_baseline, monkeypatch
):
    monkeypatch.setattr(parallel_backend, "fork_transport_available", lambda: False)
    model, shard_paths = fleet_fixture
    baseline, baseline_dir = fleet_baseline
    result = run_fleet(
        MonitorConfig(batch_size=16, fleet_workers=2),
        streaming_shards(shard_paths, 16384, seed=3),
        model,
        tmp_path,
    )
    assert_fleet_identical(baseline, baseline_dir, result, tmp_path)


def test_fleet_chunked_window_transport_equals_materialised(
    tmp_path, fleet_fixture, fleet_baseline
):
    """shard_chunk_windows feeds window generators in bounded chunks."""
    if not parallel_backend.fork_transport_available():
        pytest.skip("fork start method unavailable")
    from repro.trace.stream import windows_by_duration
    from repro.trace.reader import read_trace

    model, shard_paths = fleet_fixture
    baseline, baseline_dir = fleet_baseline
    shards = {
        label: windows_by_duration(iter(read_trace(path)), WINDOW_US)
        for label, path in shard_paths.items()
    }
    result = run_fleet(
        MonitorConfig(
            batch_size=16,
            fleet_workers=2,
            shard_chunk_windows=5,
            stream_queue_depth=2,
        ),
        shards,
        model,
        tmp_path,
    )
    assert_fleet_identical(baseline, baseline_dir, result, tmp_path)


def test_fleet_streaming_feeder_error_names_shard(tmp_path, fleet_fixture):
    model, _ = fleet_fixture
    bad = {
        "dev-bad": StreamingWindowSource(
            iter([b'{"t": 5, "type": "x", "core"'])  # cut mid-line
        )
    }
    from repro.errors import FleetError

    with pytest.raises(FleetError, match="dev-bad"):
        run_fleet(
            MonitorConfig(batch_size=16, fleet_workers=2), bad, model, tmp_path
        )


def test_fleet_no_leaked_feeder_threads(tmp_path, fleet_fixture, fleet_baseline):
    model, shard_paths = fleet_fixture
    run_fleet(
        MonitorConfig(batch_size=16, fleet_workers=2),
        streaming_shards(shard_paths, 8192, seed=4),
        model,
        tmp_path,
    )
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        feeders = [
            t
            for t in threading.enumerate()
            if t.name.startswith("repro-shard-feed-")
        ]
        if not feeders:
            return
        time.sleep(0.02)
    raise AssertionError(f"leaked feeder threads: {feeders}")


# ---------------------------------------------------------------------- #
# Knob validation: config layer and CLI layer
# ---------------------------------------------------------------------- #
def test_monitor_config_validates_streaming_knobs():
    with pytest.raises(ConfigurationError, match="stream_queue_depth"):
        MonitorConfig(stream_queue_depth=0)
    with pytest.raises(ConfigurationError, match="shard_chunk_windows"):
        MonitorConfig(shard_chunk_windows=0)
    MonitorConfig(stream_queue_depth=1, shard_chunk_windows=None)  # valid


def test_negative_prefetch_rejected_at_monitor_layer(trace_files):
    monitor = TraceMonitor(
        DetectorConfig(k_neighbours=5),
        MonitorConfig(reference_duration_us=2_000_000),
        EventTypeRegistry.with_default_types(),
    )
    with pytest.raises(ConfigurationError, match="prefetch_batches must be >= 0"):
        monitor.run_on_file(trace_files["jsonl"], prefetch_batches=-1)
    with pytest.raises(ConfigurationError, match="prefetch_batches must be >= 0"):
        monitor.run_streaming(
            StreamingWindowSource(iter([b"x"])), prefetch_batches=-2
        )


@pytest.mark.parametrize(
    "argv",
    [
        ["monitor", "t.jsonl", "--prefetch", "-1"],
        ["monitor", "t.jsonl", "--batch-size", "0"],
        ["monitor", "t.jsonl", "--poll-interval", "0"],
        ["monitor", "t.jsonl", "--idle-timeout", "-0.5"],
        ["fleet", "t.jsonl", "--workers", "0"],
        ["fleet", "t.jsonl", "--batch-size", "-3"],
        ["fleet", "t.jsonl", "--queue-depth", "0"],
        ["fleet", "t.jsonl", "--chunk-windows", "0"],
        ["monitor", "t.jsonl", "--prefetch", "lots"],
    ],
)
def test_cli_rejects_invalid_knob_values(capsys, argv):
    with pytest.raises(SystemExit) as err:
        build_parser().parse_args(argv)
    assert err.value.code == 2
    captured = capsys.readouterr()
    assert "must be" in captured.err or "expected" in captured.err


def test_cli_follow_requires_columnar_ingest(tmp_path, capsys, trace_files):
    code = cli_main(
        [
            "monitor",
            str(trace_files["jsonl"]),
            "--follow",
            "--ingest",
            "objects",
            "--idle-timeout",
            "0",
        ]
    )
    assert code == 2
    assert "columnar" in capsys.readouterr().err


def test_cli_monitor_follow_matches_one_shot(tmp_path, capsys, trace_files):
    path = trace_files["jsonl"]
    base_args = [
        "--json",
        "monitor",
        str(path),
        "--reference-s",
        "2",
        "--k",
        "5",
    ]
    assert cli_main(base_args + ["--output", str(tmp_path / "one.jsonl")]) == 0
    one_shot_payload = json.loads(capsys.readouterr().out)
    assert (
        cli_main(
            base_args
            + [
                "--output",
                str(tmp_path / "follow.jsonl"),
                "--follow",
                "--poll-interval",
                "0.01",
                "--idle-timeout",
                "0.2",
            ]
        )
        == 0
    )
    follow_payload = json.loads(capsys.readouterr().out)
    assert one_shot_payload == follow_payload
    assert (tmp_path / "one.jsonl").read_bytes() == (
        tmp_path / "follow.jsonl"
    ).read_bytes()
