"""End-to-end tests of the ``repro-trace`` command line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli.main import build_parser, main
from repro.trace.event import TraceEvent
from repro.trace.generator import PeriodicTraceGenerator
from repro.trace.writer import write_trace


@pytest.fixture()
def trace_file(tmp_path, normal_mix, anomaly_mix):
    """A small synthetic trace written to disk for the CLI to consume."""
    generator = PeriodicTraceGenerator(
        normal_mix,
        anomaly_mix,
        anomaly_intervals=[(8.0, 10.0)],
        rate_per_s=2_000,
        seed=13,
    )
    path = tmp_path / "trace.jsonl"
    write_trace(generator.events(16.0), path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for command in (
            "simulate", "stats", "learn", "monitor", "fleet", "experiment", "sweep"
        ):
            assert parser.parse_args([command] + (
                ["--output", "x"] if command == "simulate" else
                ["t"] if command in {"stats", "learn", "monitor", "fleet"} else []
            ) + (["--model", "m"] if command == "learn" else [])).command == command


class TestStats:
    def test_stats_text_output(self, trace_file, capsys):
        assert main(["stats", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "events" in out
        assert "event rate" in out

    def test_stats_json_output(self, trace_file, capsys):
        assert main(["--json", "stats", str(trace_file)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_events"] > 0

    def test_missing_trace_reports_error(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "missing.jsonl")]) == 2
        assert "error" in capsys.readouterr().err


class TestLearnAndMonitor:
    def test_learn_then_monitor_roundtrip(self, trace_file, tmp_path, capsys):
        model_path = tmp_path / "model.npz"
        assert (
            main(
                [
                    "learn",
                    str(trace_file),
                    "--reference-s",
                    "4",
                    "--k",
                    "10",
                    "--model",
                    str(model_path),
                ]
            )
            == 0
        )
        assert model_path.exists()
        capsys.readouterr()

        recorded = tmp_path / "recorded.jsonl"
        assert (
            main(
                [
                    "--json",
                    "monitor",
                    str(trace_file),
                    "--model",
                    str(model_path),
                    "--k",
                    "10",
                    "--alpha",
                    "1.3",
                    "--output",
                    str(recorded),
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["windows"] > 0
        assert payload["reduction_factor"] > 1.0

    def test_monitor_without_model_learns_from_prefix(self, trace_file, capsys):
        assert (
            main(
                [
                    "--json",
                    "monitor",
                    str(trace_file),
                    "--reference-s",
                    "4",
                    "--k",
                    "10",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["anomalous"] >= 0


class TestFleet:
    @pytest.fixture()
    def trace_files(self, tmp_path, normal_mix, anomaly_mix):
        paths = []
        for position in range(3):
            generator = PeriodicTraceGenerator(
                normal_mix,
                anomaly_mix,
                anomaly_intervals=[(6.0 + position, 8.0 + position)],
                rate_per_s=2_000,
                seed=31 + position,
            )
            path = tmp_path / f"stream{position}.jsonl"
            write_trace(generator.events(14.0), path)
            paths.append(path)
        return paths

    def test_fleet_learns_from_first_trace_and_monitors_all(
        self, trace_files, tmp_path, capsys
    ):
        output_dir = tmp_path / "recorded"
        code = main(
            [
                "--json",
                "fleet",
                *[str(path) for path in trace_files],
                "--reference-s",
                "4",
                "--k",
                "10",
                "--batch-size",
                "32",
                "--output-dir",
                str(output_dir),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fleet"]["n_shards"] == 3
        assert payload["fleet"]["total_windows"] > 0
        assert set(payload["shards"]) == {"stream0", "stream1", "stream2"}
        for label in payload["shards"]:
            assert (output_dir / f"{label}.jsonl").exists()

    def test_fleet_text_output(self, trace_files, capsys):
        assert (
            main(["fleet", *[str(p) for p in trace_files], "--reference-s", "4", "--k", "10"])
            == 0
        )
        out = capsys.readouterr().out
        assert "fleet: 3 shards" in out
        assert "stream0:" in out

    def test_duplicate_stems_get_unique_labels(self, tmp_path, normal_mix, capsys):
        from repro.trace.generator import SyntheticTraceGenerator

        for sub in ("a", "b"):
            directory = tmp_path / sub
            directory.mkdir()
            generator = SyntheticTraceGenerator(normal_mix, rate_per_s=2_000, seed=5)
            write_trace(generator.events(10.0), directory / "trace.jsonl")
        code = main(
            [
                "--json",
                "fleet",
                str(tmp_path / "a" / "trace.jsonl"),
                str(tmp_path / "b" / "trace.jsonl"),
                "--reference-s",
                "4",
                "--k",
                "10",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["shards"]) == {"trace", "trace-1"}

    def test_dedup_suffix_colliding_with_real_stem(self):
        from pathlib import Path

        from repro.cli.main import _shard_labels

        labels = _shard_labels(
            [Path("a/trace.jsonl"), Path("b/trace.jsonl"), Path("c/trace-1.jsonl")]
        )
        # Every trace must keep its own shard: no silent drop when a dedup
        # suffix collides with a real file stem.
        assert len(set(labels)) == 3
        assert labels == ["trace", "trace-1", "trace-1-1"]


class TestSimulate:
    def test_simulate_writes_trace_and_qos_log(self, tmp_path, capsys):
        output = tmp_path / "sim.jsonl"
        qos = tmp_path / "qos.json"
        code = main(
            [
                "--json",
                "simulate",
                "--duration",
                "120",
                "--reference-s",
                "30",
                "--output",
                str(output),
                "--qos",
                str(qos),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_events"] > 0
        assert output.exists()
        qos_payload = json.loads(qos.read_text())
        assert "perturbations" in qos_payload and "errors" in qos_payload


class TestIngestFlags:
    """The columnar ingest plane is the CLI default and bit-identical."""

    def _monitor(self, trace_file, capsys, *extra):
        args = [
            "--json", "monitor", str(trace_file), "--reference-s", "4",
            "--k", "10", *extra,
        ]
        assert main(args) == 0
        return json.loads(capsys.readouterr().out)

    def test_monitor_ingest_modes_identical(self, trace_file, tmp_path, capsys):
        out_col = tmp_path / "col.jsonl"
        out_obj = tmp_path / "obj.jsonl"
        payload_col = self._monitor(
            trace_file, capsys, "--output", str(out_col)
        )
        payload_obj = self._monitor(
            trace_file, capsys, "--ingest", "objects", "--output", str(out_obj)
        )
        assert payload_col == payload_obj
        assert out_col.read_bytes() == out_obj.read_bytes()

    def test_monitor_prefetch_zero_identical(self, trace_file, capsys):
        with_prefetch = self._monitor(trace_file, capsys, "--prefetch", "4")
        without_prefetch = self._monitor(trace_file, capsys, "--prefetch", "0")
        assert with_prefetch == without_prefetch

    def test_monitor_binary_recording_format(self, trace_file, tmp_path, capsys):
        from repro.trace.reader import read_trace

        recorded = tmp_path / "recorded.bin"
        payload = self._monitor(
            trace_file, capsys,
            "--recording-format", "binary", "--output", str(recorded),
        )
        assert payload["recorded_bytes"] > 0
        assert recorded.read_bytes()[:4] == b"RTRC"
        assert len(read_trace(recorded)) > 0

    def test_monitor_empty_file_reports_clear_error(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_bytes(b"")
        assert main(["monitor", str(empty)]) == 2
        err = capsys.readouterr().err
        assert "empty trace file" in err and str(empty) in err

    def test_monitor_knn_backends_identical(self, trace_file, tmp_path, capsys):
        # Any --knn-backend choice must change only the speed profile: the
        # JSON report and recorded bytes are bit-identical across backends.
        outputs = {}
        for backend in ("brute", "kdtree", "grid", "balltree", "auto"):
            recorded = tmp_path / f"{backend}.jsonl"
            payload = self._monitor(
                trace_file, capsys,
                "--knn-backend", backend, "--output", str(recorded),
            )
            outputs[backend] = (payload, recorded.read_bytes())
        default = self._monitor(trace_file, capsys)
        for backend, (payload, recorded_bytes) in outputs.items():
            assert payload == outputs["brute"][0], backend
            assert recorded_bytes == outputs["brute"][1], backend
        assert default == outputs["brute"][0]

    def test_learn_with_knn_backend_then_monitor(self, trace_file, tmp_path, capsys):
        model_path = tmp_path / "model.npz"
        assert main([
            "learn", str(trace_file), "--model", str(model_path),
            "--k", "10", "--knn-backend", "balltree",
        ]) == 0
        capsys.readouterr()
        baseline = self._monitor(trace_file, capsys, "--model", str(model_path))
        reindexed = self._monitor(
            trace_file, capsys,
            "--model", str(model_path), "--knn-backend", "grid",
        )
        assert reindexed == baseline

    def test_invalid_knn_backend_rejected(self, trace_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["monitor", str(trace_file), "--knn-backend", "octree"]
            )

    def test_fleet_knn_backends_identical(
        self, tmp_path, normal_mix, anomaly_mix, capsys
    ):
        paths = []
        for position in range(2):
            generator = PeriodicTraceGenerator(
                normal_mix,
                anomaly_mix,
                anomaly_intervals=[(6.0, 8.0)],
                rate_per_s=2_000,
                seed=71 + position,
            )
            path = tmp_path / f"shard{position}.jsonl"
            write_trace(generator.events(12.0), path)
            paths.append(str(path))
        base = ["--json", "fleet", *paths, "--reference-s", "4", "--k", "10"]
        payloads = {}
        for backend in ("brute", "balltree"):
            output_dir = tmp_path / backend
            assert main(
                base + ["--knn-backend", backend, "--output-dir", str(output_dir)]
            ) == 0
            payloads[backend] = json.loads(capsys.readouterr().out)
            for shard in ("shard0", "shard1"):
                bytes_here = (output_dir / f"{shard}.jsonl").read_bytes()
                if backend == "brute":
                    continue
                assert bytes_here == (tmp_path / "brute" / f"{shard}.jsonl").read_bytes()
        assert payloads["balltree"] == payloads["brute"]

    def test_fleet_ingest_modes_identical(
        self, tmp_path, normal_mix, anomaly_mix, capsys
    ):
        paths = []
        for position in range(2):
            generator = PeriodicTraceGenerator(
                normal_mix,
                anomaly_mix,
                anomaly_intervals=[(6.0, 8.0)],
                rate_per_s=2_000,
                seed=61 + position,
            )
            path = tmp_path / f"shard{position}.jsonl"
            write_trace(generator.events(12.0), path)
            paths.append(str(path))
        dir_col = tmp_path / "col"
        dir_obj = tmp_path / "obj"
        base = ["--json", "fleet", *paths, "--reference-s", "4", "--k", "10"]
        assert main(base + ["--output-dir", str(dir_col)]) == 0
        payload_col = json.loads(capsys.readouterr().out)
        assert main(
            base + ["--ingest", "objects", "--output-dir", str(dir_obj)]
        ) == 0
        payload_obj = json.loads(capsys.readouterr().out)
        assert payload_col == payload_obj
        for shard in ("shard0", "shard1"):
            assert (dir_col / f"{shard}.jsonl").read_bytes() == (
                dir_obj / f"{shard}.jsonl"
            ).read_bytes()
