"""End-to-end tests of the ``repro-trace`` command line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli.main import build_parser, main
from repro.trace.event import TraceEvent
from repro.trace.generator import PeriodicTraceGenerator
from repro.trace.writer import write_trace


@pytest.fixture()
def trace_file(tmp_path, normal_mix, anomaly_mix):
    """A small synthetic trace written to disk for the CLI to consume."""
    generator = PeriodicTraceGenerator(
        normal_mix,
        anomaly_mix,
        anomaly_intervals=[(8.0, 10.0)],
        rate_per_s=2_000,
        seed=13,
    )
    path = tmp_path / "trace.jsonl"
    write_trace(generator.events(16.0), path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for command in ("simulate", "stats", "learn", "monitor", "experiment", "sweep"):
            assert parser.parse_args([command] + (
                ["--output", "x"] if command == "simulate" else
                ["t"] if command in {"stats", "learn", "monitor"} else []
            ) + (["--model", "m"] if command == "learn" else [])).command == command


class TestStats:
    def test_stats_text_output(self, trace_file, capsys):
        assert main(["stats", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "events" in out
        assert "event rate" in out

    def test_stats_json_output(self, trace_file, capsys):
        assert main(["--json", "stats", str(trace_file)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_events"] > 0

    def test_missing_trace_reports_error(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "missing.jsonl")]) == 2
        assert "error" in capsys.readouterr().err


class TestLearnAndMonitor:
    def test_learn_then_monitor_roundtrip(self, trace_file, tmp_path, capsys):
        model_path = tmp_path / "model.npz"
        assert (
            main(
                [
                    "learn",
                    str(trace_file),
                    "--reference-s",
                    "4",
                    "--k",
                    "10",
                    "--model",
                    str(model_path),
                ]
            )
            == 0
        )
        assert model_path.exists()
        capsys.readouterr()

        recorded = tmp_path / "recorded.jsonl"
        assert (
            main(
                [
                    "--json",
                    "monitor",
                    str(trace_file),
                    "--model",
                    str(model_path),
                    "--k",
                    "10",
                    "--alpha",
                    "1.3",
                    "--output",
                    str(recorded),
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["windows"] > 0
        assert payload["reduction_factor"] > 1.0

    def test_monitor_without_model_learns_from_prefix(self, trace_file, capsys):
        assert (
            main(
                [
                    "--json",
                    "monitor",
                    str(trace_file),
                    "--reference-s",
                    "4",
                    "--k",
                    "10",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["anomalous"] >= 0


class TestSimulate:
    def test_simulate_writes_trace_and_qos_log(self, tmp_path, capsys):
        output = tmp_path / "sim.jsonl"
        qos = tmp_path / "qos.json"
        code = main(
            [
                "--json",
                "simulate",
                "--duration",
                "120",
                "--reference-s",
                "30",
                "--output",
                str(output),
                "--qos",
                str(qos),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_events"] > 0
        assert output.exists()
        qos_payload = json.loads(qos.read_text())
        assert "perturbations" in qos_payload and "errors" in qos_payload
