"""Integration tests for the experiment drivers, sweeps and reports."""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.labeling import WindowLabel, label_windows
from repro.config import DetectorConfig, MonitorConfig
from repro.errors import ExperimentError
from repro.experiments.endurance import run_experiment_on_trace
from repro.experiments.report import (
    ascii_line_plot,
    format_csv,
    format_table,
    render_alpha_sweep,
    render_headline,
    render_sweep,
)
from repro.experiments.sweep import (
    alpha_sweep,
    k_sweep,
    kl_gate_sweep,
    reference_length_sweep,
    window_size_sweep,
)


class TestEnduranceExperiment:
    def test_detection_quality_on_mini_run(self, mini_experiment):
        metrics = mini_experiment.metrics
        assert metrics.precision > 0.5
        assert metrics.recall > 0.5
        assert mini_experiment.monitor_result.report.reduction_factor > 2.0

    def test_summary_fields(self, mini_experiment):
        summary = mini_experiment.summary()
        for key in (
            "precision",
            "recall",
            "reduction_factor",
            "n_events",
            "n_qos_errors",
            "delta_start_s",
            "alpha",
        ):
            assert key in summary
        assert summary["alpha"] == mini_experiment.alpha

    def test_ground_truth_delays_positive(self, mini_experiment):
        assert mini_experiment.ground_truth.delta_start_us > 0.0

    def test_metrics_at_matches_recorded_run_at_same_alpha(self, mini_experiment):
        at_alpha = mini_experiment.metrics_at(mini_experiment.alpha)
        assert at_alpha.precision == pytest.approx(mini_experiment.metrics.precision)
        assert at_alpha.recall == pytest.approx(mini_experiment.metrics.recall)
        assert at_alpha.recorded_bytes == mini_experiment.metrics.recorded_bytes

    def test_metrics_at_invalid_alpha(self, mini_experiment):
        with pytest.raises(ExperimentError):
            mini_experiment.metrics_at(0.0)

    def test_labels_cover_every_monitored_window(self, mini_experiment):
        labels = label_windows(mini_experiment.decisions, mini_experiment.ground_truth)
        assert len(labels) == mini_experiment.monitor_result.n_windows
        assert WindowLabel.TRUE_POSITIVE in labels
        assert WindowLabel.TRUE_NEGATIVE in labels

    def test_rerun_on_trace_with_other_detector(self, mini_trace, mini_config):
        result = run_experiment_on_trace(
            mini_trace,
            mini_config,
            detector_config=DetectorConfig(k_neighbours=10, lof_threshold=2.0),
        )
        assert result.monitor_result.n_windows > 0
        assert result.config is mini_config


class TestSweeps:
    def test_alpha_sweep_monotone_trends(self, mini_experiment):
        points = alpha_sweep(mini_experiment, [1.0, 1.2, 1.5, 2.0, 3.0])
        assert len(points) == 5
        flagged = [p.n_flagged for p in points]
        assert flagged == sorted(flagged, reverse=True)
        recalls = [p.recall for p in points]
        assert recalls == sorted(recalls, reverse=True)
        reductions = [p.reduction_factor for p in points]
        assert reductions == sorted(reductions)

    def test_alpha_sweep_requires_values(self, mini_experiment):
        with pytest.raises(ExperimentError):
            alpha_sweep(mini_experiment, [])

    def test_window_size_sweep_reuses_trace(self, mini_trace, mini_config):
        points = window_size_sweep(mini_config, [20_000, 80_000], trace=mini_trace)
        assert [p.value for p in points] == [20_000, 80_000]
        assert all(0.0 <= p.precision <= 1.0 for p in points)

    def test_k_sweep(self, mini_trace, mini_config):
        points = k_sweep(mini_config, [5, 25], trace=mini_trace)
        assert [p.value for p in points] == [5, 25]
        assert all(p.reduction_factor > 1.0 for p in points)

    def test_kl_gate_sweep_includes_disabled_gate(self, mini_trace, mini_config):
        points = kl_gate_sweep(mini_config, [0.05], trace=mini_trace)
        assert points[-1].parameter == "kl_gate_disabled"
        gated, ungated = points[0], points[-1]
        # disabling the gate can only increase the number of LOF computations
        assert ungated.lof_computation_rate >= gated.lof_computation_rate

    def test_reference_length_sweep_validates_overlap(self, mini_trace, mini_config):
        with pytest.raises(ExperimentError):
            reference_length_sweep(mini_config, [1_000.0], trace=mini_trace)
        points = reference_length_sweep(mini_config, [30.0, 40.0], trace=mini_trace)
        assert [p.value for p in points] == [30.0, 40.0]

    def test_empty_sweeps_rejected(self, mini_config, mini_trace):
        with pytest.raises(ExperimentError):
            window_size_sweep(mini_config, [], trace=mini_trace)
        with pytest.raises(ExperimentError):
            k_sweep(mini_config, [], trace=mini_trace)
        with pytest.raises(ExperimentError):
            reference_length_sweep(mini_config, [], trace=mini_trace)
        with pytest.raises(ExperimentError):
            kl_gate_sweep(mini_config, [], include_disabled_gate=False, trace=mini_trace)


class TestReports:
    def test_format_table_alignment_and_validation(self):
        text = format_table(["name", "value"], [["alpha", 1.23456], ["windows", 42]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in text and "42" in text
        with pytest.raises(ExperimentError):
            format_table(["a"], [["too", "many"]])

    def test_format_csv(self):
        text = format_csv(["a", "b"], [[1, 2.5], [3, float("inf")]])
        assert text.splitlines()[0] == "a,b"
        assert "inf" in text

    def test_ascii_line_plot_contains_markers(self):
        plot = ascii_line_plot([1.0, 2.0, 3.0], {"precision": [0.1, 0.5, 0.9]})
        assert "*" in plot
        assert "precision" in plot
        with pytest.raises(ExperimentError):
            ascii_line_plot([], {})
        with pytest.raises(ExperimentError):
            ascii_line_plot([1.0], {"s": [0.1, 0.2]})

    def test_render_alpha_sweep_and_headline(self, mini_experiment):
        points = alpha_sweep(mini_experiment, [1.0, 1.5, 2.0])
        figure = render_alpha_sweep(points)
        assert "Figure 1" in figure
        assert "precision" in figure
        headline = render_headline(mini_experiment.summary())
        assert "78.9" in headline  # the paper's number is always shown for comparison
        assert "reduction factor" in headline

    def test_render_sweep(self, mini_trace, mini_config):
        points = k_sweep(mini_config, [10], trace=mini_trace)
        text = render_sweep("Ablation B", points)
        assert "Ablation B" in text
        assert "k_neighbours" in text
        with pytest.raises(ExperimentError):
            render_sweep("empty", [])
