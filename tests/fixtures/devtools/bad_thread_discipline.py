# Bad thread/resource-discipline patterns, one per TD rule.
# repro: ignore-file[DC601,DC602,TY701,FS101]
import threading


def bare_acquire(lock):
    lock.acquire()  # expect: TD201
    return lock


def blocking_get(work_queue):
    return work_queue.get()  # expect: TD202


def blocking_put(result_channel, item):
    result_channel.put(item)  # expect: TD202


def unjoined_thread():
    worker = threading.Thread(target=print)  # expect: TD203
    worker.start()


def leaked_executor(items):
    from concurrent.futures import ThreadPoolExecutor

    pool = ThreadPoolExecutor(max_workers=2)  # expect: TD204
    return [pool.submit(len, item) for item in items]


def leaked_handle(path):
    handle = open(path)  # expect: TD205
    return handle.read()


class FlushyWriter:
    def __init__(self, handle):
        self._handle = handle

    def flush(self):
        self._handle.flush()

    def close(self):
        self.flush()  # expect: TD206
        self._handle.close()


def cleanup_loop(resources):
    try:
        return len(resources)
    finally:
        for resource in resources:
            resource.close()  # expect: TD207
