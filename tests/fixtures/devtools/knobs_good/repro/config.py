# Config class validating every CLI-wired field.
# repro: ignore-file[DC601,DC602,TY701]
from dataclasses import dataclass


@dataclass(frozen=True)
class ProbeConfig:
    depth: int = 4
    width: int = 8

    def __post_init__(self):
        if self.depth <= 0:
            raise ValueError("depth must be positive")
        if self.width <= 0:
            raise ValueError("width must be positive")
