# Sanctioned direction: analysis importing trace and errors.
# repro: ignore-file[DC601,DC602,TY701]
from repro.errors import ReproError
from ..trace import window

_USES = (ReproError, window)
