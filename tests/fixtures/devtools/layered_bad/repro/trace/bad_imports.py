# Layer violations: trace importing analysis (DAG inversion) and the CLI.
# repro: ignore-file[DC601,DC602,TY701]
from repro.analysis import lof  # expect: LY401
from ..analysis import model  # expect: LY401
import repro.cli.main  # expect: LY402

_USES = (lof, model, repro)
