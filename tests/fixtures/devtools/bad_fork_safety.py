# Bad fork-safety patterns.  Never imported; parsed by the checker tests.
# repro: ignore-file[DC601,DC602,TY701,TD203,TD204]
import threading
from concurrent.futures import ProcessPoolExecutor

_IMPORT_TIME_THREAD = threading.Thread(target=print)  # expect: FS101

_LOCK = threading.Lock()
_LOCK.acquire()  # expect: FS101, TD201

_POOL = ProcessPoolExecutor(max_workers=2)  # expect: FS101

_STAGING = None  # expect: FS102


def _rebind_staging(value):
    global _STAGING
    _STAGING = value


def _start_feeder_too_early(chunks):
    feeder = threading.Thread(target=print, args=(chunks,))
    with ProcessPoolExecutor(max_workers=2) as pool:
        feeder.start()  # expect: FS103
        future = pool.submit(len, chunks)
    return future
