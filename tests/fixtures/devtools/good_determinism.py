# Sanctioned counterparts: seeded generators and sorted set iteration.
# repro: ignore-file[DC601,DC602,TY701]
import random

import numpy as np


def seeded_stdlib(seed):
    return random.Random(seed).random()


def seeded_numpy(seed):
    return np.random.default_rng(seed).random(4)


def sorted_iteration(names):
    ordered = []
    for name in sorted(set(names)):
        ordered.append(name)
    return ordered


def sorted_join(names):
    return ",".join(sorted({name.strip() for name in names}))
