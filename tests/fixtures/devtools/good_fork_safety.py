# Sanctioned counterparts of the bad_fork_safety patterns.
# repro: ignore-file[DC601,DC602,TY701]
import threading
from concurrent.futures import ProcessPoolExecutor

_STAGING = None  # repro: fork-shared

_LOCK = threading.Lock()


def _rebind_staging(value):
    global _STAGING
    _STAGING = value


def _guarded_section():
    with _LOCK:
        return _STAGING


def _start_feeder_after_submits(chunks):
    feeder = threading.Thread(target=print, args=(chunks,))
    with ProcessPoolExecutor(max_workers=2) as pool:
        future = pool.submit(len, chunks)
        feeder.start()
    try:
        return future
    finally:
        feeder.join()
