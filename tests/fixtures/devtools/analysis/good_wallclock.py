# Monotonic timing for metrics is fine on scoring paths.
# repro: ignore-file[DC601,DC602,TY701]
import time


def score_with_duration(value):
    started = time.monotonic()
    return value, time.monotonic() - started
