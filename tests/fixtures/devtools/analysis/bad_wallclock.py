# Wall-clock read on a scoring path (this file's path contains /analysis/).
# repro: ignore-file[DC601,DC602,TY701]
import time


def score_with_timestamp(value):
    return value, time.time()  # expect: DT303
