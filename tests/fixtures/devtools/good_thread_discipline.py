# Sanctioned counterparts of the bad_thread_discipline patterns.
# repro: ignore-file[DC601,DC602,TY701]
import threading


def with_lock(lock):
    with lock:
        return True


def acquire_release_in_finally(lock):
    lock.acquire()
    try:
        return True
    finally:
        lock.release()


def polling_get(work_queue):
    return work_queue.get(timeout=0.1)


def nonblocking_put(result_channel, item):
    result_channel.put(item, block=False)


class BoundedHandoff:
    """Sanctioned wrapper: bare get/put are allowed inside *Handoff classes."""

    def __init__(self, queue):
        self._queue = queue

    def pull(self):
        return self._queue.get(timeout=0.1)


def joined_thread():
    worker = threading.Thread(target=print)
    worker.start()
    try:
        return True
    finally:
        worker.join()


def managed_executor(items):
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=2) as pool:
        return [pool.submit(len, item) for item in items]


def managed_handle(path):
    with open(path) as handle:
        return handle.read()


class SafeWriter:
    def __init__(self, path):
        self._handle = open(path, "w")

    def flush(self):
        self._handle.flush()

    def close(self):
        try:
            self.flush()
        finally:
            self._handle.close()


def guarded_cleanup_loop(resources):
    try:
        return len(resources)
    finally:
        for resource in resources:
            try:
                resource.close()
            except OSError:
                pass
