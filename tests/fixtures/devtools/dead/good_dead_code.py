# Live code: the import is used here, the helper is used by consumer.py
# (loaded as a usage-only root, the way tests keep src symbols alive).
# repro: ignore-file[TY701]
import os


def live_helper():
    return os.getpid()
