# Usage-only root: references live_helper so it is not reported dead.
from good_dead_code import live_helper

print(live_helper())
