# Dead code: an unused import and an unreferenced top-level helper.
# repro: ignore-file[TY701]
import json  # expect: DC602
import os


def orphan_helper():  # expect: DC601
    return os.getpid()
