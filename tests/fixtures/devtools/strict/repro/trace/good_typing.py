# Strict-layer module with complete annotations.
# repro: ignore-file[DC601,DC602]


def fully_annotated(count: int, scale: float) -> float:
    return count * scale
