# Strict-layer module (repro.trace.*) with incomplete annotations.
# repro: ignore-file[DC601,DC602]


def half_annotated(count: int, scale):  # expect: TY701
    return count * scale
