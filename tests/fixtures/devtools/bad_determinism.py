# Bad determinism patterns: global RNG draws and set-order leakage.
# repro: ignore-file[DC601,DC602,TY701]
import random

import numpy as np


def unseeded_stdlib():
    return random.random()  # expect: DT301


def unseeded_numpy():
    return np.random.rand(4)  # expect: DT301


def set_iteration(names):
    ordered = []
    for name in set(names):  # expect: DT302
        ordered.append(name)
    return ordered


def set_listing(names):
    return list(set(names))  # expect: DT302


def set_join(names):
    return ",".join({name.strip() for name in names})  # expect: DT302
