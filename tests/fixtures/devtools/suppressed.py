# Violations silenced by line pragmas — the corpus expects no findings.
# repro: ignore-file[DC601,DC602,TY701]
import random


def silenced_rng():
    return random.random()  # repro: ignore[DT301]


def silenced_everything(lock):
    lock.acquire()  # repro: ignore
    return lock
