# CLI wiring both ProbeConfig fields; 'width' has no validation.
# repro: ignore-file[DC601,DC602,TY701]
from ..config import ProbeConfig


def build(args):
    return ProbeConfig(depth=args.depth, width=args.width)
