# Config class whose CLI-wired field lacks __post_init__ validation.
# repro: ignore-file[DC601,DC602,TY701]
from dataclasses import dataclass


@dataclass(frozen=True)
class ProbeConfig:  # expect: CK501
    depth: int = 4
    width: int = 8

    def __post_init__(self):
        if self.depth <= 0:
            raise ValueError("depth must be positive")
        # self.width is CLI-wired in cli/main.py but never validated here.
