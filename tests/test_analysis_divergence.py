"""Unit and property tests for divergences between pmfs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.divergence import (
    hellinger_distance,
    js_divergence,
    kl_divergence,
    symmetric_kl_divergence,
    total_variation_distance,
)
from repro.analysis.pmf import pmf_from_counts
from repro.errors import ModelError
from repro.trace.event import EventTypeRegistry


def distributions():
    return st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False), min_size=4, max_size=4
    ).filter(lambda values: sum(values) > 0)


class TestKl:
    def test_zero_for_identical_distributions(self):
        p = [0.25, 0.25, 0.5]
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_different_distributions(self):
        assert kl_divergence([0.9, 0.1], [0.1, 0.9]) > 0.5

    def test_asymmetric(self):
        p, q = [0.9, 0.1], [0.5, 0.5]
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_accepts_pmf_objects(self):
        registry = EventTypeRegistry(["a", "b"])
        p = pmf_from_counts({"a": 9, "b": 1}, registry)
        q = pmf_from_counts({"a": 1, "b": 9}, registry)
        assert kl_divergence(p, q) > 0.0

    def test_smoothing_keeps_result_finite_with_disjoint_support(self):
        value = kl_divergence([1.0, 0.0], [0.0, 1.0], smoothing=1e-6)
        assert np.isfinite(value)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ModelError):
            kl_divergence([0.5, 0.5], [1.0])

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ModelError):
            kl_divergence([-0.1, 1.1], [0.5, 0.5])
        with pytest.raises(ModelError):
            kl_divergence([[0.5, 0.5]], [0.5, 0.5])
        with pytest.raises(ModelError):
            kl_divergence([0.0, 0.0], [0.5, 0.5], smoothing=0.0)

    @settings(max_examples=60, deadline=None)
    @given(p=distributions(), q=distributions())
    def test_non_negative_property(self, p, q):
        assert kl_divergence(p, q) >= -1e-9


class TestSymmetricAndJs:
    @settings(max_examples=60, deadline=None)
    @given(p=distributions(), q=distributions())
    def test_symmetry_property(self, p, q):
        assert symmetric_kl_divergence(p, q) == pytest.approx(symmetric_kl_divergence(q, p))
        assert js_divergence(p, q) == pytest.approx(js_divergence(q, p))

    @settings(max_examples=60, deadline=None)
    @given(p=distributions())
    def test_self_divergence_is_zero_property(self, p):
        assert symmetric_kl_divergence(p, p) == pytest.approx(0.0, abs=1e-6)
        assert js_divergence(p, p) == pytest.approx(0.0, abs=1e-6)

    @settings(max_examples=60, deadline=None)
    @given(p=distributions(), q=distributions())
    def test_js_bounded_by_log2_property(self, p, q):
        assert 0.0 - 1e-9 <= js_divergence(p, q) <= np.log(2) + 1e-9


class TestOtherDistances:
    @settings(max_examples=60, deadline=None)
    @given(p=distributions(), q=distributions())
    def test_bounds_property(self, p, q):
        assert 0.0 - 1e-9 <= total_variation_distance(p, q) <= 1.0 + 1e-9
        assert 0.0 - 1e-9 <= hellinger_distance(p, q) <= 1.0 + 1e-9

    def test_total_variation_known_value(self):
        assert total_variation_distance([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0, abs=1e-3)

    def test_hellinger_known_value(self):
        assert hellinger_distance([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0, abs=1e-3)

    def test_ordering_consistency(self):
        # A distribution closer to the reference should score lower on every metric.
        reference = [0.5, 0.3, 0.2]
        near = [0.45, 0.35, 0.2]
        far = [0.05, 0.05, 0.9]
        for metric in (symmetric_kl_divergence, js_divergence, total_variation_distance,
                       hellinger_distance):
            assert metric(near, reference) < metric(far, reference)
