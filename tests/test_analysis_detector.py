"""Tests for the online anomaly detector (KL gate + LOF)."""

from __future__ import annotations

import pytest

from repro.analysis.detector import DetectionOutcome, OnlineAnomalyDetector, WindowDecision
from repro.analysis.model import ReferenceModel
from repro.config import DetectorConfig
from repro.errors import ModelError
from repro.trace.event import EventTypeRegistry
from repro.trace.generator import PeriodicTraceGenerator, SyntheticTraceGenerator
from repro.trace.stream import windows_by_duration
from repro.trace.window import TraceWindow


@pytest.fixture()
def fitted(normal_mix, registry):
    generator = SyntheticTraceGenerator(normal_mix, rate_per_s=2_000, seed=1)
    reference = list(windows_by_duration(generator.events(4.0), 40_000))
    model = ReferenceModel(k_neighbours=10).learn(reference, registry)
    return model, registry


def make_detector(fitted, **overrides):
    model, registry = fitted
    defaults = dict(k_neighbours=10, lof_threshold=1.3, kl_threshold=0.05)
    defaults.update(overrides)
    return OnlineAnomalyDetector(model, DetectorConfig(**defaults), registry)


class TestProcess:
    def test_normal_windows_not_flagged(self, fitted, normal_mix):
        detector = make_detector(fitted)
        generator = SyntheticTraceGenerator(normal_mix, rate_per_s=2_000, seed=50)
        windows = list(windows_by_duration(generator.events(2.0), 40_000))
        decisions = [detector.process(window) for window in windows]
        anomalous = sum(decision.anomalous for decision in decisions)
        assert anomalous <= len(decisions) * 0.1

    def test_anomalous_windows_flagged(self, fitted, anomaly_mix):
        detector = make_detector(fitted)
        generator = SyntheticTraceGenerator(anomaly_mix, rate_per_s=2_000, seed=51)
        windows = list(windows_by_duration(generator.events(2.0), 40_000))
        decisions = [detector.process(window) for window in windows]
        anomalous = sum(decision.anomalous for decision in decisions)
        assert anomalous >= len(decisions) * 0.8

    def test_empty_window_yields_empty_outcome(self, fitted):
        detector = make_detector(fitted)
        decision = detector.process(TraceWindow(index=0, start_us=0, end_us=40_000))
        assert decision.outcome is DetectionOutcome.EMPTY
        assert decision.lof_score is None
        assert not decision.anomalous

    def test_counters_track_processing(self, fitted, normal_mix):
        detector = make_detector(fitted)
        generator = SyntheticTraceGenerator(normal_mix, rate_per_s=2_000, seed=52)
        windows = list(windows_by_duration(generator.events(1.0), 40_000))
        for window in windows:
            detector.process(window)
        assert detector.n_processed == len(windows)
        assert detector.n_merged + detector.n_lof_computed <= detector.n_processed
        assert 0.0 <= detector.lof_computation_rate <= 1.0

    def test_kl_gate_disabled_scores_every_window(self, fitted, normal_mix):
        detector = make_detector(fitted, use_kl_gate=False)
        generator = SyntheticTraceGenerator(normal_mix, rate_per_s=2_000, seed=53)
        windows = list(windows_by_duration(generator.events(1.0), 40_000))
        decisions = [detector.process(window) for window in windows]
        assert all(decision.lof_checked for decision in decisions if decision.n_events)
        assert detector.n_merged == 0

    def test_kl_gate_skips_lof_for_similar_windows(self, fitted, normal_mix):
        # A huge threshold makes every non-empty window "similar": LOF never runs.
        detector = make_detector(fitted, kl_threshold=1e9)
        generator = SyntheticTraceGenerator(normal_mix, rate_per_s=2_000, seed=54)
        windows = list(windows_by_duration(generator.events(1.0), 40_000))
        decisions = [detector.process(window) for window in windows]
        assert all(decision.outcome is DetectionOutcome.MERGED for decision in decisions)
        assert detector.n_lof_computed == 0

    def test_past_pmf_adapts_on_merge(self, fitted, normal_mix):
        detector = make_detector(fitted, kl_threshold=1e9, merge_decay=0.5)
        before = detector.past_pmf.probabilities().copy()
        generator = SyntheticTraceGenerator({"only_this": 1.0}, rate_per_s=2_000, seed=55)
        for window in windows_by_duration(generator.events(0.5), 40_000):
            detector.process(window)
        after = detector.past_pmf.probabilities()
        assert not (before == pytest.approx(after))

    def test_unfitted_model_rejected(self, registry):
        with pytest.raises(ModelError):
            OnlineAnomalyDetector(ReferenceModel(), DetectorConfig(), registry)


class TestWindowDecision:
    def test_anomalous_at_rethresholds_stored_score(self):
        decision = WindowDecision(
            window_index=0,
            start_us=0,
            end_us=40_000,
            n_events=10,
            kl_to_past=0.5,
            lof_score=1.4,
            outcome=DetectionOutcome.ANOMALOUS,
        )
        assert decision.anomalous_at(1.2)
        assert not decision.anomalous_at(1.5)

    def test_unchecked_window_never_anomalous(self):
        decision = WindowDecision(
            window_index=0,
            start_us=0,
            end_us=40_000,
            n_events=10,
            kl_to_past=0.001,
            lof_score=None,
            outcome=DetectionOutcome.MERGED,
        )
        assert not decision.anomalous_at(0.5)
        assert not decision.lof_checked

    def test_detection_sequence_on_periodic_anomaly(self, fitted, normal_mix, anomaly_mix):
        model, registry = fitted
        detector = OnlineAnomalyDetector(
            model, DetectorConfig(k_neighbours=10, lof_threshold=1.3), registry
        )
        generator = PeriodicTraceGenerator(
            normal_mix, anomaly_mix, anomaly_intervals=[(1.0, 2.0)], rate_per_s=2_000, seed=3
        )
        decisions = [
            detector.process(window)
            for window in windows_by_duration(generator.events(3.0), 40_000)
        ]
        flagged_seconds = [
            decision.start_us / 1e6 for decision in decisions if decision.anomalous
        ]
        assert flagged_seconds, "no anomaly detected at all"
        inside = [t for t in flagged_seconds if 0.95 <= t < 2.05]
        assert len(inside) / len(flagged_seconds) > 0.8
