"""Tests for the end-to-end trace monitor."""

from __future__ import annotations

import pytest

from repro.analysis.model import ReferenceModel
from repro.analysis.monitor import TraceMonitor
from repro.config import DetectorConfig, MonitorConfig
from repro.errors import ModelError
from repro.trace.event import EventTypeRegistry
from repro.trace.generator import PeriodicTraceGenerator, SyntheticTraceGenerator
from repro.trace.stream import TraceStream, windows_by_duration


def make_monitor(registry, **monitor_overrides):
    monitor_config = MonitorConfig(
        window_duration_us=40_000,
        reference_duration_us=4_000_000,
        **monitor_overrides,
    )
    detector_config = DetectorConfig(k_neighbours=10, lof_threshold=1.3)
    return TraceMonitor(detector_config, monitor_config, registry)


class TestLearnAndMonitor:
    def test_run_on_stream_learns_then_monitors(self, registry, synthetic_stream):
        monitor = make_monitor(registry)
        result = monitor.run_on_stream(TraceStream(synthetic_stream.events(50.0)))
        assert result.reference_window_count == 100  # 4 s of 40 ms windows
        assert result.n_windows > 1_000
        assert result.model.is_fitted
        assert result.report.total_windows == result.n_windows

    def test_anomalies_detected_in_known_intervals(self, registry, synthetic_stream):
        monitor = make_monitor(registry)
        result = monitor.run_on_stream(TraceStream(synthetic_stream.events(50.0)))
        flagged = [decision.start_us / 1e6 for decision in result.anomalous_windows()]
        assert flagged, "nothing detected"
        inside = [
            t for t in flagged if (19.9 <= t < 24.1) or (39.9 <= t < 44.1)
        ]
        assert len(inside) / len(flagged) > 0.7
        assert result.report.reduction_factor > 3.0

    def test_recorded_indices_match_anomalous_decisions(self, registry, synthetic_stream):
        monitor = make_monitor(registry)
        result = monitor.run_on_stream(TraceStream(synthetic_stream.events(30.0)))
        anomalous_indices = {d.window_index for d in result.decisions if d.anomalous}
        assert set(result.recorded_indices) == anomalous_indices

    def test_window_bytes_populated(self, registry, synthetic_stream):
        monitor = make_monitor(registry)
        result = monitor.run_on_stream(TraceStream(synthetic_stream.events(10.0)))
        non_empty = [d for d in result.decisions if d.n_events]
        assert all(decision.window_bytes > 0 for decision in non_empty)
        assert sum(d.window_bytes for d in result.decisions) == result.report.total_bytes

    def test_curated_model_skips_learning(self, registry, normal_mix):
        generator = SyntheticTraceGenerator(normal_mix, rate_per_s=2_000, seed=8)
        reference = list(windows_by_duration(generator.events(4.0), 40_000))
        model = ReferenceModel(k_neighbours=10).learn(reference, registry)
        monitor = make_monitor(registry)
        live = SyntheticTraceGenerator(normal_mix, rate_per_s=2_000, seed=9)
        result = monitor.run_on_stream(TraceStream(live.events(4.0)), model=model)
        assert result.reference_window_count == 0
        assert result.n_windows == 100
        assert result.anomaly_rate < 0.2

    def test_unfitted_curated_model_rejected(self, registry, normal_mix):
        monitor = make_monitor(registry)
        generator = SyntheticTraceGenerator(normal_mix, rate_per_s=2_000, seed=10)
        with pytest.raises(ModelError):
            monitor.run_on_stream(TraceStream(generator.events(1.0)), model=ReferenceModel())

    def test_output_file_written(self, registry, synthetic_stream, tmp_path):
        monitor = make_monitor(registry)
        path = tmp_path / "anomalies.jsonl"
        result = monitor.run_on_stream(
            TraceStream(synthetic_stream.events(30.0)), output_path=path
        )
        assert path.exists()
        assert path.stat().st_size > 0 or result.n_anomalous == 0

    def test_run_on_events_convenience(self, registry, normal_mix):
        monitor = make_monitor(registry)
        generator = SyntheticTraceGenerator(normal_mix, rate_per_s=2_000, seed=11)
        result = monitor.run_on_events(generator.events(8.0))
        assert result.n_windows == 100

    def test_monitor_stats_exposed(self, registry, synthetic_stream):
        monitor = make_monitor(registry)
        result = monitor.run_on_stream(TraceStream(synthetic_stream.events(20.0)))
        stats = result.detector_stats
        assert stats["windows_processed"] == result.n_windows
        assert 0.0 <= stats["lof_computation_rate"] <= 1.0

    def test_default_construction(self):
        monitor = TraceMonitor()
        assert monitor.detector_config.k_neighbours == 20
        assert monitor.monitor_config.window_duration_us == 40_000
