"""Driver tests: baselines, suppressions, JSON output, exit codes.

Locks down the gate's operational contract: a violation fails the build
(the CI self-test), a baselined violation does not (adoption without a
flag day), the baseline tolerates line moves but not duplication, and the
JSON output keeps its schema.  The final test is the acceptance gate for
the repo itself: ``python -m repro.devtools.check src/repro`` exits 0.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools.baseline import Baseline
from repro.devtools.check import main
from repro.devtools.findings import Finding, Severity
from repro.devtools.suppress import parse_suppressions

REPO_ROOT = Path(__file__).resolve().parents[1]

#: A one-line FS101 violation (thread constructed at import time).
VIOLATION = "import threading\n_T = threading.Thread(target=print)  # repro: ignore[DC601]\n"


def _write_violation(directory: Path, name: str = "probe.py") -> Path:
    path = directory / name
    path.write_text(VIOLATION, encoding="utf-8")
    return path


def _run(tmp_path: Path, *extra: str, files: list[Path]) -> int:
    argv = [str(f) for f in files]
    argv += ["--root", str(tmp_path), "--baseline", str(tmp_path / "baseline.json")]
    argv += list(extra)
    return main(argv)


class TestExitCodes:
    def test_injected_violation_fails_the_gate(self, tmp_path):
        """The CI self-test: a known-bad file must exit nonzero."""
        probe = _write_violation(tmp_path)
        assert _run(tmp_path, files=[probe]) == 1

    def test_clean_file_passes(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text('"""Nothing wrong here."""\n', encoding="utf-8")
        assert _run(tmp_path, files=[clean]) == 0

    def test_unknown_rule_id_is_a_usage_error(self, tmp_path):
        probe = _write_violation(tmp_path)
        assert _run(tmp_path, "--select", "ZZ999", files=[probe]) == 2

    def test_missing_path_is_a_usage_error(self, tmp_path):
        assert _run(tmp_path, files=[tmp_path / "absent.py"]) == 2

    def test_parse_error_fails_the_gate(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def half(:\n", encoding="utf-8")
        assert _run(tmp_path, files=[broken]) == 1

    def test_select_and_ignore_filter_rules(self, tmp_path):
        probe = _write_violation(tmp_path)
        assert _run(tmp_path, "--select", "DT301", files=[probe]) == 0
        assert _run(tmp_path, "--ignore", "FS101", files=[probe]) == 0
        assert _run(tmp_path, "--select", "FS101", files=[probe]) == 1

    def test_list_rules(self, tmp_path, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("FS101", "TD206", "DT302", "LY401", "CK501", "DC601", "TY701"):
            assert rule_id in out


class TestBaselineRoundTrip:
    def test_write_then_check_is_clean(self, tmp_path):
        probe = _write_violation(tmp_path)
        assert _run(tmp_path, "--write-baseline", files=[probe]) == 0
        assert (tmp_path / "baseline.json").exists()
        assert _run(tmp_path, files=[probe]) == 0

    def test_new_violation_still_fails_after_baselining(self, tmp_path, capsys):
        probe = _write_violation(tmp_path)
        assert _run(tmp_path, "--write-baseline", files=[probe]) == 0
        capsys.readouterr()
        probe.write_text(
            VIOLATION + "_T2 = threading.Thread(target=len)  # repro: ignore[DC601]\n",
            encoding="utf-8",
        )
        assert _run(tmp_path, files=[probe]) == 1
        out = capsys.readouterr().out
        assert "_T2" not in out  # findings name rules, not variables
        assert out.count("FS101") == 1  # only the NEW thread is reported

    def test_baseline_tolerates_line_moves(self, tmp_path):
        probe = _write_violation(tmp_path)
        assert _run(tmp_path, "--write-baseline", files=[probe]) == 0
        probe.write_text("# a new leading comment\n" + VIOLATION, encoding="utf-8")
        assert _run(tmp_path, files=[probe]) == 0

    def test_baseline_multiplicity_is_consumed(self):
        def finding(line: int) -> Finding:
            return Finding(
                rule="FS101",
                path="x.py",
                line=line,
                column=0,
                message="m",
                severity=Severity.ERROR,
                source_line="_T = threading.Thread(target=print)",
            )

        baseline = Baseline.from_findings([finding(2)])
        new, old = baseline.partition([finding(2), finding(9)])
        assert [f.line for f in old] == [2]
        assert [f.line for f in new] == [9]  # duplicate beyond the count is new

    def test_baseline_file_is_reviewable_json(self, tmp_path):
        probe = _write_violation(tmp_path)
        assert _run(tmp_path, "--write-baseline", files=[probe]) == 0
        payload = json.loads((tmp_path / "baseline.json").read_text())
        assert payload["version"] == 1
        (entry,) = payload["findings"]
        assert entry["rule"] == "FS101"
        assert entry["path"] == "probe.py"
        assert entry["count"] == 1
        assert "threading.Thread" in entry["source_line"]
        assert entry["fingerprint"]


class TestJsonOutput:
    def test_schema(self, tmp_path, capsys):
        probe = _write_violation(tmp_path)
        assert _run(tmp_path, "--format", "json", files=[probe]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"findings", "baselined", "parse_errors", "exit_code"}
        assert payload["exit_code"] == 1
        assert payload["baselined"] == 0
        assert payload["parse_errors"] == []
        (finding,) = payload["findings"]
        assert set(finding) == {
            "rule", "path", "line", "column", "severity", "message", "fingerprint",
        }
        assert finding["rule"] == "FS101"
        assert finding["path"] == "probe.py"
        assert finding["severity"] == "error"
        assert finding["line"] == 2

    def test_clean_tree_json(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text('"""Fine."""\n', encoding="utf-8")
        assert _run(tmp_path, "--format", "json", files=[clean]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {
            "findings": [], "baselined": 0, "parse_errors": [], "exit_code": 0,
        }


class TestSuppressions:
    def test_line_pragma_round_trip(self, tmp_path):
        probe = tmp_path / "probe.py"
        probe.write_text(
            "import threading\n"
            "_T = threading.Thread(target=print)  # repro: ignore[FS101,DC601]\n",
            encoding="utf-8",
        )
        assert _run(tmp_path, files=[probe]) == 0

    def test_bare_ignore_silences_every_rule(self, tmp_path):
        probe = tmp_path / "probe.py"
        probe.write_text(
            "import threading\n"
            "_T = threading.Thread(target=print)  # repro: ignore\n",
            encoding="utf-8",
        )
        assert _run(tmp_path, files=[probe]) == 0

    def test_file_pragma_must_be_near_the_top(self):
        near_top = "# repro: ignore-file[FS101]\n" + "\n" * 30 + "x = 1\n"
        suppressions = parse_suppressions(near_top)
        assert suppressions.is_suppressed("FS101", 32)
        too_deep = "\n" * 30 + "# repro: ignore-file[FS101]\nx = 1\n"
        suppressions = parse_suppressions(too_deep)
        assert not suppressions.is_suppressed("FS101", 32)

    def test_pragma_inside_string_literal_is_inert(self):
        source = 's = "# repro: ignore[FS101]"\n'
        suppressions = parse_suppressions(source)
        assert suppressions.line_rules == {}


class TestFingerprints:
    def test_fingerprint_ignores_line_number(self):
        a = Finding("TD201", "m.py", 5, 0, "msg", Severity.ERROR, "lock.acquire()")
        b = Finding("TD201", "m.py", 50, 4, "msg", Severity.ERROR, "lock.acquire()")
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_changes_with_rule_path_and_content(self):
        base = Finding("TD201", "m.py", 5, 0, "msg", Severity.ERROR, "lock.acquire()")
        assert base.fingerprint() != Finding(
            "TD202", "m.py", 5, 0, "msg", Severity.ERROR, "lock.acquire()"
        ).fingerprint()
        assert base.fingerprint() != Finding(
            "TD201", "n.py", 5, 0, "msg", Severity.ERROR, "lock.acquire()"
        ).fingerprint()
        assert base.fingerprint() != Finding(
            "TD201", "m.py", 5, 0, "msg", Severity.ERROR, "other.acquire()"
        ).fingerprint()


def test_repo_tree_is_clean():
    """Acceptance gate: the committed tree passes its own static analysis."""
    exit_code = main(
        [
            str(REPO_ROOT / "src" / "repro"),
            "--root",
            str(REPO_ROOT),
            "--baseline",
            str(REPO_ROOT / "src" / "repro" / "devtools" / "baseline.json"),
        ]
    )
    assert exit_code == 0
