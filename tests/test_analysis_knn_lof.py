"""Tests for the k-NN indexes and the Local Outlier Factor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.knn import BallTreeKnn, BruteForceKnn, GridSimplexKnn, KdTreeKnn
from repro.analysis.lof import LocalOutlierFactor
from repro.errors import ModelError, NotFittedError

ALL_INDEXES = [BruteForceKnn, KdTreeKnn, GridSimplexKnn, BallTreeKnn]


def make_cluster_points(seed=0, n=200, dim=5):
    rng = np.random.default_rng(seed)
    return rng.normal(loc=0.0, scale=1.0, size=(n, dim))


class TestKnnIndexes:
    @pytest.mark.parametrize("index_cls", ALL_INDEXES)
    def test_nearest_neighbour_of_a_training_point_is_itself(self, index_cls):
        points = make_cluster_points()
        index = index_cls(points)
        distances, indices = index.query(points[17], k=1)
        assert indices[0] == 17
        assert distances[0] == pytest.approx(0.0, abs=1e-12)

    @pytest.mark.parametrize("index_cls", ALL_INDEXES)
    def test_distances_sorted_and_k_clamped(self, index_cls):
        points = make_cluster_points(n=10)
        index = index_cls(points)
        distances, indices = index.query(np.zeros(points.shape[1]), k=50)
        assert len(distances) == 10
        assert list(distances) == sorted(distances)
        assert len(set(indices.tolist())) == 10

    @pytest.mark.parametrize("index_cls", ALL_INDEXES)
    def test_invalid_queries_rejected(self, index_cls):
        index = index_cls(make_cluster_points(n=20, dim=3))
        with pytest.raises(ModelError):
            index.query(np.zeros(5), k=1)  # wrong dimension
        with pytest.raises(ModelError):
            index.query(np.zeros(3), k=0)

    def test_empty_or_bad_points_rejected(self):
        with pytest.raises(ModelError):
            BruteForceKnn(np.zeros((0, 3)))
        with pytest.raises(ModelError):
            BruteForceKnn(np.array([1.0, 2.0]))
        with pytest.raises(ModelError):
            BruteForceKnn(np.array([[np.nan, 1.0]]))
        with pytest.raises(ModelError):
            KdTreeKnn(make_cluster_points(n=5), leaf_size=0)

    def test_query_many_shapes(self):
        points = make_cluster_points(n=30, dim=4)
        index = BruteForceKnn(points)
        distances, indices = index.query_many(points[:5], k=3)
        assert distances.shape == (5, 3)
        assert indices.shape == (5, 3)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        k=st.integers(min_value=1, max_value=10),
    )
    def test_kdtree_matches_brute_force_property(self, seed, k):
        rng = np.random.default_rng(seed)
        points = rng.uniform(size=(60, 4))
        query = rng.uniform(size=4)
        brute_d, _ = BruteForceKnn(points).query(query, k)
        tree_d, _ = KdTreeKnn(points, leaf_size=4).query(query, k)
        assert np.allclose(brute_d, tree_d)

    def test_kdtree_handles_duplicate_points(self):
        points = np.vstack([np.ones((30, 3)), np.zeros((5, 3))])
        index = KdTreeKnn(points, leaf_size=2)
        distances, _ = index.query(np.ones(3), k=10)
        assert distances[0] == pytest.approx(0.0)

    @pytest.mark.parametrize("index_cls", ALL_INDEXES)
    def test_duplicate_points_tie_break_by_index(self, index_cls):
        # Regression: every backend must break exact distance ties by
        # ascending point index, so equal-distance neighbours come back in
        # the same order regardless of backend.
        rng = np.random.default_rng(8)
        base = make_cluster_points(seed=8, n=20, dim=3)
        points = np.vstack([base, base])[rng.permutation(40)]
        index = index_cls(points)
        oracle = BruteForceKnn(points)
        for query in (points[3], np.zeros(3)):
            distances, indices = index.query(query, k=12)
            oracle_d, oracle_i = oracle.query(query, k=12)
            np.testing.assert_array_equal(indices, oracle_i)
            np.testing.assert_array_equal(distances, oracle_d)
            # Within each run of tied distances, indices must ascend.
            for a, b in zip(range(11), range(1, 12)):
                if distances[a] == distances[b]:
                    assert indices[a] < indices[b]


class TestLocalOutlierFactor:
    def test_scores_near_one_inside_a_uniform_cluster(self):
        points = make_cluster_points(n=300)
        lof = LocalOutlierFactor(k_neighbours=15).fit(points)
        inlier_score = lof.score(np.zeros(points.shape[1]))
        assert 0.8 < inlier_score < 1.3

    def test_outlier_scores_much_higher_than_inliers(self):
        points = make_cluster_points(n=300)
        lof = LocalOutlierFactor(k_neighbours=15).fit(points)
        outlier_score = lof.score(np.full(points.shape[1], 15.0))
        assert outlier_score > 2.0
        assert lof.is_anomalous(np.full(points.shape[1], 15.0), alpha=1.5)
        assert not lof.is_anomalous(np.zeros(points.shape[1]), alpha=1.5)

    def test_score_many_matches_individual_scores(self):
        points = make_cluster_points(n=100, dim=3)
        lof = LocalOutlierFactor(k_neighbours=10).fit(points)
        queries = make_cluster_points(seed=9, n=5, dim=3)
        batch = lof.score_many(queries)
        assert batch == pytest.approx([lof.score(q) for q in queries])

    def test_training_scores_mostly_near_one(self):
        points = make_cluster_points(n=200)
        lof = LocalOutlierFactor(k_neighbours=10).fit(points)
        scores = lof.training_scores
        assert np.median(scores) == pytest.approx(1.0, abs=0.15)

    def test_threshold_for_quantile_monotone(self):
        points = make_cluster_points(n=200)
        lof = LocalOutlierFactor(k_neighbours=10).fit(points)
        assert lof.threshold_for_quantile(0.5) <= lof.threshold_for_quantile(0.99)
        with pytest.raises(ModelError):
            lof.threshold_for_quantile(0.0)

    def test_kdtree_index_gives_same_scores_as_brute(self):
        points = make_cluster_points(n=150, dim=4)
        queries = make_cluster_points(seed=3, n=10, dim=4)
        brute = LocalOutlierFactor(k_neighbours=10, index_kind="brute").fit(points)
        tree = LocalOutlierFactor(k_neighbours=10, index_kind="kdtree").fit(points)
        assert brute.score_many(queries) == pytest.approx(tree.score_many(queries), rel=1e-6)

    def test_two_density_clusters(self):
        rng = np.random.default_rng(1)
        dense = rng.normal(0.0, 0.05, size=(150, 2))
        sparse = rng.normal(5.0, 1.0, size=(150, 2))
        lof = LocalOutlierFactor(k_neighbours=10).fit(np.vstack([dense, sparse]))
        # a point at the edge of the dense cluster is more outlying relative to
        # its (dense) neighbourhood than a sparse-cluster member is to its own
        edge_of_dense = lof.score(np.array([0.4, 0.4]))
        sparse_member = lof.score(np.array([5.0, 1.0]))
        assert edge_of_dense > sparse_member

    def test_validation_errors(self):
        with pytest.raises(ModelError):
            LocalOutlierFactor(k_neighbours=0)
        with pytest.raises(ModelError):
            LocalOutlierFactor(index_kind="weird")
        lof = LocalOutlierFactor(k_neighbours=5)
        with pytest.raises(NotFittedError):
            lof.score(np.zeros(3))
        with pytest.raises(ModelError):
            lof.fit(np.zeros((3, 2)))  # fewer points than k
        with pytest.raises(ModelError):
            lof.fit(np.zeros(5))  # not 2-D
        fitted = LocalOutlierFactor(k_neighbours=3).fit(make_cluster_points(n=20, dim=2))
        with pytest.raises(ModelError):
            fitted.is_anomalous(np.zeros(2), alpha=0.0)

    def test_duplicate_points_do_not_crash(self):
        points = np.vstack([np.zeros((30, 3)), make_cluster_points(n=30, dim=3)])
        lof = LocalOutlierFactor(k_neighbours=5).fit(points)
        assert np.isfinite(lof.score(np.zeros(3)))
        assert np.isfinite(lof.score(np.full(3, 0.01)))
