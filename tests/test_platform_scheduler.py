"""Tests for the round-robin scheduler."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.platform.cpu import Core
from repro.platform.memory import MemoryModel
from repro.platform.scheduler import RoundRobinScheduler
from repro.platform.simulator import Simulator
from repro.platform.task import Task
from repro.platform.tracer import HardwareTracer


def make_scheduler(n_cores: int = 1, quantum_us: int = 1_000, contention: float = 0.0):
    simulator = Simulator()
    tracer = HardwareTracer()
    cores = [Core(index=i) for i in range(n_cores)]
    scheduler = RoundRobinScheduler(
        simulator,
        cores,
        tracer,
        memory=MemoryModel(contention_per_task=contention),
        quantum_us=quantum_us,
        context_switch_cost_us=0,
    )
    return simulator, scheduler, tracer, cores


class TestBasicExecution:
    def test_single_job_completes_after_its_service_time(self):
        simulator, scheduler, _, _ = make_scheduler()
        completions = []
        scheduler.submit_work(Task("t"), 2_500, on_complete=completions.append)
        simulator.run()
        assert len(completions) == 1
        assert completions[0] == pytest.approx(2_500, abs=10)
        assert scheduler.completed_jobs == 1

    def test_two_jobs_time_share_one_core(self):
        simulator, scheduler, _, _ = make_scheduler(quantum_us=1_000)
        completions = {}
        scheduler.submit_work(Task("a"), 3_000, on_complete=lambda t: completions.__setitem__("a", t))
        scheduler.submit_work(Task("b"), 3_000, on_complete=lambda t: completions.__setitem__("b", t))
        simulator.run()
        # both need 3 ms of CPU; interleaved on one core they finish around 5-6 ms
        assert completions["a"] > 4_500
        assert completions["b"] > 4_500

    def test_two_cores_run_jobs_in_parallel(self):
        simulator, scheduler, _, _ = make_scheduler(n_cores=2)
        completions = {}
        scheduler.submit_work(Task("a"), 3_000, on_complete=lambda t: completions.__setitem__("a", t))
        scheduler.submit_work(Task("b"), 3_000, on_complete=lambda t: completions.__setitem__("b", t))
        simulator.run()
        assert completions["a"] == pytest.approx(3_000, abs=20)
        assert completions["b"] == pytest.approx(3_000, abs=20)

    def test_higher_priority_job_runs_first(self):
        simulator, scheduler, _, _ = make_scheduler(quantum_us=10_000)
        order = []
        # submit three jobs before any has a chance to run
        simulator.schedule_at(0, lambda: scheduler.submit_work(Task("low", priority=0), 1_000, on_complete=lambda t: order.append("low")))
        simulator.schedule_at(0, lambda: scheduler.submit_work(Task("high", priority=5), 1_000, on_complete=lambda t: order.append("high")))
        simulator.schedule_at(0, lambda: scheduler.submit_work(Task("mid", priority=2), 1_000, on_complete=lambda t: order.append("mid")))
        simulator.run()
        # the first job grabbed the core immediately; among the queued ones the
        # higher priority runs first
        assert order.index("high") < order.index("mid")

    def test_contention_slows_jobs_down(self):
        fast_sim, fast_sched, _, _ = make_scheduler(contention=0.0)
        slow_sim, slow_sched, _, _ = make_scheduler(contention=0.5)
        fast_done, slow_done = [], []
        for scheduler, done in ((fast_sched, fast_done), (slow_sched, slow_done)):
            scheduler.submit_work(Task("a"), 5_000, on_complete=done.append)
            scheduler.submit_work(Task("b"), 5_000, on_complete=done.append)
        fast_sim.run()
        slow_sim.run()
        assert max(slow_done) > max(fast_done)


class TestTraceEmission:
    def test_wakeup_and_switch_events_emitted(self):
        simulator, scheduler, tracer, _ = make_scheduler()
        scheduler.submit_work(Task("decoder"), 2_500)
        simulator.run()
        types = [event.etype for event in tracer.events()]
        assert "sched_wakeup" in types
        assert types.count("sched_switch") >= 3  # 2.5 ms at 1 ms quantum

    def test_mem_stall_events_only_under_contention(self):
        simulator, scheduler, tracer, _ = make_scheduler(contention=0.3, quantum_us=4_000)
        scheduler.submit_work(Task("a"), 8_000)
        scheduler.submit_work(Task("b"), 8_000)
        simulator.run()
        assert any(event.etype == "mem_stall" for event in tracer.events())

    def test_core_utilisation_accounted(self):
        simulator, scheduler, _, cores = make_scheduler()
        scheduler.submit_work(Task("a"), 5_000)
        simulator.run()
        assert cores[0].busy_us == pytest.approx(5_000, abs=20)


class TestValidation:
    def test_needs_at_least_one_core(self):
        with pytest.raises(SimulationError):
            RoundRobinScheduler(Simulator(), [], HardwareTracer())

    def test_rejects_bad_quantum(self):
        with pytest.raises(SimulationError):
            RoundRobinScheduler(Simulator(), [Core(0)], HardwareTracer(), quantum_us=0)

    def test_rejects_negative_context_switch_cost(self):
        with pytest.raises(SimulationError):
            RoundRobinScheduler(
                Simulator(), [Core(0)], HardwareTracer(), context_switch_cost_us=-1
            )
