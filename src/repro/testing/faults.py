"""Deterministic fault injection for the chaos-test suite.

The fleet's fault-tolerance guarantees (shard isolation, retry
equivalence, crash-consistent output) are only trustworthy if they can be
*demonstrated* against real failures, repeatably.  This module provides
the machinery:

* Production code marks its failure-prone spots with
  :func:`fault_point` (raise/exit-style faults) or :func:`corrupt_chunk`
  (byte-stream mangling).  With no plan armed both are a single
  ``os.environ`` lookup — cheap enough for per-batch call sites.
* Tests arm a plan of :class:`FaultSpec` records with :func:`inject`.
  The plan travels in the ``REPRO_FAULT_PLAN`` environment variable so
  worker processes inherit it under both ``fork`` and ``spawn`` start
  methods.
* Determinism: a spec fires on exact ``(site, shard, attempt)``
  coordinates plus a hit counter (``after``/``count``), never on timing
  or randomness.  Retried shards carry their attempt number into the
  hooks via :func:`shard_scope`, so "fail attempt 1, succeed attempt 2"
  is expressible even when the retry lands on a different worker
  process.

Known sites wired into the library:

``worker.boot``
    Parallel-fleet worker initializer (fires in every new process).
``shard.start``
    A shard pipeline is about to be built (serial and worker backends).
``shard.batch``
    Before each scored batch of a shard (``after=N`` fires mid-stream).
``recorder.write``
    Inside the selective recorder's buffered write path (pair with
    ``action="oserror"`` for an ENOSPC-style disk failure).
``stream.chunk``
    Raw chunk entering the streaming decoder (``action="garble"`` /
    ``"truncate"`` via :func:`corrupt_chunk`).
"""

from __future__ import annotations

import contextlib
import errno
import json
import os
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from ..errors import FaultInjectionError

__all__ = [
    "ENV_VAR",
    "FaultSpec",
    "InjectedFault",
    "corrupt_chunk",
    "decode_plan",
    "encode_plan",
    "fault_point",
    "inject",
    "reset",
    "shard_scope",
]

ENV_VAR = "REPRO_FAULT_PLAN"

#: Exit status used by ``action="exit"`` so tests (and post-mortems) can
#: tell an injected hard kill from an organic crash.
EXIT_STATUS = 70

_RAISE_ACTIONS = frozenset({"raise", "oserror", "exit"})
_CHUNK_ACTIONS = frozenset({"garble", "truncate"})
_ACTIONS = _RAISE_ACTIONS | _CHUNK_ACTIONS


class InjectedFault(RuntimeError):
    """The exception raised by ``action="raise"`` fault points.

    Deliberately *not* a :class:`~repro.errors.ReproError`: production
    code must treat it like any unexpected runtime failure, so the chaos
    suite exercises the same handling paths organic bugs would hit.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes
    ----------
    site:
        Name of the fault point to fire at (see module docstring).
    action:
        ``"raise"`` (:class:`InjectedFault`), ``"oserror"`` (ENOSPC-style
        :class:`OSError`), ``"exit"`` (hard ``os._exit`` — no cleanup, no
        flush), ``"garble"`` (overwrite bytes mid-chunk) or
        ``"truncate"`` (drop the tail of a chunk).  The last two only
        fire at :func:`corrupt_chunk` sites.
    shard:
        Shard label the spec applies to; ``None`` matches every shard.
    attempts:
        Attempt numbers (1-based) the spec fires on.  The default
        ``(1,)`` models a transient fault: the first attempt fails, a
        retry runs clean.  Use ``(1, 2, ...)`` for a persistent fault.
    after:
        Number of matching hits to let pass before firing (e.g. crash
        after the third batch).
    count:
        Maximum number of firings per ``(shard, attempt)`` coordinate.
    """

    site: str
    action: str = "raise"
    shard: str | None = None
    attempts: tuple[int, ...] = (1,)
    after: int = 0
    count: int = 1

    def __post_init__(self) -> None:
        if not self.site:
            raise FaultInjectionError("fault site must be a non-empty string")
        if self.action not in _ACTIONS:
            raise FaultInjectionError(
                f"unknown fault action {self.action!r}; expected one of "
                f"{sorted(_ACTIONS)}"
            )
        # JSON round-trips tuples as lists; normalise so == works.
        object.__setattr__(self, "attempts", tuple(self.attempts))
        if not self.attempts or any(a < 1 for a in self.attempts):
            raise FaultInjectionError("attempts must be a non-empty tuple of >= 1")
        if self.after < 0:
            raise FaultInjectionError("after must be >= 0")
        if self.count < 1:
            raise FaultInjectionError("count must be >= 1")


def encode_plan(specs: tuple[FaultSpec, ...] | list[FaultSpec]) -> str:
    """Serialise a plan for the :data:`ENV_VAR` environment variable."""
    payload = [
        {
            "site": s.site,
            "action": s.action,
            "shard": s.shard,
            "attempts": list(s.attempts),
            "after": s.after,
            "count": s.count,
        }
        for s in specs
    ]
    return json.dumps(payload, separators=(",", ":"))


def decode_plan(text: str) -> tuple[FaultSpec, ...]:
    """Parse a plan previously produced by :func:`encode_plan`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise FaultInjectionError(f"unparseable fault plan: {exc}") from exc
    if not isinstance(payload, list):
        raise FaultInjectionError("fault plan must be a JSON list of specs")
    specs = []
    for entry in payload:
        if not isinstance(entry, Mapping):
            raise FaultInjectionError(f"fault spec must be an object: {entry!r}")
        try:
            specs.append(FaultSpec(**entry))
        except TypeError as exc:
            raise FaultInjectionError(f"malformed fault spec {entry!r}: {exc}") from exc
    return tuple(specs)


@dataclass
class _HarnessState:
    """Per-process plan cache and firing counters."""

    raw: str | None = None
    plan: tuple[FaultSpec, ...] = ()
    # (spec index, shard label, attempt) -> calls seen / faults fired.
    hits: dict[tuple[int, str | None, int], int] = field(default_factory=dict)
    fired: dict[tuple[int, str | None, int], int] = field(default_factory=dict)
    # Ambient (label, attempt) installed by shard_scope().
    context: tuple[str | None, int] = (None, 1)


# Deliberately per-process: worker processes re-derive the plan from the
# environment variable and keep their own hit counters.
_STATE = _HarnessState()  # repro: fork-shared


def reset() -> None:
    """Forget the cached plan and all firing counters (tests only)."""
    global _STATE
    _STATE = _HarnessState()


def _active_plan() -> tuple[FaultSpec, ...]:
    raw = os.environ.get(ENV_VAR)
    if raw is None:
        return ()
    if raw != _STATE.raw:
        _STATE.raw = raw
        _STATE.plan = decode_plan(raw)
        _STATE.hits.clear()
        _STATE.fired.clear()
    return _STATE.plan


@contextlib.contextmanager
def shard_scope(label: str | None, attempt: int) -> Iterator[None]:
    """Install the ambient shard coordinates for nested fault points.

    Hooks buried in layers that do not know which shard they serve (the
    recorder's write path, the streaming decoder) resolve their label and
    attempt from this scope, keeping retry determinism independent of
    which worker process the attempt lands on.
    """
    previous = _STATE.context
    _STATE.context = (label, attempt)
    try:
        yield
    finally:
        _STATE.context = previous


def _matching_spec(
    site: str, label: str | None, attempt: int, actions: frozenset[str]
) -> FaultSpec | None:
    """Return the first armed spec due to fire at these coordinates."""
    for index, spec in enumerate(_active_plan()):
        if spec.site != site or spec.action not in actions:
            continue
        if spec.shard is not None and spec.shard != label:
            continue
        if attempt not in spec.attempts:
            continue
        key = (index, label, attempt)
        if _STATE.fired.get(key, 0) >= spec.count:
            continue
        seen = _STATE.hits.get(key, 0)
        _STATE.hits[key] = seen + 1
        if seen < spec.after:
            continue
        _STATE.fired[key] = _STATE.fired.get(key, 0) + 1
        return spec
    return None


def _resolve(label: str | None, attempt: int | None) -> tuple[str | None, int]:
    ambient_label, ambient_attempt = _STATE.context
    return (
        label if label is not None else ambient_label,
        attempt if attempt is not None else ambient_attempt,
    )


def fault_point(
    site: str, label: str | None = None, attempt: int | None = None
) -> None:
    """Fire any armed raise/exit-style fault scheduled for ``site``.

    ``label``/``attempt`` default to the ambient :func:`shard_scope`
    coordinates.  A no-op (one environment lookup) when no plan is armed.
    """
    if os.environ.get(ENV_VAR) is None:
        return
    label, attempt = _resolve(label, attempt)
    spec = _matching_spec(site, label, attempt, _RAISE_ACTIONS)
    if spec is None:
        return
    detail = f"at {site} (shard={label!r}, attempt={attempt})"
    if spec.action == "raise":
        raise InjectedFault(f"injected fault {detail}")
    if spec.action == "oserror":
        raise OSError(errno.ENOSPC, f"injected ENOSPC {detail}")
    os._exit(EXIT_STATUS)  # action == "exit": hard kill, no cleanup runs.


def corrupt_chunk(
    site: str,
    data: bytes,
    label: str | None = None,
    attempt: int | None = None,
) -> bytes:
    """Return ``data``, mangled if a garble/truncate fault is due here.

    ``"garble"`` overwrites up to 8 bytes in the middle of the chunk with
    ``0xFF`` (invalid UTF-8 continuation bytes, an invalid varint run in
    the binary framing), ``"truncate"`` drops the second half.  Both are
    deterministic functions of the chunk itself.
    """
    if os.environ.get(ENV_VAR) is None or not data:
        return data
    label, attempt = _resolve(label, attempt)
    spec = _matching_spec(site, label, attempt, _CHUNK_ACTIONS)
    if spec is None:
        return data
    if spec.action == "truncate":
        return data[: max(1, len(data) // 2)]
    middle = len(data) // 2
    width = min(8, len(data) - middle)
    return data[:middle] + b"\xff" * width + data[middle + width :]


@contextlib.contextmanager
def inject(*specs: FaultSpec) -> Iterator[None]:
    """Arm a fault plan for the duration of a ``with`` block (tests only).

    Sets :data:`ENV_VAR` (so child processes spawned inside the block
    inherit the plan) and resets all counters on entry and exit.
    """
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = encode_plan(list(specs))
    reset()
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous
        reset()
