"""Test-only instrumentation shipped with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection harness
used by the chaos suite: production code calls its near-zero-cost hook
points, and tests schedule crashes/corruption through them via an
environment-carried plan so worker processes (fork *and* spawn) inherit
the schedule.
"""

from __future__ import annotations

from .faults import FaultSpec, InjectedFault, corrupt_chunk, fault_point, inject

__all__ = [
    "FaultSpec",
    "InjectedFault",
    "corrupt_chunk",
    "fault_point",
    "inject",
]
