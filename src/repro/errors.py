"""Exception hierarchy used across the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish configuration problems from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class ConfigurationError(ReproError):
    """A configuration value is missing, malformed or inconsistent."""


class TraceFormatError(ReproError):
    """A trace file or byte stream could not be decoded."""


class TraceStreamError(ReproError):
    """A streaming operation was used incorrectly (e.g. exhausted stream)."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class PipelineError(ReproError):
    """A multimedia pipeline was assembled or driven incorrectly."""


class ModelError(ReproError):
    """An analysis model (reference model, LOF, detector) was misused."""


class NotFittedError(ModelError):
    """A model method requiring a fitted model was called before fitting."""


class LabelingError(ReproError):
    """Ground-truth labelling was given inconsistent intervals or windows."""


class RecorderError(ReproError):
    """The selective trace recorder was driven incorrectly."""


class FleetError(ReproError):
    """The sharded monitoring fleet was configured or driven incorrectly."""


class ExperimentError(ReproError):
    """An experiment driver received inconsistent parameters."""


class FaultInjectionError(ReproError):
    """A deterministic fault-injection plan is malformed or misused.

    Raised by :mod:`repro.testing.faults` when a plan cannot be parsed —
    never by injected faults themselves, which raise the exception type the
    plan schedules (so production code cannot special-case injected faults).
    """
