"""Plain-text reporting: tables, CSV export and ASCII line plots.

The benchmark harness prints the same rows/series the paper reports; since
the environment is plotting-library-free, Figure 1 is rendered as an ASCII
line plot plus a CSV block that can be pasted into any plotting tool.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import ExperimentError
from .sweep import AlphaSweepPoint, SweepPoint

__all__ = [
    "format_table",
    "format_csv",
    "ascii_line_plot",
    "render_alpha_sweep",
    "render_headline",
    "render_sweep",
]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table with a header separator line."""
    rows = [[_format_cell(cell) for cell in row] for row in rows]
    headers = [str(header) for header in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ExperimentError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
    widths = [len(header) for header in headers]
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def _line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[column]) for column, cell in enumerate(cells))

    out = [_line(headers), _line(["-" * width for width in widths])]
    out.extend(_line(row) for row in rows)
    return "\n".join(out)


def format_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a simple CSV block (no quoting; values are numeric)."""
    lines = [",".join(str(header) for header in headers)]
    lines.extend(",".join(_format_cell(cell) for cell in row) for row in rows)
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        if cell == float("inf"):
            return "inf"
        return f"{cell:.3f}"
    return str(cell)


def ascii_line_plot(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    y_min: float | None = None,
    y_max: float | None = None,
) -> str:
    """Render one or more series as an ASCII line plot.

    Each series gets its own marker character; points are plotted on a
    ``height`` x ``width`` character grid with simple nearest-cell mapping.
    """
    if not x_values:
        raise ExperimentError("cannot plot an empty series")
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ExperimentError(
                f"series {name!r} has {len(values)} points but x has {len(x_values)}"
            )
    markers = "*o+x#@%&"
    all_values = [value for values in series.values() for value in values]
    low = min(all_values) if y_min is None else y_min
    high = max(all_values) if y_max is None else y_max
    if high <= low:
        high = low + 1.0
    x_low, x_high = min(x_values), max(x_values)
    if x_high <= x_low:
        x_high = x_low + 1.0

    grid = [[" "] * width for _ in range(height)]
    for series_index, (name, values) in enumerate(series.items()):
        marker = markers[series_index % len(markers)]
        for x, y in zip(x_values, values):
            column = int(round((x - x_low) / (x_high - x_low) * (width - 1)))
            row = int(round((y - low) / (high - low) * (height - 1)))
            grid[height - 1 - row][column] = marker

    lines = []
    for row_index, row in enumerate(grid):
        y_value = high - (high - low) * row_index / (height - 1)
        lines.append(f"{y_value:7.2f} |" + "".join(row))
    lines.append(" " * 8 + "+" + "-" * width)
    lines.append(" " * 9 + f"{x_low:<10.2f}" + " " * max(0, width - 20) + f"{x_high:>10.2f}")
    legend = "   ".join(
        f"{markers[index % len(markers)]} = {name}" for index, name in enumerate(series)
    )
    lines.append(" " * 9 + legend)
    return "\n".join(lines)


def render_alpha_sweep(points: Sequence[AlphaSweepPoint]) -> str:
    """Render the Figure 1 reproduction (precision/recall vs alpha)."""
    if not points:
        raise ExperimentError("no sweep points to render")
    table = format_table(
        ["alpha", "precision", "recall", "f1", "flagged windows", "reduction factor"],
        [
            [p.alpha, p.precision, p.recall, p.f1, p.n_flagged, p.reduction_factor]
            for p in points
        ],
    )
    plot = ascii_line_plot(
        [p.alpha for p in points],
        {
            "precision": [p.precision for p in points],
            "recall": [p.recall for p in points],
        },
        y_min=0.0,
        y_max=1.0,
    )
    return (
        "Figure 1 — precision and recall of anomaly detection vs LOF threshold\n\n"
        + plot
        + "\n\n"
        + table
    )


def render_headline(summary: dict) -> str:
    """Render the paper's Section III headline numbers next to ours."""
    rows = [
        ["precision", "78.9 %", f"{summary['precision'] * 100:.1f} %"],
        ["recall", "76.6 %", f"{summary['recall'] * 100:.1f} %"],
        ["full trace size", "5.9 GB", _human_bytes(summary["total_bytes"])],
        ["recorded trace size", "418 MB", _human_bytes(summary["recorded_bytes"])],
        [
            "reduction factor",
            "14x",
            f"{summary['reduction_factor']:.1f}x",
        ],
    ]
    table = format_table(["metric", "paper (6h17m real run)", "this reproduction"], rows)
    context = (
        f"alpha={summary['alpha']}, run={summary['duration_s']:.0f}s simulated, "
        f"{summary['n_events']} events, {summary['n_perturbations']} perturbations, "
        f"delta_s={summary['delta_start_s']:.1f}s, delta_e={summary['delta_end_s']:.1f}s"
    )
    return "Headline comparison (Section III)\n" + table + "\n" + context


def render_sweep(title: str, points: Sequence[SweepPoint]) -> str:
    """Render a generic ablation sweep as a table."""
    if not points:
        raise ExperimentError("no sweep points to render")
    table = format_table(
        ["parameter", "value", "precision", "recall", "f1", "reduction", "LOF rate"],
        [
            [
                p.parameter,
                p.value,
                p.precision,
                p.recall,
                p.f1,
                p.reduction_factor,
                p.lof_computation_rate,
            ]
            for p in points
        ],
    )
    return f"{title}\n{table}"


def _human_bytes(n_bytes: float) -> str:
    value = float(n_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024 or unit == "TB":
            return f"{value:.1f} {unit}"
        value /= 1024
    return f"{value:.1f} TB"
