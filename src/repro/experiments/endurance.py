"""The paper's endurance experiment, end to end.

``run_endurance_experiment`` reproduces Section III of the paper on the
simulated substrate:

1. simulate the endurance run (video decoding + periodic CPU perturbations),
2. learn the reference model on the first ``reference_duration`` of the
   trace (300 s in the paper),
3. monitor the remainder online, recording only anomalous windows,
4. estimate the impact delays (Δs / Δe) from the perturbation schedule and
   the QoS error log,
5. label every monitored window (TP / FP / FN / TN) and compute precision,
   recall and the trace-size reduction factor.

``run_experiment_on_trace`` performs steps 2-5 on an already simulated trace,
which is how the parameter sweeps avoid re-simulating the same workload for
every parameter value.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from ..analysis.detector import WindowDecision
from ..analysis.fleet import FleetResult, ShardedTraceMonitor
from ..analysis.labeling import GroundTruth, label_windows
from ..analysis.metrics import ConfusionCounts, DetectionMetrics, compute_metrics
from ..analysis.monitor import MonitorResult, TraceMonitor
from ..config import DetectorConfig, EnduranceConfig, MonitorConfig
from ..errors import ExperimentError
from ..logging_util import get_logger
from ..media.app import EnduranceRun, EnduranceTrace
from ..trace.columns import TraceColumns
from ..trace.event import EventTypeRegistry
from ..trace.stream import (
    ColumnarWindowSource,
    column_windows_by_duration,
    materialize_layout_windows,
)

__all__ = [
    "EnduranceExperimentResult",
    "FleetEnduranceResult",
    "run_endurance_experiment",
    "run_experiment_on_trace",
    "run_fleet_endurance_experiment",
]

_LOGGER = get_logger("experiments.endurance")


@dataclass
class EnduranceExperimentResult:
    """Everything produced by one endurance experiment.

    Attributes
    ----------
    config:
        The experiment configuration.
    trace:
        The simulated endurance trace (events, QoS errors, perturbations).
    monitor_result:
        Per-window decisions and recording report from the online monitor.
    ground_truth:
        Impact intervals (with estimated Δs / Δe) and error timestamps.
    metrics:
        Detection metrics at the configured LOF threshold ``alpha``.
    """

    config: EnduranceConfig
    trace: EnduranceTrace
    monitor_result: MonitorResult
    ground_truth: GroundTruth
    metrics: DetectionMetrics
    extras: dict = field(default_factory=dict)

    @property
    def alpha(self) -> float:
        """The LOF threshold the monitor ran with."""
        return self.config.detector.lof_threshold

    @property
    def decisions(self) -> list[WindowDecision]:
        """Per-window decisions of the monitored (non-reference) part."""
        return self.monitor_result.decisions

    def metrics_at(self, alpha: float) -> DetectionMetrics:
        """Re-evaluate precision/recall/reduction for a different ``alpha``.

        The LOF score of a window does not depend on ``alpha`` and the KL
        gate is threshold-independent, so a single monitoring pass supports
        evaluating any threshold exactly (this is how Figure 1 is produced).
        """
        if alpha <= 0:
            raise ExperimentError("alpha must be positive")
        labels = label_windows(self.decisions, self.ground_truth, alpha=alpha)
        recorded_bytes = sum(
            decision.window_bytes
            for decision in self.decisions
            if decision.anomalous_at(alpha)
        )
        return DetectionMetrics(
            counts=ConfusionCounts.from_labels(labels),
            recorded_bytes=recorded_bytes,
            total_bytes=self.monitor_result.report.total_bytes,
        )

    def summary(self) -> dict:
        """Compact JSON-serialisable summary used by reports and benchmarks."""
        report = self.monitor_result.report
        return {
            "duration_s": self.trace.duration_s,
            "n_events": self.trace.n_events,
            "n_qos_errors": len(self.trace.qos_messages),
            "n_perturbations": len(self.trace.perturbation_intervals),
            "n_windows_monitored": self.monitor_result.n_windows,
            "n_windows_anomalous": self.monitor_result.n_anomalous,
            "alpha": self.alpha,
            "precision": self.metrics.precision,
            "recall": self.metrics.recall,
            "f1": self.metrics.f1,
            "total_bytes": report.total_bytes,
            "recorded_bytes": report.recorded_bytes,
            "reduction_factor": report.reduction_factor,
            "delta_start_s": self.ground_truth.delta_start_us / 1e6,
            "delta_end_s": self.ground_truth.delta_end_us / 1e6,
            "lof_computation_rate": self.monitor_result.detector_stats.get(
                "lof_computation_rate", 0.0
            ),
        }


def run_experiment_on_trace(
    trace: EnduranceTrace,
    config: EnduranceConfig,
    detector_config: DetectorConfig | None = None,
    monitor_config: MonitorConfig | None = None,
    keep_events: bool = False,
) -> EnduranceExperimentResult:
    """Run learning + monitoring + evaluation on an existing trace.

    ``detector_config`` / ``monitor_config`` default to the ones inside
    ``config``; passing different ones lets the sweeps explore parameters
    without re-simulating the workload.
    """
    detector_config = detector_config or config.detector
    monitor_config = monitor_config or config.monitor
    registry = EventTypeRegistry.with_default_types()
    monitor = TraceMonitor(detector_config, monitor_config, registry)
    monitor_result = monitor.run_on_stream(trace.stream(), keep_events=keep_events)

    ground_truth = GroundTruth.from_run(
        trace.perturbation_intervals, trace.qos_timestamps_us()
    )
    labels = label_windows(monitor_result.decisions, ground_truth)
    metrics = compute_metrics(labels, monitor_result.report)
    return EnduranceExperimentResult(
        config=config,
        trace=trace,
        monitor_result=monitor_result,
        ground_truth=ground_truth,
        metrics=metrics,
    )


@dataclass
class FleetEnduranceResult:
    """Outcome of a multi-stream (fleet) endurance experiment.

    ``n_streams`` simulated endurance runs — same configuration, different
    media seeds — are monitored as one sharded fleet over a reference model
    learned on the first stream's reference prefix (the "golden device"
    deployment model: one curated model shared by every unit under test).
    """

    config: EnduranceConfig
    traces: list[EnduranceTrace]
    fleet_result: FleetResult
    reference_window_count: int

    @property
    def n_streams(self) -> int:
        """Number of monitored streams in the fleet."""
        return len(self.traces)

    def summary(self) -> dict:
        """Compact JSON-serialisable summary (fleet aggregates + per shard)."""
        payload = self.fleet_result.to_dict()
        payload["fleet"]["n_streams"] = self.n_streams
        payload["fleet"]["reference_window_count"] = self.reference_window_count
        payload["fleet"]["duration_s"] = self.config.media.duration_s
        return payload


def run_fleet_endurance_experiment(
    config: EnduranceConfig | None = None,
    n_streams: int = 4,
    seed_stride: int = 101,
    keep_events: bool = False,
    fleet_workers: int | None = None,
    ingest: str = "objects",
) -> FleetEnduranceResult:
    """Simulate ``n_streams`` endurance runs and monitor them as one fleet.

    Stream ``i`` uses media seed ``config.media.seed + i * seed_stride``.
    The reference model is learned once, on the reference prefix of stream
    0; every stream's live remainder (after its own reference prefix, which
    models the shared warm-up period) is then monitored by a per-stream
    shard over that shared model.

    ``fleet_workers`` overrides ``config.monitor.fleet_workers``: with a
    value > 1 the shards run in a worker-process pool
    (:mod:`repro.analysis.parallel`) — results are bit-identical to the
    serial fleet for any worker count.

    ``ingest`` selects the shard hand-off: ``"objects"`` (default) feeds
    per-window object iterators, ``"columnar"`` converts each simulated
    trace to :class:`~repro.trace.columns.TraceColumns` and drives the
    array-native ingest plane (windows cut by ``searchsorted``, lazy
    materialisation, flat-array worker hand-off).  Results are
    bit-identical either way.
    """
    if n_streams < 1:
        raise ExperimentError("n_streams must be >= 1")
    if ingest not in {"objects", "columnar"}:
        raise ExperimentError(
            f"unknown ingest mode: {ingest!r} (expected 'objects' or 'columnar')"
        )
    config = config or EnduranceConfig.scaled_paper_setup()
    if fleet_workers is not None:
        config = dataclasses.replace(
            config,
            monitor=dataclasses.replace(config.monitor, fleet_workers=fleet_workers),
        )
    _LOGGER.info(
        "running fleet endurance experiment: %d streams x %.0f s media "
        "(%d worker process%s)",
        n_streams,
        config.media.duration_s,
        config.monitor.fleet_workers,
        "" if config.monitor.fleet_workers == 1 else "es",
    )
    traces = []
    for position in range(n_streams):
        stream_config = dataclasses.replace(
            config,
            media=dataclasses.replace(
                config.media, seed=config.media.seed + position * seed_stride
            ),
        )
        traces.append(EnduranceRun(stream_config).run())

    registry = EventTypeRegistry.with_default_types()
    monitor = TraceMonitor(config.detector, config.monitor, registry)
    shards = {}
    reference_windows = None
    if ingest == "columnar":
        boundary = config.monitor.reference_duration_us
        for position, trace in enumerate(traces):
            columns = TraceColumns.from_events(trace.events)
            layout = column_windows_by_duration(
                columns, config.monitor.window_duration_us
            )
            first_live = int(np.searchsorted(layout.end_us, boundary, side="right"))
            if position == 0:
                reference_windows = materialize_layout_windows(
                    columns, layout, 0, first_live
                )
            shards[f"stream-{position:02d}"] = ColumnarWindowSource(
                columns, first_window=first_live
            )
    else:
        for position, trace in enumerate(traces):
            reference, live = trace.stream().split_reference(
                config.monitor.reference_duration_us,
                window_duration_us=config.monitor.window_duration_us,
            )
            if position == 0:
                reference_windows = reference
            shards[f"stream-{position:02d}"] = live
    model = monitor.learn_reference(reference_windows)

    fleet = ShardedTraceMonitor(config.detector, config.monitor, registry)
    fleet_result = fleet.monitor_shards(shards, model, keep_events=keep_events)
    return FleetEnduranceResult(
        config=config,
        traces=traces,
        fleet_result=fleet_result,
        reference_window_count=len(reference_windows),
    )


def run_endurance_experiment(
    config: EnduranceConfig | None = None,
    keep_events: bool = False,
) -> EnduranceExperimentResult:
    """Simulate the endurance run and evaluate the monitor on it."""
    config = config or EnduranceConfig.scaled_paper_setup()
    _LOGGER.info(
        "running endurance experiment: %.0f s media, window %.0f ms, K=%d, alpha=%.2f",
        config.media.duration_s,
        config.monitor.window_duration_us / 1e3,
        config.detector.k_neighbours,
        config.detector.lof_threshold,
    )
    trace = EnduranceRun(config).run()
    if not trace.qos_messages:
        _LOGGER.warning(
            "the endurance run produced no QoS error: perturbations may be too weak"
        )
    return run_experiment_on_trace(trace, config, keep_events=keep_events)
