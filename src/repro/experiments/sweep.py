"""Parameter sweeps over the endurance experiment.

``alpha_sweep`` regenerates the paper's Figure 1 (precision and recall as a
function of the LOF threshold) from a single monitoring pass.  The other
sweeps are the ablation studies listed in DESIGN.md: window size, number of
LOF neighbours ``K``, the KL similarity gate and the reference length.  All
of them reuse a single simulated trace where the parameter does not affect
trace generation, so sweeping stays affordable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

from ..config import EnduranceConfig
from ..errors import ExperimentError
from ..logging_util import get_logger
from ..media.app import EnduranceRun, EnduranceTrace
from .endurance import EnduranceExperimentResult, run_experiment_on_trace

__all__ = [
    "AlphaSweepPoint",
    "SweepPoint",
    "alpha_sweep",
    "window_size_sweep",
    "k_sweep",
    "kl_gate_sweep",
    "reference_length_sweep",
]

_LOGGER = get_logger("experiments.sweep")


@dataclass(frozen=True)
class AlphaSweepPoint:
    """One point of the precision/recall-vs-alpha curve (Figure 1)."""

    alpha: float
    precision: float
    recall: float
    f1: float
    n_flagged: int
    reduction_factor: float

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class SweepPoint:
    """One point of a generic parameter sweep."""

    parameter: str
    value: float | int | bool
    precision: float
    recall: float
    f1: float
    reduction_factor: float
    lof_computation_rate: float = 0.0

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return dataclasses.asdict(self)


def alpha_sweep(
    result: EnduranceExperimentResult,
    alphas: Sequence[float],
) -> list[AlphaSweepPoint]:
    """Evaluate the experiment at every LOF threshold in ``alphas``."""
    if not alphas:
        raise ExperimentError("alpha_sweep needs at least one alpha value")
    points: list[AlphaSweepPoint] = []
    for alpha in alphas:
        metrics = result.metrics_at(alpha)
        n_flagged = sum(
            1 for decision in result.decisions if decision.anomalous_at(alpha)
        )
        points.append(
            AlphaSweepPoint(
                alpha=float(alpha),
                precision=metrics.precision,
                recall=metrics.recall,
                f1=metrics.f1,
                n_flagged=n_flagged,
                reduction_factor=metrics.reduction_factor,
            )
        )
    return points


def _simulate(config: EnduranceConfig) -> EnduranceTrace:
    return EnduranceRun(config).run()


def window_size_sweep(
    config: EnduranceConfig,
    window_durations_us: Sequence[int],
    trace: EnduranceTrace | None = None,
) -> list[SweepPoint]:
    """Ablation A: effect of the window duration on detection quality.

    The window size only affects the monitoring side, so a single simulated
    trace is reused for every window duration.
    """
    if not window_durations_us:
        raise ExperimentError("window_size_sweep needs at least one window duration")
    trace = trace if trace is not None else _simulate(config)
    points: list[SweepPoint] = []
    for duration_us in window_durations_us:
        monitor_config = dataclasses.replace(
            config.monitor, window_duration_us=int(duration_us)
        )
        result = run_experiment_on_trace(
            trace, config, monitor_config=monitor_config
        )
        points.append(_sweep_point("window_duration_us", int(duration_us), result))
    return points


def k_sweep(
    config: EnduranceConfig,
    k_values: Sequence[int],
    trace: EnduranceTrace | None = None,
) -> list[SweepPoint]:
    """Ablation B: effect of the number of LOF neighbours ``K``."""
    if not k_values:
        raise ExperimentError("k_sweep needs at least one K value")
    trace = trace if trace is not None else _simulate(config)
    points: list[SweepPoint] = []
    for k in k_values:
        detector_config = dataclasses.replace(config.detector, k_neighbours=int(k))
        result = run_experiment_on_trace(trace, config, detector_config=detector_config)
        points.append(_sweep_point("k_neighbours", int(k), result))
    return points


def kl_gate_sweep(
    config: EnduranceConfig,
    kl_thresholds: Sequence[float],
    include_disabled_gate: bool = True,
    trace: EnduranceTrace | None = None,
) -> list[SweepPoint]:
    """Ablation C: effect of the KL similarity gate and its threshold.

    The returned points include, when ``include_disabled_gate`` is true, a
    final point with the gate disabled entirely (LOF computed on every
    window) so its cost/quality trade-off is visible.
    """
    if not kl_thresholds and not include_disabled_gate:
        raise ExperimentError("kl_gate_sweep needs at least one configuration")
    trace = trace if trace is not None else _simulate(config)
    points: list[SweepPoint] = []
    for threshold in kl_thresholds:
        detector_config = dataclasses.replace(
            config.detector, kl_threshold=float(threshold), use_kl_gate=True
        )
        result = run_experiment_on_trace(trace, config, detector_config=detector_config)
        points.append(_sweep_point("kl_threshold", float(threshold), result))
    if include_disabled_gate:
        detector_config = dataclasses.replace(config.detector, use_kl_gate=False)
        result = run_experiment_on_trace(trace, config, detector_config=detector_config)
        points.append(_sweep_point("kl_gate_disabled", True, result))
    return points


def reference_length_sweep(
    config: EnduranceConfig,
    reference_durations_s: Sequence[float],
    trace: EnduranceTrace | None = None,
) -> list[SweepPoint]:
    """Effect of the reference-trace length on detection quality.

    Every reference duration must end before the first perturbation starts,
    otherwise the model would learn the anomalous behaviour as normal.
    """
    if not reference_durations_s:
        raise ExperimentError("reference_length_sweep needs at least one duration")
    first_perturbation_s = config.perturbation.start_offset_s
    for duration_s in reference_durations_s:
        if duration_s >= first_perturbation_s:
            raise ExperimentError(
                f"reference duration {duration_s}s overlaps the first perturbation "
                f"at {first_perturbation_s}s"
            )
    trace = trace if trace is not None else _simulate(config)
    points: list[SweepPoint] = []
    for duration_s in reference_durations_s:
        monitor_config = dataclasses.replace(
            config.monitor, reference_duration_us=int(duration_s * 1e6)
        )
        result = run_experiment_on_trace(trace, config, monitor_config=monitor_config)
        points.append(_sweep_point("reference_duration_s", float(duration_s), result))
    return points


def _sweep_point(
    parameter: str, value: float | int | bool, result: EnduranceExperimentResult
) -> SweepPoint:
    _LOGGER.info(
        "%s=%s: precision=%.3f recall=%.3f reduction=%.1fx",
        parameter,
        value,
        result.metrics.precision,
        result.metrics.recall,
        result.monitor_result.report.reduction_factor,
    )
    return SweepPoint(
        parameter=parameter,
        value=value,
        precision=result.metrics.precision,
        recall=result.metrics.recall,
        f1=result.metrics.f1,
        reduction_factor=result.monitor_result.report.reduction_factor,
        lof_computation_rate=result.monitor_result.detector_stats.get(
            "lof_computation_rate", 0.0
        ),
    )
