"""Experiment drivers reproducing the paper's evaluation (Section III)."""

from .endurance import (
    EnduranceExperimentResult,
    FleetEnduranceResult,
    run_endurance_experiment,
    run_experiment_on_trace,
    run_fleet_endurance_experiment,
)
from .sweep import (
    AlphaSweepPoint,
    SweepPoint,
    alpha_sweep,
    k_sweep,
    kl_gate_sweep,
    reference_length_sweep,
    window_size_sweep,
)
from .report import (
    ascii_line_plot,
    format_csv,
    format_table,
    render_alpha_sweep,
    render_headline,
)

__all__ = [
    "EnduranceExperimentResult",
    "FleetEnduranceResult",
    "run_endurance_experiment",
    "run_experiment_on_trace",
    "run_fleet_endurance_experiment",
    "AlphaSweepPoint",
    "SweepPoint",
    "alpha_sweep",
    "k_sweep",
    "kl_gate_sweep",
    "reference_length_sweep",
    "window_size_sweep",
    "format_table",
    "format_csv",
    "ascii_line_plot",
    "render_alpha_sweep",
    "render_headline",
]
