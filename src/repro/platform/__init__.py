"""MPSoC platform substrate: a discrete-event simulator with CPU cores,
a preemptive round-robin scheduler, interrupts, a memory-contention model and
a hardware-tracer model.

The paper's traces come from dedicated tracing hardware observing a real
MPSoC; this subpackage is the simulated stand-in that produces traces with
the same structure (scheduling, IRQ, memory and application events grouped
into hardware-buffer-sized batches).
"""

from .simulator import Simulator, ScheduledEvent
from .cpu import Core
from .task import Task, Job
from .scheduler import RoundRobinScheduler
from .memory import MemoryModel
from .interrupt import TimerInterruptSource
from .tracer import HardwareTracer

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "Core",
    "Task",
    "Job",
    "RoundRobinScheduler",
    "MemoryModel",
    "TimerInterruptSource",
    "HardwareTracer",
]
