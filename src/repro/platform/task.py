"""Tasks (threads) and jobs (units of CPU work) running on the platform.

The multimedia pipeline and the perturbation injector express their CPU needs
as :class:`Job` objects submitted to the scheduler: "task *video-decoder*
needs 8 ms of CPU time, call me back when it is done".  The scheduler
time-shares the cores among pending jobs, so competing load stretches job
completion times exactly the way a real heavy process stretches GStreamer's
decoding times in the paper's experiment.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..errors import SimulationError

__all__ = ["Task", "Job"]

_JOB_IDS = itertools.count()


@dataclass(frozen=True)
class Task:
    """A schedulable entity (thread) on the platform.

    Attributes
    ----------
    name:
        Human-readable task name; it appears in the ``task`` field of trace
        events (e.g. ``"video-decoder"``, ``"cpu-hog"``).
    priority:
        Larger values are scheduled first when several tasks are runnable
        and a core becomes free.  Ties are broken by submission order.
    """

    name: str
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise SimulationError("task name must not be empty")


@dataclass
class Job:
    """A unit of CPU work belonging to a task.

    Attributes
    ----------
    task:
        The owning task.
    service_us:
        Total CPU time required, in microseconds (at nominal core frequency
        and without memory contention).
    on_complete:
        Callback invoked by the scheduler when the job finishes; it receives
        the completion time in microseconds.
    job_id:
        Unique, monotonically increasing identifier (used for deterministic
        tie-breaking and in trace payloads).
    """

    task: Task
    service_us: float
    on_complete: Callable[[int], None] | None = None
    job_id: int = field(default_factory=lambda: next(_JOB_IDS))
    remaining_us: float = field(init=False)
    submitted_at_us: int | None = field(default=None, init=False)
    completed_at_us: int | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.service_us <= 0:
            raise SimulationError(f"job service time must be positive: {self.service_us}")
        self.remaining_us = float(self.service_us)

    @property
    def is_complete(self) -> bool:
        """Whether all requested CPU time has been consumed."""
        return self.remaining_us <= 1e-9

    @property
    def turnaround_us(self) -> float | None:
        """Completion time minus submission time, if both are known."""
        if self.submitted_at_us is None or self.completed_at_us is None:
            return None
        return float(self.completed_at_us - self.submitted_at_us)

    def consume(self, cpu_us: float) -> float:
        """Consume up to ``cpu_us`` of CPU time; return the amount consumed."""
        if cpu_us < 0:
            raise SimulationError(f"negative CPU time: {cpu_us}")
        used = min(cpu_us, self.remaining_us)
        self.remaining_us -= used
        return used
