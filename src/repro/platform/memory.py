"""Memory / interconnect contention model.

When several tasks are runnable at once on the MPSoC they compete not only
for CPU time but also for the memory subsystem.  The model used here is the
standard linear-slowdown approximation: with ``n`` concurrently runnable
tasks, every task's effective progress rate is divided by
``1 + contention_per_task * (n - 1)``.  The model also emits occasional
``mem_stall`` trace events so memory pressure is visible in the event mix the
detector sees (heavier pressure during perturbations shifts the pmf).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError

__all__ = ["MemoryModel"]


@dataclass
class MemoryModel:
    """Linear memory-contention model.

    Attributes
    ----------
    contention_per_task:
        Additional relative slowdown contributed by each extra runnable task.
        0.0 disables contention entirely.
    stall_event_period_us:
        How often (in wall-clock microseconds of contended execution) a
        ``mem_stall`` trace event is emitted.  Stall events are only emitted
        while more than one task is runnable.
    """

    contention_per_task: float = 0.15
    stall_event_period_us: int = 2_000

    def __post_init__(self) -> None:
        if self.contention_per_task < 0:
            raise SimulationError("contention_per_task must be >= 0")
        if self.stall_event_period_us <= 0:
            raise SimulationError("stall_event_period_us must be positive")

    def slowdown(self, n_runnable: int) -> float:
        """Slowdown factor (>= 1) for ``n_runnable`` concurrently runnable tasks."""
        if n_runnable < 0:
            raise SimulationError(f"negative task count: {n_runnable}")
        if n_runnable <= 1:
            return 1.0
        return 1.0 + self.contention_per_task * (n_runnable - 1)

    def effective_speed(self, n_runnable: int) -> float:
        """Relative progress rate (<= 1) under contention."""
        return 1.0 / self.slowdown(n_runnable)

    def stall_events_in(self, wall_us: float, n_runnable: int) -> int:
        """Number of ``mem_stall`` events to emit for ``wall_us`` of execution."""
        if wall_us < 0:
            raise SimulationError(f"negative wall time: {wall_us}")
        if n_runnable <= 1:
            return 0
        return int(wall_us // self.stall_event_period_us)
