"""Hardware tracer model.

Real MPSoC platforms embed low-intrusive tracing hardware that accumulates
events in on-chip buffers and flushes them to the host in batches; the
paper's streaming window size is tied to that buffer size.  The
:class:`HardwareTracer` reproduces this behaviour: components of the platform
and of the multimedia pipeline emit events through it, the tracer groups them
into buffer flushes and exposes the whole capture as an ordered event list
or a :class:`~repro.trace.stream.TraceStream`.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from ..errors import SimulationError
from ..trace.event import TraceEvent
from ..trace.stream import TraceStream

__all__ = ["HardwareTracer"]


class HardwareTracer:
    """Collects trace events emitted by the simulated platform.

    Parameters
    ----------
    buffer_events:
        Capacity of the (simulated) on-chip trace buffer.  The tracer keeps
        track of flush boundaries so downstream consumers can reconstruct the
        by-count windowing the hardware would provide.
    enabled:
        Tracing can be disabled entirely, which is how the "no tracing"
        baseline measures the intrusiveness-free run.
    event_filter:
        Optional set of event-type names the tracer captures; anything else
        is discarded at the source, like the event filtering real tracing
        infrastructures offer (e.g. application-scope vs full-platform
        tracing).  ``None`` captures everything.
    """

    def __init__(
        self,
        buffer_events: int = 256,
        enabled: bool = True,
        event_filter: frozenset[str] | set[str] | None = None,
    ) -> None:
        if buffer_events <= 0:
            raise SimulationError("buffer_events must be positive")
        self.buffer_events = int(buffer_events)
        self.enabled = bool(enabled)
        self.event_filter = frozenset(event_filter) if event_filter is not None else None
        self._events: list[TraceEvent] = []
        self._flush_boundaries: list[int] = []
        self._last_timestamp_us = -1
        self._dropped = 0

    # ------------------------------------------------------------------ #
    # Emission
    # ------------------------------------------------------------------ #
    def emit(
        self,
        timestamp_us: int,
        etype: str,
        core: int = 0,
        task: str = "",
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """Record one event (no-op when tracing is disabled or filtered out)."""
        if not self.enabled:
            self._dropped += 1
            return
        if self.event_filter is not None and str(etype) not in self.event_filter:
            self._dropped += 1
            return
        timestamp_us = int(timestamp_us)
        if timestamp_us < self._last_timestamp_us:
            # Components schedule callbacks at the same simulator instant;
            # clamp tiny reorderings instead of failing the whole run.
            timestamp_us = self._last_timestamp_us
        self._last_timestamp_us = timestamp_us
        self._events.append(
            TraceEvent(
                timestamp_us=timestamp_us,
                etype=str(etype),
                core=core,
                task=task,
                args=dict(args) if args else {},
            )
        )
        if len(self._events) % self.buffer_events == 0:
            self._flush_boundaries.append(len(self._events))

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @property
    def n_events(self) -> int:
        """Number of events captured so far."""
        return len(self._events)

    @property
    def n_dropped(self) -> int:
        """Number of events discarded because tracing was disabled."""
        return self._dropped

    @property
    def flush_count(self) -> int:
        """Number of completed hardware-buffer flushes."""
        return len(self._flush_boundaries)

    def events(self) -> list[TraceEvent]:
        """Return the captured events in timestamp order."""
        return list(self._events)

    def iter_events(self) -> Iterator[TraceEvent]:
        """Iterate over captured events without copying the list."""
        return iter(self._events)

    def stream(self) -> TraceStream:
        """Wrap the capture in a single-pass :class:`TraceStream`."""
        return TraceStream(iter(self._events))

    def buffer_batches(self) -> Iterator[list[TraceEvent]]:
        """Yield events grouped exactly as the hardware buffer flushed them."""
        start = 0
        for boundary in self._flush_boundaries:
            yield self._events[start:boundary]
            start = boundary
        if start < len(self._events):
            yield self._events[start:]

    def clear(self) -> None:
        """Discard all captured events (used between experiment repetitions)."""
        self._events.clear()
        self._flush_boundaries.clear()
        self._last_timestamp_us = -1
        self._dropped = 0
