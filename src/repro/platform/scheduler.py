"""Preemptive round-robin scheduler for the simulated MPSoC.

Tasks submit :class:`~repro.platform.task.Job` objects; the scheduler
time-shares the available cores among pending jobs in fixed quanta, applies
the memory-contention slowdown and emits the kernel-style trace events
(``sched_wakeup``, ``sched_switch``, ``mem_stall``) that make up the bulk of
a real platform trace.

The scheduling discipline is priority round-robin: when a core becomes free
the runnable job with the highest priority (FIFO among equals) gets the next
quantum.  A job that does not finish within its quantum goes back to the end
of its priority class.  This is close enough to Linux CFS behaviour for the
purpose of the paper's experiment: a CPU-bound perturbation task stretches
the decoder's job turnaround times, which is what produces late frames and
QoS errors downstream.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Sequence

from ..errors import SimulationError
from ..trace.event import EventType
from .cpu import Core
from .memory import MemoryModel
from .simulator import Simulator
from .task import Job, Task
from .tracer import HardwareTracer

__all__ = ["RoundRobinScheduler"]


class RoundRobinScheduler:
    """Priority round-robin scheduler over one or more cores."""

    def __init__(
        self,
        simulator: Simulator,
        cores: Sequence[Core],
        tracer: HardwareTracer,
        memory: MemoryModel | None = None,
        quantum_us: int = 4_000,
        context_switch_cost_us: int = 5,
    ) -> None:
        if not cores:
            raise SimulationError("scheduler needs at least one core")
        if quantum_us <= 0:
            raise SimulationError("quantum_us must be positive")
        if context_switch_cost_us < 0:
            raise SimulationError("context_switch_cost_us must be >= 0")
        self.simulator = simulator
        self.cores = list(cores)
        self.tracer = tracer
        self.memory = memory if memory is not None else MemoryModel()
        self.quantum_us = int(quantum_us)
        self.context_switch_cost_us = int(context_switch_cost_us)
        self._ready: Deque[Job] = deque()
        self._running: dict[int, Job] = {}
        self._enqueue_order = itertools.count()
        self._completed_jobs = 0

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, job: Job) -> None:
        """Make ``job`` runnable and dispatch it as soon as a core is free."""
        job.submitted_at_us = self.simulator.now_us
        self.tracer.emit(
            self.simulator.now_us,
            EventType.SCHED_WAKEUP,
            core=0,
            task=job.task.name,
            args={"job": job.job_id},
        )
        self._insert_ready(job)
        self._dispatch()

    def submit_work(
        self, task: Task, service_us: float, on_complete=None
    ) -> Job:
        """Convenience wrapper: build a job for ``task`` and submit it."""
        job = Job(task=task, service_us=service_us, on_complete=on_complete)
        self.submit(job)
        return job

    def _insert_ready(self, job: Job) -> None:
        # Stable priority insert: higher priority first, FIFO within a class.
        if not self._ready or job.task.priority <= self._ready[-1].task.priority:
            self._ready.append(job)
            return
        inserted = False
        new_queue: Deque[Job] = deque()
        for queued in self._ready:
            if not inserted and job.task.priority > queued.task.priority:
                new_queue.append(job)
                inserted = True
            new_queue.append(queued)
        if not inserted:
            new_queue.append(job)
        self._ready = new_queue

    # ------------------------------------------------------------------ #
    # Dispatch / execution
    # ------------------------------------------------------------------ #
    @property
    def n_runnable(self) -> int:
        """Jobs currently runnable (running or waiting for a core)."""
        return len(self._ready) + len(self._running)

    @property
    def completed_jobs(self) -> int:
        """Total number of jobs that ran to completion."""
        return self._completed_jobs

    def _idle_cores(self) -> list[Core]:
        return [core for core in self.cores if core.index not in self._running]

    def _dispatch(self) -> None:
        for core in self._idle_cores():
            if not self._ready:
                return
            job = self._ready.popleft()
            self._start_slice(core, job)

    def _start_slice(self, core: Core, job: Job) -> None:
        now = self.simulator.now_us
        previous_task = core.current_task or "idle"
        self._running[core.index] = job
        core.current_task = job.task.name
        core.context_switches += 1
        self.tracer.emit(
            now,
            EventType.SCHED_SWITCH,
            core=core.index,
            task=job.task.name,
            args={"prev": previous_task, "job": job.job_id},
        )

        slowdown = self.memory.slowdown(self.n_runnable)
        # Wall time needed to finish the job on this core under contention.
        wall_to_finish = core.wall_time_for(job.remaining_us) * slowdown
        slice_wall = min(float(self.quantum_us), wall_to_finish)
        slice_wall = max(slice_wall, 1.0)

        for stall_index in range(
            self.memory.stall_events_in(slice_wall, self.n_runnable)
        ):
            stall_time = now + int(
                (stall_index + 1) * self.memory.stall_event_period_us
            )
            self.tracer.emit(
                stall_time,
                EventType.MEM_STALL,
                core=core.index,
                task=job.task.name,
                args={"runnable": self.n_runnable},
            )

        end_time = now + self.context_switch_cost_us + int(round(slice_wall))
        self.simulator.schedule_at(
            end_time, lambda: self._end_slice(core, job, slice_wall, slowdown)
        )

    def _end_slice(self, core: Core, job: Job, slice_wall: float, slowdown: float) -> None:
        now = self.simulator.now_us
        consumed = core.service_in(slice_wall) / slowdown
        job.consume(consumed)
        core.account_busy(slice_wall)
        if self._running.get(core.index) is not job:
            raise SimulationError("scheduler bookkeeping corrupted (core/job mismatch)")
        del self._running[core.index]
        core.current_task = None

        if job.is_complete:
            job.completed_at_us = now
            self._completed_jobs += 1
            if job.on_complete is not None:
                job.on_complete(now)
        else:
            self._insert_ready(job)
        self._dispatch()
