"""A minimal, deterministic discrete-event simulation engine.

The engine keeps a priority queue of ``(time, sequence, callback)`` entries.
Callbacks scheduled for the same instant execute in scheduling order, which
makes every simulation fully deterministic for a given seed — an essential
property for reproducible experiments and tests.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..errors import SimulationError

__all__ = ["Simulator", "ScheduledEvent"]


@dataclass(order=True)
class ScheduledEvent:
    """An entry in the simulator's event queue.

    Instances are ordered by ``(time_us, sequence)`` so that simultaneous
    events run in the order they were scheduled.  Cancelling an event marks
    it instead of removing it from the heap (lazy deletion).
    """

    time_us: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the callback from running when its time comes."""
        self.cancelled = True


class Simulator:
    """Discrete-event simulator with microsecond resolution."""

    def __init__(self, start_us: int = 0) -> None:
        self._now_us = int(start_us)
        self._queue: list[ScheduledEvent] = []
        self._sequence = itertools.count()
        self._running = False
        self._processed = 0

    # ------------------------------------------------------------------ #
    # Time
    # ------------------------------------------------------------------ #
    @property
    def now_us(self) -> int:
        """Current simulation time in microseconds."""
        return self._now_us

    @property
    def now_s(self) -> float:
        """Current simulation time in seconds."""
        return self._now_us / 1e6

    @property
    def processed_events(self) -> int:
        """Number of callbacks executed so far (diagnostic)."""
        return self._processed

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule_at(self, time_us: int, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` to run at absolute time ``time_us``."""
        time_us = int(time_us)
        if time_us < self._now_us:
            raise SimulationError(
                f"cannot schedule in the past (now={self._now_us}, requested={time_us})"
            )
        event = ScheduledEvent(time_us, next(self._sequence), callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(self, delay_us: int, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay_us`` microseconds from now."""
        if delay_us < 0:
            raise SimulationError(f"negative delay: {delay_us}")
        return self.schedule_at(self._now_us + int(delay_us), callback)

    def schedule_periodic(
        self,
        period_us: int,
        callback: Callable[[], None],
        start_us: int | None = None,
        until_us: int | None = None,
    ) -> None:
        """Schedule ``callback`` every ``period_us`` starting at ``start_us``.

        The recurrence stops when ``until_us`` (if given) is reached or when
        the simulation runs out of other events and :meth:`run` is bounded.
        """
        if period_us <= 0:
            raise SimulationError("period_us must be positive")
        first = self._now_us if start_us is None else int(start_us)

        def _tick(time_us: int) -> None:
            if until_us is not None and time_us > until_us:
                return
            callback()
            next_time = time_us + period_us
            if until_us is None or next_time <= until_us:
                self.schedule_at(next_time, lambda: _tick(next_time))

        self.schedule_at(first, lambda: _tick(first))

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Run the next pending event; return ``False`` if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time_us < self._now_us:
                raise SimulationError("event queue went backwards in time")
            self._now_us = event.time_us
            event.callback()
            self._processed += 1
            return True
        return False

    def run(self, until_us: int | None = None, max_events: int | None = None) -> int:
        """Run events until the queue is empty or ``until_us`` is reached.

        Returns the number of callbacks executed by this call.  ``max_events``
        guards against runaway simulations in tests.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        executed = 0
        try:
            while self._queue:
                next_event = self._queue[0]
                if next_event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until_us is not None and next_event.time_us > until_us:
                    break
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"simulation exceeded max_events={max_events}"
                    )
                self.step()
                executed += 1
            if until_us is not None and self._now_us < until_us:
                self._now_us = int(until_us)
        finally:
            self._running = False
        return executed

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (diagnostic)."""
        return sum(1 for event in self._queue if not event.cancelled)
