"""CPU core model.

A core scales job service times by its frequency relative to the nominal
frequency and keeps simple utilisation accounting used by experiment reports
and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError

__all__ = ["Core"]

#: Reference frequency against which job service times are expressed.
NOMINAL_FREQUENCY_MHZ = 2000


@dataclass
class Core:
    """A single CPU core of the simulated MPSoC.

    Attributes
    ----------
    index:
        Core number, also recorded in the ``core`` field of trace events.
    frequency_mhz:
        Core clock; service times are expressed at
        :data:`NOMINAL_FREQUENCY_MHZ` and scaled accordingly.
    """

    index: int
    frequency_mhz: int = NOMINAL_FREQUENCY_MHZ
    busy_us: float = field(default=0.0, init=False)
    current_task: str | None = field(default=None, init=False)
    context_switches: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.index < 0:
            raise SimulationError(f"core index must be >= 0: {self.index}")
        if self.frequency_mhz <= 0:
            raise SimulationError(f"core frequency must be positive: {self.frequency_mhz}")

    @property
    def speed_factor(self) -> float:
        """How much faster (>1) or slower (<1) than the nominal core this core is."""
        return self.frequency_mhz / NOMINAL_FREQUENCY_MHZ

    def wall_time_for(self, service_us: float) -> float:
        """Wall-clock time needed to execute ``service_us`` of nominal CPU work."""
        if service_us < 0:
            raise SimulationError(f"negative service time: {service_us}")
        return service_us / self.speed_factor

    def service_in(self, wall_us: float) -> float:
        """Nominal CPU work completed in ``wall_us`` of wall-clock time."""
        if wall_us < 0:
            raise SimulationError(f"negative wall time: {wall_us}")
        return wall_us * self.speed_factor

    def account_busy(self, wall_us: float) -> None:
        """Record ``wall_us`` of busy time for utilisation accounting."""
        if wall_us < 0:
            raise SimulationError(f"negative busy time: {wall_us}")
        self.busy_us += wall_us

    def utilisation(self, elapsed_us: float) -> float:
        """Fraction of ``elapsed_us`` this core spent busy (clamped to [0, 1])."""
        if elapsed_us <= 0:
            return 0.0
        return min(1.0, self.busy_us / elapsed_us)
