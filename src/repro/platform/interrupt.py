"""Interrupt sources.

Real platform traces contain a steady background of timer interrupts and
device IRQs.  That background matters for the reproduction: it gives every
window a baseline event mix against which application-level shifts are
measured, exactly like on the paper's laptop where kernel activity is always
present in the trace.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..trace.event import EventType
from .simulator import Simulator
from .tracer import HardwareTracer

__all__ = ["TimerInterruptSource"]


class TimerInterruptSource:
    """Periodic timer interrupt generator.

    Every ``period_us`` the source emits an ``irq_enter`` / ``timer_tick`` /
    ``irq_exit`` triplet on the configured core, mimicking the kernel tick.
    """

    def __init__(
        self,
        simulator: Simulator,
        tracer: HardwareTracer,
        period_us: int = 10_000,
        core: int = 0,
        irq_number: int = 30,
        service_time_us: int = 3,
    ) -> None:
        if period_us <= 0:
            raise SimulationError("period_us must be positive")
        if service_time_us < 0:
            raise SimulationError("service_time_us must be >= 0")
        self.simulator = simulator
        self.tracer = tracer
        self.period_us = int(period_us)
        self.core = int(core)
        self.irq_number = int(irq_number)
        self.service_time_us = int(service_time_us)
        self.ticks = 0

    def start(self, until_us: int) -> None:
        """Schedule ticks from now until ``until_us``."""
        self.simulator.schedule_periodic(
            self.period_us, self._tick, start_us=self.simulator.now_us + self.period_us,
            until_us=until_us,
        )

    def _tick(self) -> None:
        now = self.simulator.now_us
        self.ticks += 1
        self.tracer.emit(
            now, EventType.IRQ_ENTER, core=self.core, args={"irq": self.irq_number}
        )
        self.tracer.emit(now, EventType.TIMER_TICK, core=self.core, args={"tick": self.ticks})
        self.tracer.emit(
            now + self.service_time_us,
            EventType.IRQ_EXIT,
            core=self.core,
            args={"irq": self.irq_number},
        )
