"""Synthetic trace generators.

The full endurance experiment uses the MPSoC + multimedia simulator
(:mod:`repro.platform` and :mod:`repro.media`), but many tests and the
throughput benchmarks only need *statistically controlled* traces: events
drawn from a known event-type distribution at a known rate, with optional
anomalous segments whose distribution is shifted.  These generators provide
exactly that, with deterministic seeding.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError
from .event import TraceEvent

__all__ = ["SyntheticTraceGenerator", "PeriodicTraceGenerator"]


def _normalise_mix(mix: Mapping[str, float]) -> tuple[tuple[str, ...], np.ndarray]:
    if not mix:
        raise ConfigurationError("event mix must not be empty")
    names = tuple(str(name) for name in mix)
    weights = np.array([float(mix[name]) for name in mix], dtype=float)
    if np.any(weights < 0):
        raise ConfigurationError("event mix weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ConfigurationError("event mix weights must not all be zero")
    return names, weights / total


class SyntheticTraceGenerator:
    """Generate events from a stationary event-type distribution.

    Parameters
    ----------
    event_mix:
        Mapping from event-type name to (unnormalised) weight.
    rate_per_s:
        Mean number of events per second (Poisson arrivals).
    seed:
        Seed of the internal random generator (deterministic output).
    """

    def __init__(
        self,
        event_mix: Mapping[str, float],
        rate_per_s: float = 10_000.0,
        seed: int = 0,
    ) -> None:
        if rate_per_s <= 0:
            raise ConfigurationError("rate_per_s must be positive")
        self.names, self.probabilities = _normalise_mix(event_mix)
        self.rate_per_s = float(rate_per_s)
        self.seed = int(seed)

    def events(self, duration_s: float, start_us: int = 0) -> Iterator[TraceEvent]:
        """Yield events covering ``duration_s`` seconds starting at ``start_us``."""
        if duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        rng = np.random.default_rng(self.seed)
        end_us = start_us + int(duration_s * 1e6)
        mean_gap_us = 1e6 / self.rate_per_s
        timestamp = float(start_us)
        while True:
            timestamp += rng.exponential(mean_gap_us)
            if timestamp >= end_us:
                return
            name = self.names[int(rng.choice(len(self.names), p=self.probabilities))]
            yield TraceEvent(timestamp_us=int(timestamp), etype=name, core=0, task="synthetic")

    def anomalous_variant(
        self, shift: Mapping[str, float], seed_offset: int = 1
    ) -> "SyntheticTraceGenerator":
        """Return a generator whose mix is shifted by ``shift`` (additive weights)."""
        base = {name: float(p) for name, p in zip(self.names, self.probabilities)}
        for name, delta in shift.items():
            base[str(name)] = max(0.0, base.get(str(name), 0.0) + float(delta))
        return SyntheticTraceGenerator(
            base, rate_per_s=self.rate_per_s, seed=self.seed + seed_offset
        )


class PeriodicTraceGenerator:
    """Generate a trace alternating between a normal and an anomalous regime.

    The generator emits ``normal_mix`` events everywhere except inside the
    ``anomaly_intervals``, where ``anomaly_mix`` (and optionally a different
    rate) is used instead.  This mirrors the structure of the paper's
    experiment — regular decoding punctuated by perturbation windows — while
    remaining cheap enough for unit tests and micro-benchmarks.
    """

    def __init__(
        self,
        normal_mix: Mapping[str, float],
        anomaly_mix: Mapping[str, float],
        anomaly_intervals: Sequence[tuple[float, float]],
        rate_per_s: float = 10_000.0,
        anomaly_rate_per_s: float | None = None,
        seed: int = 0,
    ) -> None:
        if rate_per_s <= 0:
            raise ConfigurationError("rate_per_s must be positive")
        self.normal_names, self.normal_probabilities = _normalise_mix(normal_mix)
        self.anomaly_names, self.anomaly_probabilities = _normalise_mix(anomaly_mix)
        self.rate_per_s = float(rate_per_s)
        self.anomaly_rate_per_s = float(anomaly_rate_per_s or rate_per_s)
        self.seed = int(seed)
        self.anomaly_intervals: list[tuple[float, float]] = []
        for start_s, end_s in anomaly_intervals:
            if end_s <= start_s:
                raise ConfigurationError(
                    f"anomaly interval end before start: ({start_s}, {end_s})"
                )
            self.anomaly_intervals.append((float(start_s), float(end_s)))
        self.anomaly_intervals.sort()

    def _in_anomaly(self, timestamp_us: float) -> bool:
        t_s = timestamp_us / 1e6
        for start_s, end_s in self.anomaly_intervals:
            if start_s <= t_s < end_s:
                return True
            if t_s < start_s:
                return False
        return False

    def events(self, duration_s: float, start_us: int = 0) -> Iterator[TraceEvent]:
        """Yield events covering ``duration_s`` seconds starting at ``start_us``."""
        if duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        rng = np.random.default_rng(self.seed)
        end_us = start_us + int(duration_s * 1e6)
        timestamp = float(start_us)
        while True:
            anomalous = self._in_anomaly(timestamp)
            rate = self.anomaly_rate_per_s if anomalous else self.rate_per_s
            timestamp += rng.exponential(1e6 / rate)
            if timestamp >= end_us:
                return
            anomalous = self._in_anomaly(timestamp)
            if anomalous:
                names, probabilities = self.anomaly_names, self.anomaly_probabilities
                task = "anomaly"
            else:
                names, probabilities = self.normal_names, self.normal_probabilities
                task = "normal"
            name = names[int(rng.choice(len(names), p=probabilities))]
            yield TraceEvent(timestamp_us=int(timestamp), etype=name, core=0, task=task)
