"""Trace codecs and size accounting.

The paper's headline result is a *size* reduction: 418 MB of recorded trace
instead of 5.9 GB.  To reproduce that metric meaningfully the library gives
every event a realistic serialised size.  Two codecs are provided:

* :class:`BinaryTraceCodec` — a compact binary encoding close to what real
  trace infrastructures (CTF/STP) produce: varint-encoded timestamp deltas, a
  one/two byte event-type code, small packed payloads.  This codec defines
  the *byte* sizes used by the recorder and the reduction-factor metric.
* :class:`JsonTraceCodec` — a human-readable JSON-lines encoding used for
  debugging and for the file reader/writer round-trip tests.

Both codecs are lossless for the event fields they encode and are exercised
by round-trip property tests.
"""

from __future__ import annotations

import json
import struct
from typing import TYPE_CHECKING, Iterable, Iterator

from ..errors import TraceFormatError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .columns import TraceColumns
from .event import EventTypeRegistry, TraceEvent
from .window import TraceWindow

__all__ = [
    "BinaryTraceCodec",
    "JsonTraceCodec",
    "encoded_event_size",
    "encoded_trace_size",
    "encoded_window_sizes",
]

_MAGIC = b"RTRC"
_VERSION = 1


def _encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a little-endian base-128 varint."""
    if value < 0:
        raise TraceFormatError(f"cannot varint-encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _check_core_range(core: int) -> None:
    """Reject core indices the codec's fixed 1-byte core field cannot hold.

    The core used to be silently masked with ``0xFF``, so core 300 round-
    tripped as 44 with no error; the 1-byte accounting stays exact because
    out-of-range cores are now rejected instead of truncated.
    """
    if not 0 <= core <= 0xFF:
        raise TraceFormatError(
            f"core index {core} does not fit the codec's 1-byte core field "
            "(valid range 0-255)"
        )


def _parse_segment_header(data: bytes, offset: int) -> tuple["EventTypeRegistry", int, int]:
    """Parse one binary-segment header; return (registry, count, body offset).

    Single definition of the segment-header walk (magic, header length,
    version, registry validation) shared by the object decoder
    (:meth:`BinaryTraceCodec.decode`) and the columnar decoder
    (:func:`~repro.trace.columns.decode_binary_columns`), so the two can
    never diverge on the format.
    """
    if data[offset : offset + 4] != _MAGIC:
        raise TraceFormatError(
            "not a binary trace (bad magic)"
            if offset == 0
            else "trailing bytes after binary trace segment (bad magic)"
        )
    if offset + 8 > len(data):
        raise TraceFormatError("truncated binary trace header")
    (header_len,) = struct.unpack("<I", data[offset + 4 : offset + 8])
    header_end = offset + 8 + header_len
    if header_end > len(data):
        raise TraceFormatError("truncated binary trace header")
    try:
        header = json.loads(data[offset + 8 : header_end].decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise TraceFormatError("malformed binary trace header") from exc
    if header.get("version") != _VERSION:
        raise TraceFormatError(f"unsupported trace version: {header.get('version')}")
    registry = EventTypeRegistry.from_dict(header.get("registry", {}))
    return registry, int(header.get("count", 0)), header_end


def _decode_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode a varint starting at ``offset``; return (value, new offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise TraceFormatError("truncated varint in binary trace")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise TraceFormatError("varint too long in binary trace")


class BinaryTraceCodec:
    """Compact binary encoding of trace events.

    Events are encoded as::

        varint  timestamp delta (us, relative to the previous event)
        varint  event-type code
        u8      core index
        varint  length of the task name,  followed by its UTF-8 bytes
        varint  length of the JSON payload, followed by its UTF-8 bytes

    The first event of a buffer uses its absolute timestamp as the delta.
    Payloads are JSON because they are tiny and heterogeneous; real systems
    pack them, but the ~constant overhead does not change reduction ratios.
    """

    def __init__(self, registry: EventTypeRegistry | None = None) -> None:
        self.registry = registry if registry is not None else EventTypeRegistry()

    # -- single event -------------------------------------------------- #
    def encode_event(self, event: TraceEvent, previous_timestamp_us: int = 0) -> bytes:
        """Encode one event relative to ``previous_timestamp_us``."""
        delta = event.timestamp_us - previous_timestamp_us
        if delta < 0:
            raise TraceFormatError(
                "events must be encoded in timestamp order "
                f"({event.timestamp_us} after {previous_timestamp_us})"
            )
        _check_core_range(event.core)
        code = self.registry.register(event.etype)
        task_bytes = event.task.encode("utf-8")
        payload_bytes = (
            json.dumps(dict(event.args), sort_keys=True, separators=(",", ":")).encode("utf-8")
            if event.args
            else b""
        )
        parts = [
            _encode_varint(delta),
            _encode_varint(code),
            struct.pack("B", event.core),
            _encode_varint(len(task_bytes)),
            task_bytes,
            _encode_varint(len(payload_bytes)),
            payload_bytes,
        ]
        return b"".join(parts)

    def decode_event(
        self, data: bytes, offset: int, previous_timestamp_us: int
    ) -> tuple[TraceEvent, int]:
        """Decode one event starting at ``offset``; return (event, new offset)."""
        delta, offset = _decode_varint(data, offset)
        code, offset = _decode_varint(data, offset)
        if offset >= len(data):
            raise TraceFormatError("truncated event record")
        core = data[offset]
        offset += 1
        task_len, offset = _decode_varint(data, offset)
        if offset + task_len > len(data):
            raise TraceFormatError("truncated event record")
        task = data[offset : offset + task_len].decode("utf-8")
        offset += task_len
        payload_len, offset = _decode_varint(data, offset)
        if offset + payload_len > len(data):
            raise TraceFormatError("truncated event record")
        payload_raw = data[offset : offset + payload_len]
        offset += payload_len
        try:
            args = json.loads(payload_raw.decode("utf-8")) if payload_len else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise TraceFormatError("malformed event payload in binary trace") from exc
        event = TraceEvent(
            timestamp_us=previous_timestamp_us + delta,
            etype=self.registry.name(code),
            core=core,
            task=task,
            args=args,
        )
        return event, offset

    # -- whole traces --------------------------------------------------- #
    def encode(self, events: Iterable[TraceEvent]) -> bytes:
        """Encode an event sequence as a self-describing binary blob."""
        body = bytearray()
        previous = 0
        count = 0
        for event in events:
            body += self.encode_event(event, previous)
            previous = event.timestamp_us
            count += 1
        header = {
            "version": _VERSION,
            "count": count,
            "registry": self.registry.to_dict(),
        }
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        return b"".join(
            [_MAGIC, struct.pack("<I", len(header_bytes)), header_bytes, bytes(body)]
        )

    def decode(self, data: bytes) -> list[TraceEvent]:
        """Decode a blob produced by :meth:`encode`.

        Concatenations of several such blobs (*segments*) are decoded as one
        event sequence: each segment carries its own registry and restarts
        its timestamp deltas, which is what the binary recording sink writes
        (one segment per recorded window).  Trailing bytes that do not start
        a new segment raise :class:`~repro.errors.TraceFormatError`.
        """
        if data[:4] != _MAGIC:
            raise TraceFormatError("not a binary trace (bad magic)")
        events: list[TraceEvent] = []
        offset = 0
        while offset < len(data):
            registry, count, offset = _parse_segment_header(data, offset)
            codec = BinaryTraceCodec(registry)
            previous = 0
            for _ in range(count):
                event, offset = codec.decode_event(data, offset, previous)
                previous = event.timestamp_us
                events.append(event)
        return events

    def decode_columns(self, data: bytes) -> "TraceColumns":
        """Decode a binary trace straight into flat arrays.

        Returns a :class:`~repro.trace.columns.TraceColumns` whose arrays
        are bit-identical to what :meth:`decode` would produce — one walk
        over the varint records, no per-event objects, no JSON payload
        parsing (payloads are only length-skipped; they are parsed lazily
        if a window is ever materialised).
        """
        from .columns import decode_binary_columns

        return decode_binary_columns(data)

    def event_size(self, event: TraceEvent, previous_timestamp_us: int = 0) -> int:
        """Size in bytes of ``event`` under this codec."""
        return len(self.encode_event(event, previous_timestamp_us))


class JsonTraceCodec:
    """JSON-lines encoding of trace events (one JSON object per line)."""

    def encode_event(self, event: TraceEvent) -> str:
        """Encode one event as a JSON line (without trailing newline)."""
        return json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))

    def decode_event(self, line: str) -> TraceEvent:
        """Decode one JSON line back into an event."""
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"malformed JSON event line: {line!r}") from exc
        return TraceEvent.from_dict(data)

    def encode_events(self, events: Iterable[TraceEvent]) -> str:
        """Encode a batch of events as one newline-terminated JSON-lines block.

        Every line ends with ``"\\n"`` (unlike :meth:`encode`, which joins
        without a trailing newline), so the result of consecutive calls can
        be concatenated and written to a JSON-lines file in a single write.
        An empty event sequence yields the empty string.
        """
        encode_event = self.encode_event
        return "".join([encode_event(event) + "\n" for event in events])

    def encoded_sizes(self, events: Iterable[TraceEvent]) -> list[int]:
        """UTF-8 byte size of each event's JSON line (newline excluded)."""
        encode_event = self.encode_event
        return [len(encode_event(event).encode("utf-8")) for event in events]

    def encode(self, events: Iterable[TraceEvent]) -> str:
        """Encode an event sequence as newline-separated JSON objects."""
        return "\n".join(self.encode_event(event) for event in events)

    def decode(self, text: str) -> Iterator[TraceEvent]:
        """Decode the output of :meth:`encode` lazily."""
        for line in text.splitlines():
            line = line.strip()
            if line:
                yield self.decode_event(line)

    def decode_columns(self, text: str) -> "TraceColumns":
        """Decode a JSON-lines trace straight into flat arrays.

        Returns a :class:`~repro.trace.columns.TraceColumns` equivalent to
        materialising every line with :meth:`decode_event` — one
        ``json.loads`` per line, but no :class:`TraceEvent` objects on the
        hot path.
        """
        from .columns import decode_json_columns

        return decode_json_columns(text)


def encoded_event_size(event: TraceEvent, previous_timestamp_us: int = 0) -> int:
    """Convenience wrapper: binary-encoded size of a single event in bytes."""
    return BinaryTraceCodec().event_size(event, previous_timestamp_us)


def _varint_size(value: int) -> int:
    """Length in bytes of ``_encode_varint(value)``, computed arithmetically."""
    if value < 0x80:
        return 1
    return (value.bit_length() + 6) // 7


def encoded_trace_size(events: Iterable[TraceEvent]) -> int:
    """Total binary-encoded size of an event sequence (excluding file header).

    Sizes are computed with delta timestamps exactly as the recorder does, so
    the full-trace size and the sum of recorded-window sizes are directly
    comparable.

    The size is computed arithmetically — varint lengths, cached task-name
    lengths, payload JSON lengths — without materialising any encoded bytes;
    the result is bit-identical to summing
    :meth:`BinaryTraceCodec.event_size` over the events with one shared
    codec (the property suite asserts this).  Byte accounting is on the
    monitoring hot path (every window is sized, recorded or not), so the
    dominant cost must be a few integer operations per event, not an
    encode-and-discard pass.
    """
    total = 0
    previous = 0
    codes: dict[str, int] = {}
    task_sizes: dict[str, int] = {}
    for event in events:
        delta = event.timestamp_us - previous
        if delta < 0:
            raise TraceFormatError(
                "events must be encoded in timestamp order "
                f"({event.timestamp_us} after {previous})"
            )
        previous = event.timestamp_us
        _check_core_range(event.core)
        code = codes.setdefault(event.etype, len(codes))
        task = event.task
        task_size = task_sizes.get(task)
        if task_size is None:
            task_length = len(task.encode("utf-8"))
            task_size = _varint_size(task_length) + task_length
            task_sizes[task] = task_size
        if event.args:
            # json.dumps escapes non-ASCII by default, so the string length
            # equals the UTF-8 byte length.
            payload_length = len(
                json.dumps(dict(event.args), sort_keys=True, separators=(",", ":"))
            )
            payload_size = _varint_size(payload_length) + payload_length
        else:
            payload_size = 1
        total += _varint_size(delta) + _varint_size(code) + 1 + task_size + payload_size
    return total


def encoded_window_sizes(windows: Iterable[TraceWindow]) -> list[int]:
    """Binary-encoded size of each window in a batch, in window order.

    Each window is sized with a fresh codec (fresh registry, delta timestamps
    restarting at the window boundary) exactly like a standalone
    :func:`encoded_trace_size` call, so batched and per-window byte
    accounting are bit-identical.
    """
    return [encoded_trace_size(window.events) for window in windows]
