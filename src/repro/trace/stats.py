"""Descriptive statistics over traces and windows.

These summaries are used by the experiment reports (event mix of a run,
event rates, encoded sizes) and by the CLI ``repro-trace stats`` command.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from .codec import BinaryTraceCodec
from .event import TraceEvent
from .window import TraceWindow

__all__ = ["TraceStatistics", "summarize", "summarize_windows"]


@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics of a trace (or a portion of one).

    Attributes
    ----------
    n_events:
        Total number of events.
    duration_us:
        Time spanned by the events (0 for empty traces).
    first_timestamp_us / last_timestamp_us:
        Timestamps of the first and last event (0 for empty traces).
    type_counts:
        Number of events per event type.
    task_counts:
        Number of events per task name.
    core_counts:
        Number of events per core index.
    encoded_bytes:
        Size of the trace under the compact binary codec.
    """

    n_events: int
    duration_us: int
    first_timestamp_us: int
    last_timestamp_us: int
    type_counts: Mapping[str, int] = field(default_factory=dict)
    task_counts: Mapping[str, int] = field(default_factory=dict)
    core_counts: Mapping[int, int] = field(default_factory=dict)
    encoded_bytes: int = 0

    @property
    def duration_s(self) -> float:
        """Duration in seconds."""
        return self.duration_us / 1e6

    @property
    def events_per_second(self) -> float:
        """Mean event rate; 0 for traces shorter than one microsecond."""
        if self.duration_us <= 0:
            return 0.0
        return self.n_events / self.duration_s

    @property
    def bytes_per_second(self) -> float:
        """Mean encoded trace bandwidth; 0 for empty or instantaneous traces."""
        if self.duration_us <= 0:
            return 0.0
        return self.encoded_bytes / self.duration_s

    def type_fraction(self, etype: str) -> float:
        """Fraction of events of type ``etype`` (0 for empty traces)."""
        if self.n_events == 0:
            return 0.0
        return self.type_counts.get(str(etype), 0) / self.n_events

    def to_dict(self) -> dict:
        """Return a JSON-serialisable representation."""
        return {
            "n_events": self.n_events,
            "duration_us": self.duration_us,
            "first_timestamp_us": self.first_timestamp_us,
            "last_timestamp_us": self.last_timestamp_us,
            "type_counts": dict(self.type_counts),
            "task_counts": dict(self.task_counts),
            "core_counts": {str(core): count for core, count in self.core_counts.items()},
            "encoded_bytes": self.encoded_bytes,
        }


def summarize(events: Iterable[TraceEvent]) -> TraceStatistics:
    """Compute :class:`TraceStatistics` over an event iterable (single pass)."""
    codec = BinaryTraceCodec()
    type_counts: Counter[str] = Counter()
    task_counts: Counter[str] = Counter()
    core_counts: Counter[int] = Counter()
    n_events = 0
    first_ts = 0
    last_ts = 0
    encoded_bytes = 0
    previous = 0

    for event in events:
        if n_events == 0:
            first_ts = event.timestamp_us
        last_ts = event.timestamp_us
        n_events += 1
        type_counts[event.etype] += 1
        if event.task:
            task_counts[event.task] += 1
        core_counts[event.core] += 1
        encoded_bytes += codec.event_size(event, previous)
        previous = event.timestamp_us

    duration = last_ts - first_ts if n_events else 0
    return TraceStatistics(
        n_events=n_events,
        duration_us=duration,
        first_timestamp_us=first_ts,
        last_timestamp_us=last_ts,
        type_counts=dict(type_counts),
        task_counts=dict(task_counts),
        core_counts=dict(core_counts),
        encoded_bytes=encoded_bytes,
    )


def summarize_windows(windows: Iterable[TraceWindow]) -> TraceStatistics:
    """Compute statistics over the events contained in ``windows``."""

    def _events() -> Iterator[TraceEvent]:
        for window in windows:
            yield from window.events

    return summarize(_events())
