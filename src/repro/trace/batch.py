"""Columnar window batches: the trace side of the vectorized scoring plane.

The per-window objects (:class:`~repro.trace.window.TraceWindow` wrapping
:class:`~repro.trace.event.TraceEvent` instances) are convenient but slow to
score one at a time: every window costs a Python loop over its events plus a
handful of small-object allocations.  :class:`WindowBatch` is the columnar
alternative — a micro-batch of consecutive windows stored as flat NumPy
arrays:

* ``codes`` — one ``int32`` event-type code per event, all windows
  concatenated in stream order;
* ``offsets`` — CSR-style window boundaries into ``codes``
  (window ``i`` owns ``codes[offsets[i]:offsets[i + 1]]``);
* ``indices`` / ``start_us`` / ``end_us`` — per-window metadata arrays;
* ``dims`` — the registry size observed right after each window's events
  were registered, so downstream consumers can reproduce the exact
  sequential registry-growth semantics of the per-window path.

The analysis layer turns a batch into a counts matrix with one ``bincount``
(:func:`~repro.analysis.pmf.pmf_matrix`) instead of one Python loop per
window.  A batch built with :meth:`WindowBatch.from_windows` keeps the source
windows, so it round-trips losslessly back to :class:`TraceWindow` objects
for the recorder.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from ..errors import TraceFormatError, TraceStreamError
from .codec import encoded_window_sizes
from .event import EventTypeRegistry, TraceEvent
from .window import TraceWindow

__all__ = ["WindowBatch", "LazyWindowRef", "batch_windows"]


class WindowBatch:
    """A micro-batch of consecutive trace windows in columnar form.

    Parameters
    ----------
    codes:
        Concatenated ``int32`` event-type codes, in event order.
    offsets:
        Window boundaries into ``codes``; length ``n_windows + 1``, starting
        at 0, non-decreasing, ending at ``len(codes)``.
    indices / start_us / end_us:
        Per-window stream index and time extent.
    dims:
        Per-window effective registry size (registry length right after the
        window's events were registered).  Defaults to ``dimension`` for
        every window when omitted.
    dimension:
        Number of event types the codes were assigned against (the registry
        size when the batch was built).  Defaults to ``codes.max() + 1``.
    windows:
        Optional source :class:`TraceWindow` objects for round-tripping.
    """

    __slots__ = ("codes", "offsets", "indices", "start_us", "end_us", "dims",
                 "dimension", "_windows", "_sizes", "_factory", "_lazy_cache")

    def __init__(
        self,
        codes: np.ndarray,
        offsets: np.ndarray,
        indices: np.ndarray,
        start_us: np.ndarray,
        end_us: np.ndarray,
        dims: np.ndarray | None = None,
        dimension: int | None = None,
        windows: Sequence[TraceWindow] | None = None,
        window_sizes: np.ndarray | None = None,
        window_factory: Callable[[int], TraceWindow] | None = None,
    ) -> None:
        self.codes = np.asarray(codes, dtype=np.int32)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.start_us = np.asarray(start_us, dtype=np.int64)
        self.end_us = np.asarray(end_us, dtype=np.int64)
        n = len(self.offsets) - 1
        if n < 0:
            raise TraceFormatError("offsets must contain at least one entry")
        for name, array in (("indices", self.indices),
                            ("start_us", self.start_us),
                            ("end_us", self.end_us)):
            if len(array) != n:
                raise TraceFormatError(
                    f"{name} length {len(array)} does not match window count {n}"
                )
        if self.offsets[0] != 0 or self.offsets[-1] != len(self.codes):
            raise TraceFormatError("offsets must start at 0 and end at len(codes)")
        if np.any(np.diff(self.offsets) < 0):
            raise TraceFormatError("offsets must be non-decreasing")
        if np.any(self.end_us < self.start_us):
            raise TraceFormatError("window end before start in batch")
        if len(self.codes) and self.codes.min() < 0:
            raise TraceFormatError("event-type codes must be non-negative")
        if dimension is None:
            dimension = int(self.codes.max()) + 1 if len(self.codes) else 0
        self.dimension = int(dimension)
        if len(self.codes) and int(self.codes.max()) >= self.dimension:
            raise TraceFormatError(
                f"event-type code {int(self.codes.max())} out of range for "
                f"dimension {self.dimension}"
            )
        if dims is None:
            dims = np.full(n, self.dimension, dtype=np.int64)
        self.dims = np.asarray(dims, dtype=np.int64)
        if len(self.dims) != n:
            raise TraceFormatError("dims length does not match window count")
        if len(self.dims) and (
            self.dims.min() < 0 or self.dims.max() > self.dimension
        ):
            raise TraceFormatError(
                f"per-window dims must lie in [0, {self.dimension}]"
            )
        self._windows = tuple(windows) if windows is not None else None
        if window_sizes is not None:
            window_sizes = np.asarray(window_sizes, dtype=np.int64)
            if len(window_sizes) != n:
                raise TraceFormatError(
                    f"window_sizes length {len(window_sizes)} does not match "
                    f"window count {n}"
                )
        self._sizes = window_sizes
        self._factory = window_factory
        self._lazy_cache: list[TraceWindow | None] | None = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_windows(
        cls,
        windows: Iterable[TraceWindow],
        registry: EventTypeRegistry,
        register_unknown: bool = True,
        keep_windows: bool = True,
    ) -> "WindowBatch":
        """Build a columnar batch from window objects.

        Windows are converted in order; with ``register_unknown`` (default)
        new event types grow the registry exactly as the per-window
        :func:`~repro.analysis.pmf.pmf_from_window` would, and the registry
        size after each window is recorded in ``dims``.
        """
        windows = tuple(windows)
        offsets = np.empty(len(windows) + 1, dtype=np.int64)
        offsets[0] = 0
        for position, window in enumerate(windows):
            offsets[position + 1] = offsets[position] + len(window)
        # Fast path: when every event type is already registered the codes
        # come from one C-level gather straight into the int32 array (no
        # intermediate Python lists) and the registry cannot grow.
        known = registry.to_dict()
        try:
            codes = np.fromiter(
                (
                    known[event.etype]
                    for window in windows
                    for event in window.events
                ),
                dtype=np.int32,
                count=int(offsets[-1]),
            )
            dims = np.full(len(windows), len(registry), dtype=np.int64)
        except KeyError:
            # Unknown types: fall back to per-window registration so ``dims``
            # records the registry growth in exact sequential order (or so
            # the registry rejects the type when register_unknown is off).
            code_parts: list[np.ndarray] = []
            dims = np.empty(len(windows), dtype=np.int64)
            for position, window in enumerate(windows):
                code_parts.append(window.type_codes(registry, register_unknown))
                dims[position] = len(registry)
            codes = (
                np.concatenate(code_parts)
                if code_parts
                else np.empty(0, dtype=np.int32)
            )
        return cls(
            codes=codes,
            offsets=offsets,
            indices=np.fromiter((w.index for w in windows), dtype=np.int64,
                                count=len(windows)),
            start_us=np.fromiter((w.start_us for w in windows), dtype=np.int64,
                                 count=len(windows)),
            end_us=np.fromiter((w.end_us for w in windows), dtype=np.int64,
                               count=len(windows)),
            dims=dims,
            dimension=len(registry),
            windows=windows if keep_windows else None,
        )

    # ------------------------------------------------------------------ #
    # Container behaviour and views
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.indices)

    @property
    def n_events(self) -> int:
        """Total number of events across the batch."""
        return len(self.codes)

    @property
    def event_counts(self) -> np.ndarray:
        """Number of events per window (length ``len(self)``)."""
        return np.diff(self.offsets)

    def window_codes(self, position: int) -> np.ndarray:
        """Event-type codes of the window at ``position`` (a view)."""
        return self.codes[self.offsets[position]:self.offsets[position + 1]]

    # ------------------------------------------------------------------ #
    # Round-trip
    # ------------------------------------------------------------------ #
    @property
    def has_windows(self) -> bool:
        """Whether the source windows were kept for round-tripping."""
        return self._windows is not None

    @property
    def can_materialize(self) -> bool:
        """Whether windows can be produced (kept, or lazily constructible)."""
        return self._windows is not None or self._factory is not None

    def to_windows(self) -> tuple[TraceWindow, ...]:
        """Return the source :class:`TraceWindow` objects, in order.

        Batches built by the columnar ingest plane carry a window *factory*
        instead of pre-built windows; for those every window is materialised
        (and cached) on the first call.
        """
        if self._windows is not None:
            return self._windows
        if self._factory is not None:
            return tuple(self.window(position) for position in range(len(self)))
        raise TraceStreamError(
            "this WindowBatch was built without its source windows "
            "(keep_windows=False or raw-array construction)"
        )

    def window(self, position: int) -> TraceWindow:
        """Return the source window at ``position`` (lazily materialised)."""
        if self._windows is not None:
            return self._windows[position]
        if self._factory is None:
            return self.to_windows()[position]  # raises the standard error
        if self._lazy_cache is None:
            self._lazy_cache = [None] * len(self)
        window = self._lazy_cache[position]
        if window is None:
            window = self._factory(position)
            self._lazy_cache[position] = window
        return window

    def window_sizes(self) -> list[int]:
        """Binary-encoded byte size of each window, in window order.

        Columnar batches carry sizes precomputed by the vectorized
        accounting (:func:`~repro.trace.columns.encoded_window_sizes_columns`);
        object-built batches fall back to sizing the source windows.  Both
        are bit-identical to
        :func:`~repro.trace.codec.encoded_window_sizes`.
        """
        if self._sizes is not None:
            return self._sizes.tolist()
        return encoded_window_sizes(self.to_windows())

    def window_refs(self) -> Sequence["TraceWindow | LazyWindowRef"]:
        """Per-window handles for the recorder, cheapest available form.

        Returns the kept source windows when present; otherwise lazy
        references that expose ``index`` / ``len()`` / time extent from the
        batch arrays and only materialise events via :meth:`window` when
        ``.events`` (or ``resolve()``) is touched — i.e. when the recorder
        actually writes the window.
        """
        if self._windows is not None:
            return self._windows
        if self._factory is None:
            return self.to_windows()  # raises the standard error
        return tuple(LazyWindowRef(self, position) for position in range(len(self)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WindowBatch(n_windows={len(self)}, n_events={self.n_events}, "
            f"dimension={self.dimension})"
        )


class LazyWindowRef:
    """A window handle that defers event materialisation.

    Duck-types the slice of the :class:`~repro.trace.window.TraceWindow`
    API the recorder touches for *every* window (``index``, ``start_us`` /
    ``end_us``, ``len()``) while producing the actual events only when
    ``.events`` is read or :meth:`resolve` is called — which the recorder
    does solely for windows it writes to storage (or keeps in memory).
    """

    __slots__ = ("_batch", "position", "index", "start_us", "end_us", "_n_events")

    def __init__(self, batch: WindowBatch, position: int) -> None:
        self._batch = batch
        self.position = position
        self.index = int(batch.indices[position])
        self.start_us = int(batch.start_us[position])
        self.end_us = int(batch.end_us[position])
        self._n_events = int(batch.offsets[position + 1] - batch.offsets[position])

    def __len__(self) -> int:
        return self._n_events

    @property
    def is_empty(self) -> bool:
        """Whether the window contains no events."""
        return self._n_events == 0

    def resolve(self) -> TraceWindow:
        """Materialise (and cache, batch-side) the full window object."""
        return self._batch.window(self.position)

    @property
    def events(self) -> "tuple[TraceEvent, ...]":
        """The window's events (materialises the window)."""
        return self.resolve().events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LazyWindowRef(index={self.index}, n_events={self._n_events})"


def batch_windows(
    windows: Iterable[TraceWindow],
    registry: EventTypeRegistry,
    batch_size: int = 64,
    register_unknown: bool = True,
    keep_windows: bool = True,
) -> Iterator[WindowBatch]:
    """Chunk a window iterable into :class:`WindowBatch` micro-batches.

    The final batch may be shorter.  Windows are consumed lazily, so this
    composes with the single-pass :class:`~repro.trace.stream.TraceStream`.
    """
    if batch_size <= 0:
        raise TraceStreamError("batch_size must be positive")
    chunk: list[TraceWindow] = []
    for window in windows:
        chunk.append(window)
        if len(chunk) == batch_size:
            yield WindowBatch.from_windows(
                chunk, registry, register_unknown=register_unknown,
                keep_windows=keep_windows,
            )
            chunk = []
    if chunk:
        yield WindowBatch.from_windows(
            chunk, registry, register_unknown=register_unknown,
            keep_windows=keep_windows,
        )
