"""Writing traces to disk in binary or JSON-lines form."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from ..errors import TraceFormatError
from .codec import BinaryTraceCodec, JsonTraceCodec
from .event import TraceEvent

__all__ = ["write_trace"]


def write_trace(
    events: Iterable[TraceEvent],
    path: str | Path,
    fmt: str = "auto",
) -> Path:
    """Write ``events`` to ``path``.

    Parameters
    ----------
    events:
        Timestamp-ordered events.
    path:
        Destination file.  Parent directories are created as needed.
    fmt:
        ``"binary"``, ``"jsonl"`` or ``"auto"`` (default).  ``"auto"`` picks
        the format from the file suffix: ``.jsonl``/``.json`` selects JSON
        lines, anything else the compact binary format.

    Returns
    -------
    Path
        The path written to, for chaining.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    if fmt == "auto":
        fmt = "jsonl" if path.suffix in {".jsonl", ".json"} else "binary"

    if fmt == "binary":
        data = BinaryTraceCodec().encode(events)
        path.write_bytes(data)
    elif fmt == "jsonl":
        codec = JsonTraceCodec()
        with path.open("w", encoding="utf-8") as handle:
            for event in events:
                handle.write(codec.encode_event(event))
                handle.write("\n")
    else:
        raise TraceFormatError(f"unknown trace format: {fmt!r}")
    return path
