"""Trace windows: the elementary processing unit of the monitor.

The paper's streaming model delivers the trace not event by event but by
windows of ``N`` consecutive events whose size is correlated with the tracing
hardware buffers.  :class:`TraceWindow` wraps a list of events together with
its time extent and provides the per-event-type counts from which the pmf
abstraction is built.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import TraceFormatError
from .event import EventTypeRegistry, TraceEvent

__all__ = ["TraceWindow"]


@dataclass(frozen=True)
class TraceWindow:
    """A window of consecutive trace events.

    Attributes
    ----------
    index:
        Sequence number of the window within the stream (0-based).
    start_us / end_us:
        Time extent of the window in microseconds.  ``end_us`` is exclusive:
        events satisfy ``start_us <= t < end_us``.
    events:
        The events contained in the window, in timestamp order.
    """

    index: int
    start_us: int
    end_us: int
    events: tuple[TraceEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.end_us < self.start_us:
            raise TraceFormatError(
                f"window end ({self.end_us}) before start ({self.start_us})"
            )
        object.__setattr__(self, "events", tuple(self.events))
        last = None
        for event in self.events:
            if not self.start_us <= event.timestamp_us < max(self.end_us, self.start_us + 1):
                raise TraceFormatError(
                    f"event at t={event.timestamp_us} outside window "
                    f"[{self.start_us}, {self.end_us})"
                )
            if last is not None and event.timestamp_us < last:
                raise TraceFormatError("window events are not in timestamp order")
            last = event.timestamp_us

    @classmethod
    def from_events(
        cls,
        events: Sequence[TraceEvent],
        index: int = 0,
        start_us: int | None = None,
        end_us: int | None = None,
    ) -> "TraceWindow":
        """Build a window from ``events``, inferring the extent if omitted."""
        events = tuple(events)
        if not events and (start_us is None or end_us is None):
            raise TraceFormatError("cannot infer the extent of an empty window")
        inferred_start = events[0].timestamp_us if events else 0
        inferred_end = events[-1].timestamp_us + 1 if events else 0
        return cls(
            index=index,
            start_us=inferred_start if start_us is None else start_us,
            end_us=inferred_end if end_us is None else end_us,
            events=events,
        )

    # ------------------------------------------------------------------ #
    # Basic container behaviour
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __bool__(self) -> bool:
        # A window is truthy even when empty: emptiness is a property of the
        # trace, not an error, and ``if window:`` should not silently skip it.
        return True

    @property
    def duration_us(self) -> int:
        """Window duration in microseconds."""
        return self.end_us - self.start_us

    @property
    def is_empty(self) -> bool:
        """Whether the window contains no events."""
        return not self.events

    @property
    def midpoint_us(self) -> float:
        """Temporal midpoint of the window in microseconds."""
        return (self.start_us + self.end_us) / 2.0

    # ------------------------------------------------------------------ #
    # Aggregations used by the analysis layer
    # ------------------------------------------------------------------ #
    def type_counts(self) -> Counter[str]:
        """Return the number of occurrences of each event type."""
        return Counter(event.etype for event in self.events)

    def count(self, etype: str) -> int:
        """Return the number of events of type ``etype`` in the window."""
        key = str(etype)
        return sum(1 for event in self.events if event.etype == key)

    def events_of_type(self, etype: str) -> tuple[TraceEvent, ...]:
        """Return all events of the given type, in order."""
        key = str(etype)
        return tuple(event for event in self.events if event.etype == key)

    def tasks(self) -> frozenset[str]:
        """Set of task names appearing in the window."""
        return frozenset(event.task for event in self.events if event.task)

    def type_codes(
        self, registry: "EventTypeRegistry", register_unknown: bool = True
    ) -> np.ndarray:
        """Integer event-type codes of the events, against ``registry``.

        This is the columnar form of the window consumed by the batch
        scoring plane (:class:`~repro.trace.batch.WindowBatch`): one ``int32``
        code per event, in event order.  With ``register_unknown`` (default)
        unseen types are registered on the fly, mirroring
        :func:`~repro.analysis.pmf.pmf_from_window`.
        """
        lookup = registry.register if register_unknown else registry.code
        return np.fromiter(
            (lookup(event.etype) for event in self.events),
            dtype=np.int32,
            count=len(self.events),
        )

    def overlaps(self, start_us: float, end_us: float) -> bool:
        """Whether the window's extent intersects ``[start_us, end_us)``."""
        return self.start_us < end_us and start_us < self.end_us

    def slice(self, start_us: int, end_us: int, index: int = 0) -> "TraceWindow":
        """Return a sub-window restricted to ``[start_us, end_us)``."""
        if not self.overlaps(start_us, end_us):
            return TraceWindow(index=index, start_us=start_us, end_us=end_us, events=())
        selected = tuple(
            event for event in self.events if start_us <= event.timestamp_us < end_us
        )
        return TraceWindow(index=index, start_us=start_us, end_us=end_us, events=selected)

    @staticmethod
    def concatenate(windows: Iterable["TraceWindow"], index: int = 0) -> "TraceWindow":
        """Merge consecutive windows into a single larger window."""
        windows = sorted(windows, key=lambda w: w.start_us)
        if not windows:
            raise TraceFormatError("cannot concatenate zero windows")
        events: list[TraceEvent] = []
        for window in windows:
            events.extend(window.events)
        events.sort(key=lambda event: event.timestamp_us)
        # The merged extent must cover every input window.  Sorting by start
        # does not sort by end — a window nested inside another ends first —
        # so the last window's end is not necessarily the overall end.
        return TraceWindow(
            index=index,
            start_us=windows[0].start_us,
            end_us=max(window.end_us for window in windows),
            events=tuple(events),
        )
