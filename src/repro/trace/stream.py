"""Streaming access to traces: turning an event stream into window stream.

The tracing hardware delivers events grouped by buffer flushes; the monitor
consumes them window by window.  Two windowing policies are provided:

* :func:`windows_by_duration` — fixed time windows (the paper's experiment
  uses 40 ms windows);
* :func:`windows_by_count` — fixed number of events per window (the paper's
  "windows of N consecutive events" description, N tied to the hardware
  buffer size).

:class:`TraceStream` wraps an event iterable and exposes both policies plus a
few conveniences (peeking, splitting a reference prefix from the remainder)
used by the online monitor.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Iterable, Iterator, Sequence

from ..errors import TraceStreamError
from .batch import WindowBatch, batch_windows
from .event import EventTypeRegistry, TraceEvent
from .window import TraceWindow

__all__ = [
    "WindowPolicy",
    "windows_by_duration",
    "windows_by_count",
    "TraceStream",
]


class WindowPolicy(str, Enum):
    """How a stream of events is cut into windows."""

    BY_DURATION = "by_duration"
    BY_COUNT = "by_count"


def _check_monotonic(previous: int | None, event: TraceEvent) -> int:
    if previous is not None and event.timestamp_us < previous:
        raise TraceStreamError(
            "event stream is not sorted by timestamp "
            f"({event.timestamp_us} after {previous})"
        )
    return event.timestamp_us


def windows_by_duration(
    events: Iterable[TraceEvent],
    window_duration_us: int,
    start_us: int = 0,
    emit_empty: bool = True,
) -> Iterator[TraceWindow]:
    """Cut ``events`` into consecutive fixed-duration windows.

    Parameters
    ----------
    events:
        Timestamp-ordered events.
    window_duration_us:
        Window length in microseconds; must be positive.
    start_us:
        Timestamp of the start of window 0.
    emit_empty:
        When ``True`` (default), windows with no events are still emitted so
        window indices map directly to wall-clock time — this matters for
        ground-truth labelling.  When ``False``, empty windows are skipped
        (their indices are skipped as well).
    """
    if window_duration_us <= 0:
        raise TraceStreamError("window_duration_us must be positive")

    index = 0
    window_start = start_us
    window_end = start_us + window_duration_us
    pending: list[TraceEvent] = []
    previous: int | None = None

    for event in events:
        previous = _check_monotonic(previous, event)
        if event.timestamp_us < window_start:
            raise TraceStreamError(
                f"event at t={event.timestamp_us} precedes stream start {window_start}"
            )
        while event.timestamp_us >= window_end:
            if pending or emit_empty:
                yield TraceWindow(index, window_start, window_end, tuple(pending))
                index += 1
            pending = []
            window_start = window_end
            window_end += window_duration_us
        pending.append(event)

    if pending or (emit_empty and index == 0):
        yield TraceWindow(index, window_start, window_end, tuple(pending))


def windows_by_count(
    events: Iterable[TraceEvent],
    events_per_window: int,
    start_us: int = 0,
) -> Iterator[TraceWindow]:
    """Cut ``events`` into windows of ``events_per_window`` consecutive events.

    This mirrors the paper's description of the tracing hardware delivering
    the trace by buffers of ``N`` events.  The final, possibly shorter,
    window is emitted as well.
    """
    if events_per_window <= 0:
        raise TraceStreamError("events_per_window must be positive")

    index = 0
    pending: list[TraceEvent] = []
    previous: int | None = None
    # Start of the window being filled; ``None`` after a boundary, meaning
    # "derive it from boundary_ts and this window's first event".
    window_start: int | None = start_us
    boundary_ts = start_us

    def _window_start() -> int:
        if window_start is not None:
            return window_start
        # The stream may contain further events carrying the boundary
        # timestamp (hardware buffers flush several events with one clock
        # value); they must fall inside this window's half-open extent, so
        # only then does the window start *at* the boundary timestamp.
        # Otherwise the historical contiguous extent — one past the previous
        # window's last event — is preserved.
        if pending[0].timestamp_us == boundary_ts:
            return boundary_ts
        return boundary_ts + 1

    for event in events:
        previous = _check_monotonic(previous, event)
        pending.append(event)
        if len(pending) == events_per_window:
            last_ts = pending[-1].timestamp_us
            yield TraceWindow(index, _window_start(), last_ts + 1, tuple(pending))
            index += 1
            window_start = None
            boundary_ts = last_ts
            pending = []

    if pending:
        yield TraceWindow(
            index, _window_start(), pending[-1].timestamp_us + 1, tuple(pending)
        )


class TraceStream:
    """A (possibly lazily generated) stream of trace events.

    The stream is single-pass by design: it wraps an iterator the same way
    the real system wraps the tracing hardware output.  Materialising the
    whole stream (``list(stream.events())``) is possible but defeats the
    purpose — the monitor is meant to process it online.
    """

    def __init__(self, events: Iterable[TraceEvent]) -> None:
        self._iterator = iter(events)
        self._consumed = False

    @classmethod
    def from_windows(cls, windows: Iterable[TraceWindow]) -> "TraceStream":
        """Flatten windows back into an event stream."""

        def _generate() -> Iterator[TraceEvent]:
            for window in windows:
                yield from window.events

        return cls(_generate())

    def _take_iterator(self) -> Iterator[TraceEvent]:
        if self._consumed:
            raise TraceStreamError("trace stream already consumed")
        self._consumed = True
        return self._iterator

    def events(self) -> Iterator[TraceEvent]:
        """Iterate over the raw events (consumes the stream)."""
        return self._take_iterator()

    def windows(
        self,
        policy: WindowPolicy = WindowPolicy.BY_DURATION,
        window_duration_us: int = 40_000,
        events_per_window: int = 256,
        start_us: int = 0,
        emit_empty: bool = True,
    ) -> Iterator[TraceWindow]:
        """Iterate over windows according to ``policy`` (consumes the stream)."""
        events = self._take_iterator()
        if policy is WindowPolicy.BY_DURATION:
            return windows_by_duration(
                events, window_duration_us, start_us=start_us, emit_empty=emit_empty
            )
        if policy is WindowPolicy.BY_COUNT:
            return windows_by_count(events, events_per_window, start_us=start_us)
        raise TraceStreamError(f"unknown window policy: {policy!r}")

    def window_batches(
        self,
        registry: EventTypeRegistry,
        batch_size: int = 64,
        policy: WindowPolicy = WindowPolicy.BY_DURATION,
        window_duration_us: int = 40_000,
        events_per_window: int = 256,
        start_us: int = 0,
        emit_empty: bool = True,
    ) -> Iterator[WindowBatch]:
        """Iterate over columnar window micro-batches (consumes the stream).

        Windows are cut exactly as by :meth:`windows` and grouped into
        :class:`~repro.trace.batch.WindowBatch` chunks of ``batch_size`` for
        the vectorized scoring plane; the final batch may be shorter.
        """
        windows = self.windows(
            policy,
            window_duration_us=window_duration_us,
            events_per_window=events_per_window,
            start_us=start_us,
            emit_empty=emit_empty,
        )
        return batch_windows(windows, registry, batch_size=batch_size)

    def split_reference(
        self,
        reference_duration_us: int,
        window_duration_us: int = 40_000,
        start_us: int = 0,
    ) -> tuple[list[TraceWindow], Iterator[TraceWindow]]:
        """Split the stream into a reference prefix and the live remainder.

        Returns the list of windows covering ``[start_us, start_us +
        reference_duration_us)`` — used to learn the reference model — and a
        lazy iterator over the remaining windows, whose indices continue
        where the reference stopped.
        """
        if reference_duration_us <= 0:
            raise TraceStreamError("reference_duration_us must be positive")
        window_iterator = self.windows(
            WindowPolicy.BY_DURATION,
            window_duration_us=window_duration_us,
            start_us=start_us,
            emit_empty=True,
        )
        boundary = start_us + reference_duration_us
        reference: list[TraceWindow] = []
        first_live: TraceWindow | None = None
        for window in window_iterator:
            if window.end_us <= boundary:
                reference.append(window)
            else:
                first_live = window
                break

        def _remainder() -> Iterator[TraceWindow]:
            if first_live is not None:
                yield first_live
                yield from window_iterator

        return reference, _remainder()

    @staticmethod
    def merge(streams: Sequence["TraceStream"]) -> "TraceStream":
        """Merge several timestamp-ordered streams into one ordered stream."""
        import heapq

        def _generate() -> Iterator[TraceEvent]:
            iterators = [stream._take_iterator() for stream in streams]
            yield from heapq.merge(*iterators, key=lambda event: event.timestamp_us)

        return TraceStream(_generate())

    def filtered(self, predicate: Callable[[TraceEvent], bool]) -> "TraceStream":
        """Return a new stream containing only events matching ``predicate``."""
        events = self._take_iterator()
        return TraceStream(event for event in events if predicate(event))
