"""Streaming access to traces: turning an event stream into window stream.

The tracing hardware delivers events grouped by buffer flushes; the monitor
consumes them window by window.  Two windowing policies are provided:

* :func:`windows_by_duration` — fixed time windows (the paper's experiment
  uses 40 ms windows);
* :func:`windows_by_count` — fixed number of events per window (the paper's
  "windows of N consecutive events" description, N tied to the hardware
  buffer size).

:class:`TraceStream` wraps an event iterable and exposes both policies plus a
few conveniences (peeking, splitting a reference prefix from the remainder)
used by the online monitor.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Iterable, Iterator, NamedTuple, Sequence

import numpy as np

from ..errors import TraceFormatError, TraceStreamError
from .batch import WindowBatch, batch_windows
from .columns import TraceColumns, encoded_window_sizes_columns
from .event import EventTypeRegistry, TraceEvent
from .window import TraceWindow

__all__ = [
    "WindowPolicy",
    "windows_by_duration",
    "windows_by_count",
    "TraceStream",
    "ColumnWindowLayout",
    "ColumnarWindowSource",
    "column_windows_by_duration",
    "column_windows_by_count",
    "iter_column_batches",
    "batches_from_layout",
    "materialize_layout_windows",
]


class WindowPolicy(str, Enum):
    """How a stream of events is cut into windows."""

    BY_DURATION = "by_duration"
    BY_COUNT = "by_count"


def _check_monotonic(previous: int | None, event: TraceEvent) -> int:
    if previous is not None and event.timestamp_us < previous:
        raise TraceStreamError(
            "event stream is not sorted by timestamp "
            f"({event.timestamp_us} after {previous})"
        )
    return event.timestamp_us


def windows_by_duration(
    events: Iterable[TraceEvent],
    window_duration_us: int,
    start_us: int = 0,
    emit_empty: bool = True,
) -> Iterator[TraceWindow]:
    """Cut ``events`` into consecutive fixed-duration windows.

    Parameters
    ----------
    events:
        Timestamp-ordered events.
    window_duration_us:
        Window length in microseconds; must be positive.
    start_us:
        Timestamp of the start of window 0.
    emit_empty:
        When ``True`` (default), windows with no events are still emitted so
        window indices map directly to wall-clock time — this matters for
        ground-truth labelling.  When ``False``, empty windows are skipped
        (their indices are skipped as well).
    """
    if window_duration_us <= 0:
        raise TraceStreamError("window_duration_us must be positive")

    index = 0
    window_start = start_us
    window_end = start_us + window_duration_us
    pending: list[TraceEvent] = []
    previous: int | None = None

    for event in events:
        previous = _check_monotonic(previous, event)
        if event.timestamp_us < window_start:
            raise TraceStreamError(
                f"event at t={event.timestamp_us} precedes stream start {window_start}"
            )
        while event.timestamp_us >= window_end:
            if pending or emit_empty:
                yield TraceWindow(index, window_start, window_end, tuple(pending))
                index += 1
            pending = []
            window_start = window_end
            window_end += window_duration_us
        pending.append(event)

    if pending or (emit_empty and index == 0):
        yield TraceWindow(index, window_start, window_end, tuple(pending))


def windows_by_count(
    events: Iterable[TraceEvent],
    events_per_window: int,
    start_us: int = 0,
) -> Iterator[TraceWindow]:
    """Cut ``events`` into windows of ``events_per_window`` consecutive events.

    This mirrors the paper's description of the tracing hardware delivering
    the trace by buffers of ``N`` events.  The final, possibly shorter,
    window is emitted as well.
    """
    if events_per_window <= 0:
        raise TraceStreamError("events_per_window must be positive")

    index = 0
    pending: list[TraceEvent] = []
    previous: int | None = None
    # Start of the window being filled; ``None`` after a boundary, meaning
    # "derive it from boundary_ts and this window's first event".
    window_start: int | None = start_us
    boundary_ts = start_us

    def _window_start() -> int:
        if window_start is not None:
            return window_start
        # The stream may contain further events carrying the boundary
        # timestamp (hardware buffers flush several events with one clock
        # value); they must fall inside this window's half-open extent, so
        # only then does the window start *at* the boundary timestamp.
        # Otherwise the historical contiguous extent — one past the previous
        # window's last event — is preserved.
        if pending[0].timestamp_us == boundary_ts:
            return boundary_ts
        return boundary_ts + 1

    for event in events:
        previous = _check_monotonic(previous, event)
        pending.append(event)
        if len(pending) == events_per_window:
            last_ts = pending[-1].timestamp_us
            yield TraceWindow(index, _window_start(), last_ts + 1, tuple(pending))
            index += 1
            window_start = None
            boundary_ts = last_ts
            pending = []

    if pending:
        yield TraceWindow(
            index, _window_start(), pending[-1].timestamp_us + 1, tuple(pending)
        )


class TraceStream:
    """A (possibly lazily generated) stream of trace events.

    The stream is single-pass by design: it wraps an iterator the same way
    the real system wraps the tracing hardware output.  Materialising the
    whole stream (``list(stream.events())``) is possible but defeats the
    purpose — the monitor is meant to process it online.
    """

    def __init__(self, events: Iterable[TraceEvent]) -> None:
        self._iterator = iter(events)
        self._consumed = False

    @classmethod
    def from_windows(cls, windows: Iterable[TraceWindow]) -> "TraceStream":
        """Flatten windows back into an event stream."""

        def _generate() -> Iterator[TraceEvent]:
            for window in windows:
                yield from window.events

        return cls(_generate())

    def _take_iterator(self) -> Iterator[TraceEvent]:
        if self._consumed:
            raise TraceStreamError("trace stream already consumed")
        self._consumed = True
        return self._iterator

    def events(self) -> Iterator[TraceEvent]:
        """Iterate over the raw events (consumes the stream)."""
        return self._take_iterator()

    def windows(
        self,
        policy: WindowPolicy = WindowPolicy.BY_DURATION,
        window_duration_us: int = 40_000,
        events_per_window: int = 256,
        start_us: int = 0,
        emit_empty: bool = True,
    ) -> Iterator[TraceWindow]:
        """Iterate over windows according to ``policy`` (consumes the stream)."""
        events = self._take_iterator()
        if policy is WindowPolicy.BY_DURATION:
            return windows_by_duration(
                events, window_duration_us, start_us=start_us, emit_empty=emit_empty
            )
        if policy is WindowPolicy.BY_COUNT:
            return windows_by_count(events, events_per_window, start_us=start_us)
        raise TraceStreamError(f"unknown window policy: {policy!r}")

    def window_batches(
        self,
        registry: EventTypeRegistry,
        batch_size: int = 64,
        policy: WindowPolicy = WindowPolicy.BY_DURATION,
        window_duration_us: int = 40_000,
        events_per_window: int = 256,
        start_us: int = 0,
        emit_empty: bool = True,
    ) -> Iterator[WindowBatch]:
        """Iterate over columnar window micro-batches (consumes the stream).

        Windows are cut exactly as by :meth:`windows` and grouped into
        :class:`~repro.trace.batch.WindowBatch` chunks of ``batch_size`` for
        the vectorized scoring plane; the final batch may be shorter.
        """
        windows = self.windows(
            policy,
            window_duration_us=window_duration_us,
            events_per_window=events_per_window,
            start_us=start_us,
            emit_empty=emit_empty,
        )
        return batch_windows(windows, registry, batch_size=batch_size)

    def split_reference(
        self,
        reference_duration_us: int,
        window_duration_us: int = 40_000,
        start_us: int = 0,
    ) -> tuple[list[TraceWindow], Iterator[TraceWindow]]:
        """Split the stream into a reference prefix and the live remainder.

        Returns the list of windows covering ``[start_us, start_us +
        reference_duration_us)`` — used to learn the reference model — and a
        lazy iterator over the remaining windows, whose indices continue
        where the reference stopped.
        """
        if reference_duration_us <= 0:
            raise TraceStreamError("reference_duration_us must be positive")
        window_iterator = self.windows(
            WindowPolicy.BY_DURATION,
            window_duration_us=window_duration_us,
            start_us=start_us,
            emit_empty=True,
        )
        boundary = start_us + reference_duration_us
        reference: list[TraceWindow] = []
        first_live: TraceWindow | None = None
        for window in window_iterator:
            if window.end_us <= boundary:
                reference.append(window)
            else:
                first_live = window
                break

        def _remainder() -> Iterator[TraceWindow]:
            if first_live is not None:
                yield first_live
                yield from window_iterator

        return reference, _remainder()

    @staticmethod
    def merge(streams: Sequence["TraceStream"]) -> "TraceStream":
        """Merge several timestamp-ordered streams into one ordered stream."""
        import heapq

        def _generate() -> Iterator[TraceEvent]:
            iterators = [stream._take_iterator() for stream in streams]
            yield from heapq.merge(*iterators, key=lambda event: event.timestamp_us)

        return TraceStream(_generate())

    def filtered(self, predicate: Callable[[TraceEvent], bool]) -> "TraceStream":
        """Return a new stream containing only events matching ``predicate``."""
        events = self._take_iterator()
        return TraceStream(event for event in events if predicate(event))


# ---------------------------------------------------------------------- #
# Array-native windowing over TraceColumns
# ---------------------------------------------------------------------- #
class ColumnWindowLayout(NamedTuple):
    """Window boundaries of a columnar trace, as flat arrays.

    ``event_offsets`` is CSR-style (length ``n_windows + 1``): window ``w``
    owns events ``event_offsets[w] <= i < event_offsets[w + 1]`` of the
    source :class:`~repro.trace.columns.TraceColumns`.  ``indices`` /
    ``start_us`` / ``end_us`` mirror the per-window metadata the object
    windowing functions stamp on each :class:`TraceWindow`.
    """

    event_offsets: np.ndarray
    indices: np.ndarray
    start_us: np.ndarray
    end_us: np.ndarray

    @property
    def n_windows(self) -> int:
        """Number of windows in the layout."""
        return len(self.indices)


def _check_sorted_columns(timestamps: np.ndarray) -> None:
    if len(timestamps) > 1:
        bad = np.flatnonzero(timestamps[1:] < timestamps[:-1])
        if bad.size:
            position = int(bad[0])
            raise TraceStreamError(
                "event stream is not sorted by timestamp "
                f"({int(timestamps[position + 1])} after {int(timestamps[position])})"
            )


def column_windows_by_duration(
    columns: TraceColumns,
    window_duration_us: int,
    start_us: int = 0,
    emit_empty: bool = True,
) -> ColumnWindowLayout:
    """Array-native mirror of :func:`windows_by_duration`.

    One ``searchsorted`` over the timestamp column replaces the per-event
    Python loop; the resulting layout describes exactly the windows the
    object path would emit (same indices, extents and event spans, the
    equivalence suite asserts it window by window).
    """
    if window_duration_us <= 0:
        raise TraceStreamError("window_duration_us must be positive")
    timestamps = columns.timestamps_us
    n = len(timestamps)
    if n == 0:
        if emit_empty:
            return ColumnWindowLayout(
                event_offsets=np.zeros(2, dtype=np.int64),
                indices=np.zeros(1, dtype=np.int64),
                start_us=np.array([start_us], dtype=np.int64),
                end_us=np.array([start_us + window_duration_us], dtype=np.int64),
            )
        return ColumnWindowLayout(
            event_offsets=np.zeros(1, dtype=np.int64),
            indices=np.empty(0, dtype=np.int64),
            start_us=np.empty(0, dtype=np.int64),
            end_us=np.empty(0, dtype=np.int64),
        )
    _check_sorted_columns(timestamps)
    if int(timestamps[0]) < start_us:
        raise TraceStreamError(
            f"event at t={int(timestamps[0])} precedes stream start {start_us}"
        )
    n_slots = int((int(timestamps[-1]) - start_us) // window_duration_us) + 1
    bounds = start_us + window_duration_us * np.arange(n_slots + 1, dtype=np.int64)
    offsets = np.searchsorted(timestamps, bounds, side="left")
    starts = bounds[:-1]
    ends = bounds[1:]
    indices = np.arange(n_slots, dtype=np.int64)
    if not emit_empty:
        keep = np.flatnonzero(np.diff(offsets) > 0)
        # Dropped slots are empty (zero-length spans), so the kept spans
        # stay contiguous and the CSR offsets can simply be re-chained.
        offsets = np.concatenate((offsets[keep], offsets[keep[-1] + 1 :][:1]))
        starts = starts[keep]
        ends = ends[keep]
        indices = np.arange(len(keep), dtype=np.int64)
    return ColumnWindowLayout(
        event_offsets=offsets.astype(np.int64),
        indices=indices,
        start_us=starts.astype(np.int64),
        end_us=ends.astype(np.int64),
    )


def column_windows_by_count(
    columns: TraceColumns,
    events_per_window: int,
    start_us: int = 0,
) -> ColumnWindowLayout:
    """Array-native mirror of :func:`windows_by_count`.

    Strided offsets replace the per-event accumulation loop; the window
    extents reproduce the duplicate-boundary-timestamp semantics of the
    object path (a window starts *at* the previous window's last timestamp
    exactly when its first event carries that timestamp, otherwise one
    microsecond past it).
    """
    if events_per_window <= 0:
        raise TraceStreamError("events_per_window must be positive")
    timestamps = columns.timestamps_us
    n = len(timestamps)
    if n == 0:
        return ColumnWindowLayout(
            event_offsets=np.zeros(1, dtype=np.int64),
            indices=np.empty(0, dtype=np.int64),
            start_us=np.empty(0, dtype=np.int64),
            end_us=np.empty(0, dtype=np.int64),
        )
    _check_sorted_columns(timestamps)
    n_windows = -(-n // events_per_window)
    offsets = np.minimum(
        np.arange(n_windows + 1, dtype=np.int64) * events_per_window, n
    )
    lasts = timestamps[offsets[1:] - 1]
    ends = lasts + 1
    starts = np.empty(n_windows, dtype=np.int64)
    starts[0] = start_us
    if n_windows > 1:
        firsts = timestamps[offsets[1:-1]]
        boundary = lasts[:-1]
        starts[1:] = np.where(firsts == boundary, boundary, boundary + 1)
    if int(timestamps[0]) < start_us:
        raise TraceFormatError(
            f"event at t={int(timestamps[0])} outside window "
            f"[{start_us}, {int(ends[0])})"
        )
    return ColumnWindowLayout(
        event_offsets=offsets,
        indices=np.arange(n_windows, dtype=np.int64),
        start_us=starts,
        end_us=ends,
    )


def materialize_layout_windows(
    columns: TraceColumns, layout: ColumnWindowLayout, start: int, stop: int
) -> list[TraceWindow]:
    """Materialise windows ``start <= w < stop`` of a layout as objects.

    Used where the object form is genuinely required (reference learning,
    recorder context) — everything else stays columnar.
    """
    offsets = layout.event_offsets
    return [
        TraceWindow(
            index=int(layout.indices[w]),
            start_us=int(layout.start_us[w]),
            end_us=int(layout.end_us[w]),
            events=columns.events(int(offsets[w]), int(offsets[w + 1])),
        )
        for w in range(start, stop)
    ]


class _ColumnCodeMapper:
    """Incremental file-code -> monitor-registry-code mapping.

    Registers unseen event-type names into the monitor registry in global
    event order, batch by batch — exactly the growth a sequential
    ``WindowBatch.from_windows`` over materialised windows would produce.
    """

    __slots__ = ("map", "names")

    def __init__(self, type_names: Sequence[str], registry: EventTypeRegistry) -> None:
        self.names = tuple(type_names)
        known = registry.to_dict()
        self.map = np.fromiter(
            (known.get(name, -1) for name in self.names),
            dtype=np.int32,
            count=len(self.names),
        )

    def register_span(
        self, file_codes: np.ndarray, base: int, registry: EventTypeRegistry
    ) -> np.ndarray:
        """Register the span's unseen types; return their global positions.

        The returned (sorted) positions are where the registry grew — the
        inputs of the per-window ``dims`` computation.
        """
        if file_codes.size == 0:
            return np.empty(0, dtype=np.int64)
        unknown = np.flatnonzero(self.map[file_codes] < 0)
        if unknown.size == 0:
            return np.empty(0, dtype=np.int64)
        codes, first_seen = np.unique(file_codes[unknown], return_index=True)
        order = np.argsort(first_seen, kind="stable")
        growth = np.empty(len(order), dtype=np.int64)
        for rank, k in enumerate(order):
            file_code = int(codes[k])
            self.map[file_code] = registry.register(self.names[file_code])
            growth[rank] = base + int(unknown[first_seen[k]])
        return growth


def batches_from_layout(
    columns: TraceColumns,
    layout: ColumnWindowLayout,
    registry: EventTypeRegistry,
    batch_size: int = 64,
    first_window: int = 0,
) -> Iterator[WindowBatch]:
    """Yield columnar :class:`WindowBatch` micro-batches over a layout.

    The window stream starts at ``first_window`` (used to skip a reference
    prefix while keeping global window indices); batch boundaries fall
    every ``batch_size`` windows from there, exactly like
    :func:`~repro.trace.batch.batch_windows` over the corresponding window
    iterator.  Batches carry precomputed byte sizes and a lazy window
    factory instead of materialised windows.
    """
    if batch_size <= 0:
        raise TraceStreamError("batch_size must be positive")
    n_windows = layout.n_windows
    if first_window < 0 or first_window > n_windows:
        raise TraceStreamError(
            f"first_window {first_window} out of range for {n_windows} windows"
        )
    mapper = _ColumnCodeMapper(columns.type_names, registry)
    for w0 in range(first_window, n_windows, batch_size):
        w1 = min(w0 + batch_size, n_windows)
        yield _build_column_batch(columns, layout, registry, mapper, w0, w1)


def _build_column_batch(
    columns: TraceColumns,
    layout: ColumnWindowLayout,
    registry: EventTypeRegistry,
    mapper: _ColumnCodeMapper,
    w0: int,
    w1: int,
) -> WindowBatch:
    offsets = layout.event_offsets[w0 : w1 + 1]
    lo, hi = int(offsets[0]), int(offsets[-1])
    file_codes = columns.type_codes[lo:hi]
    dimension_before = len(registry)
    growth = mapper.register_span(file_codes, lo, registry)
    codes = mapper.map[file_codes]
    if growth.size:
        dims = dimension_before + np.searchsorted(growth, offsets[1:], side="left")
    else:
        dims = np.full(w1 - w0, dimension_before, dtype=np.int64)
    sizes = encoded_window_sizes_columns(columns, offsets)

    def factory(position: int) -> TraceWindow:
        w = w0 + position
        return TraceWindow(
            index=int(layout.indices[w]),
            start_us=int(layout.start_us[w]),
            end_us=int(layout.end_us[w]),
            events=columns.events(
                int(layout.event_offsets[w]), int(layout.event_offsets[w + 1])
            ),
        )

    return WindowBatch(
        codes=codes,
        offsets=offsets - lo,
        indices=layout.indices[w0:w1],
        start_us=layout.start_us[w0:w1],
        end_us=layout.end_us[w0:w1],
        dims=dims,
        dimension=len(registry),
        windows=None,
        window_sizes=sizes,
        window_factory=factory,
    )


def iter_column_batches(
    columns: TraceColumns,
    registry: EventTypeRegistry,
    batch_size: int = 64,
    policy: WindowPolicy = WindowPolicy.BY_DURATION,
    window_duration_us: int = 40_000,
    events_per_window: int = 256,
    start_us: int = 0,
    emit_empty: bool = True,
    first_window: int = 0,
) -> Iterator[WindowBatch]:
    """Columnar mirror of :meth:`TraceStream.window_batches`.

    Cuts the columns into windows array-natively (``searchsorted`` for
    duration windows, strided offsets for count windows) and yields lazy
    :class:`WindowBatch` micro-batches — no per-event Python on the hot
    path, bit-identical decisions and byte accounting downstream.
    """
    if policy is WindowPolicy.BY_DURATION:
        layout = column_windows_by_duration(
            columns, window_duration_us, start_us=start_us, emit_empty=emit_empty
        )
    elif policy is WindowPolicy.BY_COUNT:
        layout = column_windows_by_count(
            columns, events_per_window, start_us=start_us
        )
    else:
        raise TraceStreamError(f"unknown window policy: {policy!r}")
    return batches_from_layout(
        columns, layout, registry, batch_size=batch_size, first_window=first_window
    )


@dataclass(frozen=True)
class ColumnarWindowSource:
    """A columnar trace plus its windowing recipe, usable as a fleet shard.

    The sharded fleet accepts these wherever it accepts window iterables:
    the serial backend cuts batches in-process, while the process-parallel
    backend ships the whole object to a worker — a handful of flat arrays
    and one raw buffer, far cheaper to pickle than a list of event objects
    on spawn-only platforms.

    ``window_duration_us`` left at ``None`` defers to the monitor
    configuration at activation (mirroring
    :meth:`~repro.analysis.fleet.ShardedTraceMonitor.run_on_streams`).
    ``first_window`` skips an already-learned reference prefix while
    preserving global window indices.
    """

    columns: TraceColumns
    policy: WindowPolicy = WindowPolicy.BY_DURATION
    window_duration_us: int | None = None
    events_per_window: int = 256
    start_us: int = 0
    emit_empty: bool = True
    first_window: int = 0

    def batches(
        self,
        registry: EventTypeRegistry,
        batch_size: int,
        default_window_duration_us: int = 40_000,
    ) -> Iterator[WindowBatch]:
        """Yield the source's window batches against ``registry``."""
        duration = (
            self.window_duration_us
            if self.window_duration_us is not None
            else default_window_duration_us
        )
        return iter_column_batches(
            self.columns,
            registry,
            batch_size=batch_size,
            policy=self.policy,
            window_duration_us=duration,
            events_per_window=self.events_per_window,
            start_us=self.start_us,
            emit_empty=self.emit_empty,
            first_window=self.first_window,
        )
