"""Trace events and the event-type registry.

A raw trace is a sequence of timestamped events (paper Section II, "Data
representation").  Each event carries:

* a timestamp in microseconds since the start of the run,
* an event *type* (scheduling, codec, buffer, interrupt, ... event),
* the core it was observed on,
* the task (thread) it belongs to,
* a small payload of keyword arguments (frame number, buffer level, ...).

Event types are interned in an :class:`EventTypeRegistry` which assigns each
type a dense integer code.  The codes are what the pmf abstraction and the
compact binary codec operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable, Iterator, Mapping

from ..errors import TraceFormatError

__all__ = ["EventType", "EventTypeRegistry", "TraceEvent", "DEFAULT_REGISTRY"]


class EventType(str, Enum):
    """Canonical event types emitted by the simulated platform and pipeline.

    The set mirrors what STMicroelectronics-style trace infrastructures
    expose: kernel scheduling activity, interrupts, syscalls, DMA traffic,
    plus multimedia-framework events (frame decode, buffer queue activity and
    QoS error messages, the GStreamer-equivalent signals used for ground
    truth in the paper's experiment).
    """

    # Kernel / platform events
    SCHED_SWITCH = "sched_switch"
    SCHED_WAKEUP = "sched_wakeup"
    SCHED_MIGRATE = "sched_migrate"
    IRQ_ENTER = "irq_enter"
    IRQ_EXIT = "irq_exit"
    SYSCALL_ENTER = "syscall_enter"
    SYSCALL_EXIT = "syscall_exit"
    DMA_TRANSFER = "dma_transfer"
    MEM_STALL = "mem_stall"
    PAGE_FAULT = "page_fault"
    TIMER_TICK = "timer_tick"
    # Multimedia pipeline events
    DEMUX_PACKET = "demux_packet"
    FRAME_DECODE_START = "frame_decode_start"
    FRAME_DECODE_END = "frame_decode_end"
    MB_ROW_DECODE = "mb_row_decode"
    CACHE_MISS = "cache_miss"
    AUDIO_DECODE = "audio_decode"
    FRAME_CONVERT = "frame_convert"
    FRAME_DISPLAY = "frame_display"
    VSYNC = "vsync"
    BUFFER_PUSH = "buffer_push"
    BUFFER_POP = "buffer_pop"
    BUFFER_LEVEL = "buffer_level"
    BUFFER_UNDERRUN = "buffer_underrun"
    BUFFER_OVERRUN = "buffer_overrun"
    FRAME_DROP = "frame_drop"
    QOS_ERROR = "qos_error"
    # Perturbation / background load events
    LOAD_BURST = "load_burst"
    LOAD_DONE = "load_done"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class EventTypeRegistry:
    """Bidirectional mapping between event-type names and dense integer codes.

    The registry defines the dimensionality of the pmf vectors: code ``i``
    corresponds to component ``i`` of every pmf built against this registry.
    New types can be registered lazily (the monitor may encounter types the
    reference run never produced); codes are never reused.
    """

    def __init__(self, names: Iterable[str] | None = None) -> None:
        self._code_by_name: dict[str, int] = {}
        self._name_by_code: list[str] = []
        for name in names or []:
            self.register(name)

    @classmethod
    def with_default_types(cls) -> "EventTypeRegistry":
        """Return a registry pre-populated with every :class:`EventType`."""
        return cls(event_type.value for event_type in EventType)

    def register(self, name: str | EventType) -> int:
        """Register ``name`` (idempotent) and return its integer code."""
        key = str(name)
        code = self._code_by_name.get(key)
        if code is None:
            code = len(self._name_by_code)
            self._code_by_name[key] = code
            self._name_by_code.append(key)
        return code

    def code(self, name: str | EventType) -> int:
        """Return the code of ``name``; raise if it was never registered."""
        key = str(name)
        try:
            return self._code_by_name[key]
        except KeyError:
            raise TraceFormatError(f"unknown event type: {key!r}") from None

    def name(self, code: int) -> str:
        """Return the name registered under ``code``."""
        try:
            return self._name_by_code[code]
        except IndexError:
            raise TraceFormatError(f"unknown event-type code: {code}") from None

    def __contains__(self, name: object) -> bool:
        return str(name) in self._code_by_name

    def __len__(self) -> int:
        return len(self._name_by_code)

    def __iter__(self) -> Iterator[str]:
        return iter(self._name_by_code)

    @property
    def names(self) -> tuple[str, ...]:
        """All registered names, in code order."""
        return tuple(self._name_by_code)

    def to_dict(self) -> dict[str, int]:
        """Return a serialisable ``name -> code`` mapping."""
        return dict(self._code_by_name)

    @classmethod
    def from_dict(cls, mapping: Mapping[str, int]) -> "EventTypeRegistry":
        """Rebuild a registry from :meth:`to_dict` output, validating codes."""
        registry = cls()
        expected = 0
        for name, code in sorted(mapping.items(), key=lambda item: item[1]):
            if code != expected:
                raise TraceFormatError(
                    f"non-contiguous event-type codes in registry: {mapping!r}"
                )
            registry.register(name)
            expected += 1
        return registry


#: Shared registry holding the canonical event types.  Most of the library
#: accepts an explicit registry; this default keeps simple scripts short.
DEFAULT_REGISTRY = EventTypeRegistry.with_default_types()


#: Event types captured when the tracing hardware is configured for
#: application-scope tracing (framework / userspace instrumentation only, the
#: setup closest to the paper's GStreamer monitoring).  Full-platform tracing
#: additionally captures scheduling, interrupt, memory and DMA events.
APPLICATION_SCOPE_TYPES: frozenset[str] = frozenset(
    event_type.value
    for event_type in (
        EventType.SYSCALL_ENTER,
        EventType.SYSCALL_EXIT,
        EventType.DEMUX_PACKET,
        EventType.FRAME_DECODE_START,
        EventType.FRAME_DECODE_END,
        EventType.MB_ROW_DECODE,
        EventType.CACHE_MISS,
        EventType.AUDIO_DECODE,
        EventType.FRAME_CONVERT,
        EventType.FRAME_DISPLAY,
        EventType.VSYNC,
        EventType.BUFFER_PUSH,
        EventType.BUFFER_POP,
        EventType.BUFFER_LEVEL,
        EventType.BUFFER_UNDERRUN,
        EventType.BUFFER_OVERRUN,
        EventType.FRAME_DROP,
        EventType.QOS_ERROR,
    )
)


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """A single timestamped trace event.

    Attributes
    ----------
    timestamp_us:
        Time of the event in microseconds since the start of the run.
    etype:
        Event type name (one of :class:`EventType` or any registered string).
    core:
        Index of the CPU core the event was observed on.
    task:
        Name of the task (thread) the event belongs to (empty for
        platform-wide events such as interrupts).
    args:
        Small immutable payload with event-specific details.
    """

    timestamp_us: int
    etype: str
    core: int = 0
    task: str = ""
    args: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.timestamp_us < 0:
            raise TraceFormatError(f"negative timestamp: {self.timestamp_us}")
        # Normalise EventType enum members to their string value so
        # downstream comparisons and serialisation are uniform.
        object.__setattr__(self, "etype", str(self.etype))

    @property
    def timestamp_s(self) -> float:
        """Timestamp in seconds."""
        return self.timestamp_us / 1e6

    def with_timestamp(self, timestamp_us: int) -> "TraceEvent":
        """Return a copy of the event shifted to ``timestamp_us``."""
        return TraceEvent(
            timestamp_us=timestamp_us,
            etype=self.etype,
            core=self.core,
            task=self.task,
            args=dict(self.args),
        )

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-serialisable representation of the event."""
        return {
            "t": self.timestamp_us,
            "type": self.etype,
            "core": self.core,
            "task": self.task,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        try:
            return cls(
                timestamp_us=int(data["t"]),
                etype=str(data["type"]),
                core=int(data.get("core", 0)),
                task=str(data.get("task", "")),
                args=dict(data.get("args", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"malformed event record: {data!r}") from exc
