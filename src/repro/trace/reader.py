"""Reading traces back from disk."""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from ..errors import TraceFormatError
from .codec import BinaryTraceCodec, JsonTraceCodec, _MAGIC
from .event import TraceEvent

__all__ = ["read_trace", "iter_trace_file"]


def _detect_format(path: Path) -> str:
    """Sniff whether ``path`` holds a binary or JSON-lines trace."""
    with path.open("rb") as handle:
        head = handle.read(4)
    if head == _MAGIC:
        return "binary"
    return "jsonl"


def read_trace(path: str | Path) -> list[TraceEvent]:
    """Read a whole trace file (binary or JSON lines) into memory."""
    path = Path(path)
    if not path.exists():
        raise TraceFormatError(f"trace file does not exist: {path}")
    fmt = _detect_format(path)
    if fmt == "binary":
        return BinaryTraceCodec().decode(path.read_bytes())
    return list(iter_trace_file(path))


def iter_trace_file(path: str | Path) -> Iterator[TraceEvent]:
    """Iterate lazily over a JSON-lines trace file.

    Binary traces are self-describing blobs and must be read with
    :func:`read_trace`; attempting to stream one raises
    :class:`~repro.errors.TraceFormatError`.
    """
    path = Path(path)
    if not path.exists():
        raise TraceFormatError(f"trace file does not exist: {path}")
    if _detect_format(path) == "binary":
        raise TraceFormatError(
            "binary traces cannot be streamed line by line; use read_trace()"
        )
    codec = JsonTraceCodec()
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield codec.decode_event(line)
