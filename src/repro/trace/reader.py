"""Reading traces back from disk — object form and columnar form."""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from ..errors import TraceFormatError
from .batch import WindowBatch
from .codec import BinaryTraceCodec, JsonTraceCodec, _MAGIC
from .columns import TraceColumns, decode_binary_columns, decode_json_columns
from .event import EventTypeRegistry, TraceEvent
from .pipeline import prefetch_batches
from .stream import WindowPolicy, iter_column_batches

__all__ = [
    "read_trace",
    "iter_trace_file",
    "read_trace_columns",
    "iter_window_batches",
]


def _detect_format(path: Path) -> str:
    """Sniff whether ``path`` holds a binary or JSON-lines trace.

    Empty and truncated-header files raise a clear
    :class:`~repro.errors.TraceFormatError` naming the path — previously an
    empty file was silently misdetected as an empty JSON-lines trace and a
    short binary prefix fell through to the JSON parser.

    Note the deliberate consequence: a recording that captured zero windows
    is a zero-byte file, and reading it back raises this error rather than
    returning an empty event list.  Check
    :attr:`~repro.analysis.recorder.RecorderReport.recorded_bytes` (or the
    file size) before reading a recording that may legitimately be empty.

    Streaming ingest is the one exception to the empty-file error: a
    :class:`~repro.trace.streaming.FileTail` pointed at a zero-byte (or not
    yet created) path simply waits for bytes under its idle/stop rules
    instead of raising — while the file is still being written, "empty" is
    a transient state, not a format error.  Only a stream that *ends*
    without ever producing a byte reports the streaming analogue
    (``"empty trace stream"``).
    """
    with path.open("rb") as handle:
        head = handle.read(4)
    if not head:
        raise TraceFormatError(f"empty trace file: {path}")
    if head == _MAGIC:
        return "binary"
    if _MAGIC.startswith(head):
        raise TraceFormatError(
            f"truncated trace file {path}: {len(head)}-byte prefix of a "
            "binary trace header"
        )
    return "jsonl"


def _require_exists(path: Path) -> None:
    if not path.exists():
        raise TraceFormatError(f"trace file does not exist: {path}")


def read_trace(path: str | Path) -> list[TraceEvent]:
    """Read a whole trace file (binary or JSON lines) into memory."""
    path = Path(path)
    _require_exists(path)
    fmt = _detect_format(path)
    if fmt == "binary":
        try:
            return BinaryTraceCodec().decode(path.read_bytes())
        except TraceFormatError as exc:
            raise TraceFormatError(f"cannot decode binary trace {path}: {exc}") from exc
    return list(iter_trace_file(path))


def iter_trace_file(path: str | Path) -> Iterator[TraceEvent]:
    """Iterate lazily over a JSON-lines trace file.

    Binary traces are self-describing blobs and must be read with
    :func:`read_trace`; attempting to stream one raises
    :class:`~repro.errors.TraceFormatError`.
    """
    path = Path(path)
    _require_exists(path)
    if _detect_format(path) == "binary":
        raise TraceFormatError(
            "binary traces cannot be streamed line by line; use read_trace()"
        )
    codec = JsonTraceCodec()
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield codec.decode_event(line)


def read_trace_columns(path: str | Path) -> TraceColumns:
    """Read a whole trace file into columnar form.

    The columnar mirror of :func:`read_trace`: flat NumPy arrays instead of
    event objects (see :class:`~repro.trace.columns.TraceColumns`), with the
    raw buffer retained for lazy per-window materialisation.
    """
    path = Path(path)
    _require_exists(path)
    fmt = _detect_format(path)
    try:
        if fmt == "binary":
            return decode_binary_columns(path.read_bytes())
        return decode_json_columns(path.read_text(encoding="utf-8"))
    except TraceFormatError as exc:
        raise TraceFormatError(f"cannot decode trace {path}: {exc}") from exc


def iter_window_batches(
    path: str | Path,
    registry: EventTypeRegistry | None = None,
    *,
    batch_size: int = 64,
    policy: WindowPolicy = WindowPolicy.BY_DURATION,
    window_duration_us: int = 40_000,
    events_per_window: int = 256,
    start_us: int = 0,
    emit_empty: bool = True,
    prefetch: int = 0,
) -> Iterator[WindowBatch]:
    """Stream a trace file as columnar window batches.

    File bytes go straight to :class:`~repro.trace.batch.WindowBatch`
    micro-batches: vectorized decode, array-native windowing, lazy window
    materialisation.  With ``prefetch > 0`` the decode and batch
    construction run in a background producer thread at most ``prefetch``
    batches ahead of the consumer
    (:func:`~repro.trace.pipeline.prefetch_batches`), overlapping ingest
    with scoring.
    """
    registry = registry if registry is not None else EventTypeRegistry()

    def _generate() -> Iterator[WindowBatch]:
        columns = read_trace_columns(path)
        yield from iter_column_batches(
            columns,
            registry,
            batch_size=batch_size,
            policy=policy,
            window_duration_us=window_duration_us,
            events_per_window=events_per_window,
            start_us=start_us,
            emit_empty=emit_empty,
        )

    return prefetch_batches(_generate(), prefetch)
