"""Trace substrate: events, windows, streams, codecs and IO.

This subpackage models the data produced by the (simulated) low-intrusive
tracing hardware of an MPSoC platform: timestamped events, grouped into
windows of consecutive events, streamed to the online monitor.
"""

from .event import EventType, EventTypeRegistry, TraceEvent, DEFAULT_REGISTRY
from .window import TraceWindow
from .batch import LazyWindowRef, WindowBatch, batch_windows
from .columns import TraceColumns, encoded_window_sizes_columns
from .stream import (
    ColumnWindowLayout,
    ColumnarWindowSource,
    TraceStream,
    WindowPolicy,
    column_windows_by_count,
    column_windows_by_duration,
    iter_column_batches,
    materialize_layout_windows,
    windows_by_count,
    windows_by_duration,
)
from .codec import BinaryTraceCodec, JsonTraceCodec, encoded_event_size, encoded_trace_size
from .pipeline import prefetch_batches
from .reader import iter_trace_file, iter_window_batches, read_trace, read_trace_columns
from .writer import write_trace
from .stats import TraceStatistics, summarize
from .generator import SyntheticTraceGenerator, PeriodicTraceGenerator

__all__ = [
    "EventType",
    "EventTypeRegistry",
    "TraceEvent",
    "DEFAULT_REGISTRY",
    "TraceWindow",
    "WindowBatch",
    "LazyWindowRef",
    "batch_windows",
    "TraceColumns",
    "encoded_window_sizes_columns",
    "TraceStream",
    "WindowPolicy",
    "ColumnWindowLayout",
    "ColumnarWindowSource",
    "column_windows_by_count",
    "column_windows_by_duration",
    "iter_column_batches",
    "materialize_layout_windows",
    "windows_by_count",
    "windows_by_duration",
    "BinaryTraceCodec",
    "JsonTraceCodec",
    "encoded_event_size",
    "encoded_trace_size",
    "prefetch_batches",
    "read_trace",
    "iter_trace_file",
    "read_trace_columns",
    "iter_window_batches",
    "write_trace",
    "TraceStatistics",
    "summarize",
    "SyntheticTraceGenerator",
    "PeriodicTraceGenerator",
]
