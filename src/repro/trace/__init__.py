"""Trace substrate: events, windows, streams, codecs and IO.

This subpackage models the data produced by the (simulated) low-intrusive
tracing hardware of an MPSoC platform: timestamped events, grouped into
windows of consecutive events, streamed to the online monitor.
"""

from .event import EventType, EventTypeRegistry, TraceEvent, DEFAULT_REGISTRY
from .window import TraceWindow
from .batch import WindowBatch, batch_windows
from .stream import TraceStream, WindowPolicy, windows_by_count, windows_by_duration
from .codec import BinaryTraceCodec, JsonTraceCodec, encoded_event_size, encoded_trace_size
from .reader import read_trace, iter_trace_file
from .writer import write_trace
from .stats import TraceStatistics, summarize
from .generator import SyntheticTraceGenerator, PeriodicTraceGenerator

__all__ = [
    "EventType",
    "EventTypeRegistry",
    "TraceEvent",
    "DEFAULT_REGISTRY",
    "TraceWindow",
    "WindowBatch",
    "batch_windows",
    "TraceStream",
    "WindowPolicy",
    "windows_by_count",
    "windows_by_duration",
    "BinaryTraceCodec",
    "JsonTraceCodec",
    "encoded_event_size",
    "encoded_trace_size",
    "read_trace",
    "iter_trace_file",
    "write_trace",
    "TraceStatistics",
    "summarize",
    "SyntheticTraceGenerator",
    "PeriodicTraceGenerator",
]
