"""Bounded producer/consumer hand-off between ingest and scoring.

The columnar ingest plane removed per-event Python from the windowing hot
path, but a file-fed monitor still alternates between two phases: building
the next :class:`~repro.trace.batch.WindowBatch` (decode, mapping, byte
accounting — Python and small-array work) and scoring it (NumPy kernels).
:func:`prefetch_batches` overlaps the two with one background thread and a
bounded queue: the producer stays at most ``depth`` batches ahead, so memory
is capped at ``depth`` batches regardless of file size.

Ordering is preserved, exceptions raised by the producer surface in the
consumer at the point of the failed batch, and abandoning the iterator
(``close()`` / garbage collection of the generator) stops the producer
thread promptly.  Registry growth performed by the producer is safe to
observe from the consumer: a batch is only handed over *after* its types
are registered, and the queue crossing orders those writes before the
consumer's reads.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterable, Iterator, TypeVar

__all__ = ["prefetch_batches"]

T = TypeVar("T")

#: How long the producer waits on a full queue before re-checking whether
#: the consumer is gone.  Purely a shutdown-latency knob.
_PUT_POLL_S = 0.05


def _offer(
    q: "queue.Queue", item: object, stop: threading.Event
) -> bool:
    """Put ``item`` unless the consumer asked to stop; return success."""
    while not stop.is_set():
        try:
            q.put(item, timeout=_PUT_POLL_S)
            return True
        except queue.Full:
            continue
    return False


def prefetch_batches(iterable: Iterable[T], depth: int) -> Iterator[T]:
    """Iterate ``iterable`` through a ``depth``-bounded background producer.

    ``depth <= 0`` disables the thread entirely (plain iteration), so call
    sites can expose a single knob.
    """
    if depth <= 0:
        yield from iterable
        return

    handoff: "queue.Queue" = queue.Queue(maxsize=depth)
    stop = threading.Event()

    def _produce() -> None:
        try:
            for item in iterable:
                if not _offer(handoff, ("item", item), stop):
                    return
            _offer(handoff, ("done", None), stop)
        except BaseException as exc:  # noqa: BLE001 - re-raised consumer-side
            _offer(handoff, ("error", exc), stop)

    producer = threading.Thread(
        target=_produce, name="repro-ingest-prefetch", daemon=True
    )
    producer.start()
    try:
        while True:
            kind, value = handoff.get()
            if kind == "item":
                yield value
            elif kind == "error":
                raise value
            else:
                return
    finally:
        stop.set()
        # Drain so a producer blocked on a full queue can observe the stop.
        while True:
            try:
                handoff.get_nowait()
            except queue.Empty:
                break
        producer.join(timeout=5.0)
