"""Bounded producer/consumer hand-off between ingest and scoring.

The columnar ingest plane removed per-event Python from the windowing hot
path, but a file-fed monitor still alternates between two phases: building
the next :class:`~repro.trace.batch.WindowBatch` (decode, mapping, byte
accounting — Python and small-array work) and scoring it (NumPy kernels).
:func:`prefetch_batches` overlaps the two with one background thread and a
bounded queue: the producer stays at most ``depth`` batches ahead, so memory
is capped at ``depth`` batches regardless of file size.

The queue itself is :class:`BoundedHandoff`, which mirrors the accounting
policy of :class:`repro.media.bufferqueue.FrameBuffer` on the media side:
an explicit bounded depth, counted stalls on both ends (a producer stall is
the threaded analogue of a frame-buffer overrun, a consumer stall of an
underrun), a peak-occupancy watermark, and periodic level samples.  The
same hand-off backs the streaming sources in
:mod:`repro.trace.streaming` and the chunked per-shard channels of the
parallel fleet backend, so every inter-stage queue in the ingest plane
reports the same statistics.

Ordering is preserved, exceptions raised by the producer surface in the
consumer at the point of the failed batch, and abandoning the iterator
(``close()`` / garbage collection of the generator) stops the producer
thread promptly.  A producer thread that dies *without* posting its
completion sentinel (e.g. killed by the interpreter shutting down, or a
bug that escapes its exception handler) surfaces as a
:class:`~repro.errors.TraceStreamError` instead of blocking the consumer
forever.  Registry growth performed by the producer is safe to observe
from the consumer: a batch is only handed over *after* its types are
registered, and the queue crossing orders those writes before the
consumer's reads.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, TypeVar

from ..errors import TraceStreamError

__all__ = ["BoundedHandoff", "HandoffStats", "prefetch_batches"]

T = TypeVar("T")

#: How long the producer waits on a full queue before re-checking whether
#: the consumer is gone.  Purely a shutdown-latency knob.
_PUT_POLL_S = 0.05

#: How long the consumer waits on an empty queue before re-checking whether
#: the producer is still alive.  Purely a failure-detection-latency knob.
_GET_POLL_S = 0.05

#: Sample the queue occupancy once every this many completed operations.
_LEVEL_SAMPLE_EVERY = 32

#: Bound on retained occupancy samples (old samples are discarded first).
_MAX_LEVEL_SAMPLES = 256


@dataclass
class HandoffStats:
    """Occupancy and contention counters for one :class:`BoundedHandoff`.

    Mirrors the :class:`~repro.media.bufferqueue.FrameBuffer` policy:
    ``put_stalls`` counts the times a producer found the queue full
    (overrun pressure — the stage upstream outruns the stage downstream)
    and ``get_stalls`` the times a consumer found it empty (underrun
    pressure), alongside a peak-occupancy watermark and periodic level
    samples.
    """

    depth: int = 0
    puts: int = 0
    gets: int = 0
    put_stalls: int = 0
    get_stalls: int = 0
    peak_level: int = 0
    level_samples: List[int] = field(default_factory=list)

    def fill_fraction(self) -> float:
        """Peak occupancy as a fraction of capacity."""
        return self.peak_level / self.depth if self.depth else 0.0


class BoundedHandoff:
    """Bounded FIFO between pipeline stages with frame-buffer accounting.

    A thin wrapper over :class:`queue.Queue` whose blocking operations
    poll so that the waiting side can notice shutdown (producer: the
    consumer abandoned the iterator; consumer: the producer thread died)
    instead of blocking forever, and which counts stalls / samples
    occupancy as it goes.
    """

    def __init__(self, depth: int, stats: HandoffStats | None = None) -> None:
        if depth <= 0:
            raise TraceStreamError(
                f"hand-off queue depth must be >= 1 (got {depth})"
            )
        self._queue: "queue.Queue" = queue.Queue(maxsize=depth)
        self._lock = threading.Lock()
        self._ops = 0
        self.stats = stats if stats is not None else HandoffStats()
        self.stats.depth = int(depth)

    @property
    def depth(self) -> int:
        return self.stats.depth

    @property
    def level(self) -> int:
        """Approximate current occupancy."""
        return self._queue.qsize()

    def _record(self, *, put: bool) -> None:
        level = self._queue.qsize()
        with self._lock:
            if put:
                self.stats.puts += 1
                if level > self.stats.peak_level:
                    self.stats.peak_level = level
            else:
                self.stats.gets += 1
            self._ops += 1
            if self._ops % _LEVEL_SAMPLE_EVERY == 0:
                samples = self.stats.level_samples
                samples.append(level)
                if len(samples) > _MAX_LEVEL_SAMPLES:
                    del samples[: len(samples) - _MAX_LEVEL_SAMPLES]

    def put(
        self,
        item: T,
        stop: threading.Event | None = None,
        poll_s: float = _PUT_POLL_S,
    ) -> bool:
        """Block until ``item`` is queued; return ``False`` if ``stop`` fired.

        The first full-queue wait of each call is counted as one producer
        stall, however long it lasts.
        """
        stalled = False
        while stop is None or not stop.is_set():
            try:
                self._queue.put(item, timeout=poll_s)
            except queue.Full:
                if not stalled:
                    stalled = True
                    with self._lock:
                        self.stats.put_stalls += 1
                continue
            self._record(put=True)
            return True
        return False

    def get(
        self,
        keep_waiting: Callable[[], bool] | None = None,
        poll_s: float = _GET_POLL_S,
    ) -> T:
        """Block until an item arrives; raise :class:`queue.Empty` on abort.

        ``keep_waiting`` is consulted after each empty poll — when it
        returns ``False`` (e.g. the producer thread is no longer alive),
        one final non-blocking drain is attempted before giving up, so an
        item posted between the poll and the liveness check is not lost.
        The first empty-queue wait of each call counts as one consumer
        stall.
        """
        stalled = False
        while True:
            try:
                item = self._queue.get(timeout=poll_s)
            except queue.Empty:
                if not stalled:
                    stalled = True
                    with self._lock:
                        self.stats.get_stalls += 1
                if keep_waiting is not None and not keep_waiting():
                    item = self._queue.get_nowait()  # may re-raise Empty
                else:
                    continue
            self._record(put=False)
            return item

    def get_nowait(self) -> T:
        item = self._queue.get_nowait()
        self._record(put=False)
        return item

    def drain(self) -> int:
        """Discard queued items (so a blocked producer can observe a stop)."""
        discarded = 0
        while True:
            try:
                self._queue.get_nowait()
            except queue.Empty:
                return discarded
            discarded += 1


def prefetch_batches(
    iterable: Iterable[T],
    depth: int,
    stats: HandoffStats | None = None,
) -> Iterator[T]:
    """Iterate ``iterable`` through a ``depth``-bounded background producer.

    ``depth <= 0`` disables the thread entirely (plain iteration), so call
    sites can expose a single knob.  ``stats``, when given, is populated
    with the hand-off queue's occupancy/stall counters.

    Raises :class:`~repro.errors.TraceStreamError` if the producer thread
    dies without delivering either a completion sentinel or an error —
    previously this condition blocked the consumer in ``handoff.get()``
    forever.
    """
    if depth <= 0:
        yield from iterable
        return

    handoff: BoundedHandoff = BoundedHandoff(depth, stats=stats)
    stop = threading.Event()

    def _produce() -> None:
        try:
            for item in iterable:
                if not handoff.put(("item", item), stop=stop):
                    return
            handoff.put(("done", None), stop=stop)
        except BaseException as exc:  # noqa: BLE001 - re-raised consumer-side
            handoff.put(("error", exc), stop=stop)

    producer = threading.Thread(
        target=_produce, name="repro-ingest-prefetch", daemon=True
    )
    producer.start()
    try:
        while True:
            try:
                kind, value = handoff.get(keep_waiting=producer.is_alive)
            except queue.Empty:
                raise TraceStreamError(
                    "ingest prefetch producer thread died without delivering "
                    "a batch or a completion sentinel"
                ) from None
            if kind == "item":
                yield value
            elif kind == "error":
                raise value
            else:
                return
    finally:
        stop.set()
        # Drain so a producer blocked on a full queue can observe the stop.
        handoff.drain()
        producer.join(timeout=5.0)
