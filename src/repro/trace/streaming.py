"""Streaming columnar ingest: live trace sources as window-batch streams.

The columnar plane (:mod:`repro.trace.columns`, :mod:`repro.trace.stream`)
decodes *complete* files; production monitoring means unbounded sources — a
trace file still being appended by the tracing hardware, or a pipe/socket
delivering buffer flushes.  This module closes that gap:

* :class:`FileTail` — follow a (possibly still-growing, possibly not yet
  created) file, yielding byte chunks as they are appended, with a poll
  interval, an optional idle timeout and a stop event;
* :class:`PushFeed` — a thread-safe byte feed for pipes/sockets: a producer
  thread ``write()``\\ s chunks and the ingest side iterates them through a
  bounded :class:`~repro.trace.pipeline.BoundedHandoff`, so a slow consumer
  exerts backpressure on the producer instead of buffering without bound;
* :class:`StreamingWindowSource` — the heart of the module: consumes byte
  chunks through the resumable decoders
  (:class:`~repro.trace.columns.BinaryColumnsDecoder` /
  :class:`~repro.trace.columns.JsonColumnsDecoder`), cuts windows
  incrementally as events arrive, and emits
  :class:`~repro.trace.batch.WindowBatch` micro-batches that are **bit
  identical** to a one-shot read of the final file — same window extents,
  same registry growth, same byte accounting, same lazily materialised
  events.  Memory stays bounded: decoded events are discarded as soon as
  the batch that owns them has been handed over.

Every inter-stage queue follows the overrun/underrun policy of
:class:`repro.media.bufferqueue.FrameBuffer`: explicit bounded depth,
counted stalls on both ends, and occupancy sampling (see
:class:`~repro.trace.pipeline.HandoffStats`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from itertools import chain as _chain
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from ..errors import TraceFormatError, TraceStreamError
from ..testing.faults import corrupt_chunk
from .batch import WindowBatch
from .codec import _MAGIC
from .columns import (
    BinaryColumnsDecoder,
    JsonColumnsDecoder,
    TraceColumns,
    encoded_window_sizes_columns,
)
from .event import EventTypeRegistry
from .pipeline import BoundedHandoff, HandoffStats
from .stream import WindowPolicy, _check_sorted_columns, _ColumnCodeMapper
from .window import TraceWindow

__all__ = [
    "FileTail",
    "PushFeed",
    "StreamRecipe",
    "StreamStats",
    "StreamingWindowSource",
]


# ---------------------------------------------------------------------- #
# Byte-chunk sources
# ---------------------------------------------------------------------- #
class FileTail:
    """Iterate the bytes of a possibly still-growing trace file.

    Yields chunks of at most ``chunk_bytes`` as the file grows.  The
    iteration ends when ``stop`` is set or when the file has not grown for
    ``idle_timeout_s`` seconds (``None`` follows forever, like
    ``tail -f``).  A file that does not exist yet is waited for under the
    same idle/stop rules, so a monitor can be pointed at a trace path
    before the tracer creates it.
    """

    def __init__(
        self,
        path: "Path | str",
        poll_interval_s: float = 0.05,
        idle_timeout_s: float | None = None,
        stop: threading.Event | None = None,
        chunk_bytes: int = 1 << 20,
    ) -> None:
        if poll_interval_s <= 0:
            raise TraceStreamError(
                f"poll_interval_s must be positive (got {poll_interval_s})"
            )
        if idle_timeout_s is not None and idle_timeout_s < 0:
            raise TraceStreamError(
                f"idle_timeout_s must be >= 0 or None (got {idle_timeout_s})"
            )
        if chunk_bytes <= 0:
            raise TraceStreamError(
                f"chunk_bytes must be positive (got {chunk_bytes})"
            )
        self.path = Path(path)
        self.poll_interval_s = float(poll_interval_s)
        self.idle_timeout_s = (
            None if idle_timeout_s is None else float(idle_timeout_s)
        )
        self.chunk_bytes = int(chunk_bytes)
        self._stop = stop if stop is not None else threading.Event()
        self.bytes_read = 0

    def stop(self) -> None:
        """Ask the iteration to end at the next poll."""
        self._stop.set()

    def __iter__(self) -> Iterator[bytes]:
        handle = None
        deadline: float | None = None
        try:
            while not self._stop.is_set():
                if handle is None and self.path.exists():
                    handle = self.path.open("rb")
                if handle is not None:
                    data = handle.read(self.chunk_bytes)
                    if data:
                        deadline = None
                        self.bytes_read += len(data)
                        yield data
                        continue
                if self.idle_timeout_s is not None:
                    now = time.monotonic()
                    if deadline is None:
                        deadline = now + self.idle_timeout_s
                    if now >= deadline:
                        return
                time.sleep(self.poll_interval_s)
        finally:
            if handle is not None:
                handle.close()


class PushFeed:
    """Thread-safe byte feed with backpressure, for pipes and sockets.

    A producer thread (reading a socket, a subprocess pipe, …) calls
    :meth:`write` with byte chunks and :meth:`close` at end-of-stream; the
    ingest side iterates the feed.  The hand-off queue is bounded, so a
    producer that outruns the monitor blocks in :meth:`write` (one counted
    stall per wait) instead of buffering without bound.  Abandoning the
    consuming iterator unblocks any stuck writer with a
    :class:`~repro.errors.TraceStreamError`.
    """

    _DONE = ("done", None)

    def __init__(self, depth: int = 8, stats: HandoffStats | None = None) -> None:
        self._handoff: BoundedHandoff = BoundedHandoff(depth, stats=stats)
        self._closed = False
        self._abandoned = threading.Event()

    @property
    def stats(self) -> HandoffStats:
        """Occupancy/stall counters of the feed's hand-off queue."""
        return self._handoff.stats

    def write(self, data: bytes) -> None:
        """Queue ``data``, blocking while the monitor is ``depth`` behind."""
        if self._closed:
            raise TraceStreamError("cannot write to a closed feed")
        if not data:
            return
        if not self._handoff.put(("item", bytes(data)), stop=self._abandoned):
            raise TraceStreamError("feed consumer is gone (iterator abandoned)")

    def close(self) -> None:
        """Mark end-of-stream (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._handoff.put(self._DONE, stop=self._abandoned)

    def __iter__(self) -> Iterator[bytes]:
        try:
            while True:
                kind, value = self._handoff.get()
                if kind == "done":
                    return
                yield value
        finally:
            self._abandoned.set()
            self._handoff.drain()


# ---------------------------------------------------------------------- #
# Streaming windowing
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class StreamRecipe:
    """Windowing parameters of a streaming source (picklable).

    ``format`` applies to byte feeds only: ``"auto"`` sniffs the first
    four bytes for the binary magic, exactly like the file reader.
    ``window_duration_us`` left at ``None`` defers to the monitor
    configuration at activation, mirroring
    :class:`~repro.trace.stream.ColumnarWindowSource`.

    ``on_corrupt`` selects how the chunk decoders treat mangled records:
    ``"raise"`` (default) fails the stream on the first corrupt byte,
    ``"skip"`` quarantines the damaged region, resynchronises, and counts
    the loss in :class:`StreamStats` (``corrupt_records`` /
    ``corrupt_offsets``).
    """

    format: str = "auto"
    policy: WindowPolicy = WindowPolicy.BY_DURATION
    window_duration_us: int | None = None
    events_per_window: int = 256
    start_us: int = 0
    emit_empty: bool = True
    on_corrupt: str = "raise"

    def __post_init__(self) -> None:
        if self.format not in {"auto", "binary", "jsonl"}:
            raise TraceStreamError(f"unknown stream format: {self.format!r}")
        if self.window_duration_us is not None and self.window_duration_us <= 0:
            raise TraceStreamError("window_duration_us must be positive")
        if self.events_per_window <= 0:
            raise TraceStreamError("events_per_window must be positive")
        if self.on_corrupt not in {"raise", "skip"}:
            raise TraceStreamError(
                f"on_corrupt must be 'raise' or 'skip', got {self.on_corrupt!r}"
            )


@dataclass
class StreamStats:
    """Progress and memory-bound accounting of one streaming source."""

    chunks: int = 0
    events: int = 0
    windows: int = 0
    batches: int = 0
    #: High-water mark of decoded events buffered at once — the quantity
    #: the bounded-memory guarantee is about: it tracks batch size and
    #: window extent, not source size.
    peak_buffered_events: int = 0
    feed: HandoffStats | None = None
    #: Corrupt regions skipped by the decoder (``on_corrupt="skip"`` only):
    #: count, plus where each began — absolute byte offsets for binary
    #: streams, 1-based line numbers for JSON-lines streams.
    corrupt_records: int = 0
    corrupt_offsets: "tuple[int, ...]" = ()


class _StreamCodeMapper(_ColumnCodeMapper):
    """A :class:`_ColumnCodeMapper` whose type table grows with the stream.

    The registry snapshot is taken once, at construction (exactly when the
    one-shot ``batches_from_layout`` takes it); names that appear later in
    the stream extend the map against that same snapshot, so the
    stream-global code assignment matches the one-shot decode bit for bit.
    """

    __slots__ = ("_known",)

    def __init__(self, registry: EventTypeRegistry) -> None:
        self.names = ()
        self._known = registry.to_dict()
        self.map = np.empty(0, dtype=np.int32)

    def extend(self, names: Sequence[str]) -> None:
        if len(names) == len(self.names):
            return
        fresh = tuple(names[len(self.names) :])
        self.names = tuple(names)
        addition = np.fromiter(
            (self._known.get(name, -1) for name in fresh),
            dtype=np.int32,
            count=len(fresh),
        )
        self.map = np.concatenate((self.map, addition))


class _SpanView:
    """Duck-typed :class:`TraceColumns` stand-in for byte accounting.

    :func:`~repro.trace.columns.encoded_window_sizes_columns` only touches
    the flat arrays and the type-table length, so the streaming batch
    builder hands it the window buffers directly instead of building a
    throwaway :class:`TraceColumns`.
    """

    __slots__ = ("timestamps_us", "type_codes", "cores", "static_sizes", "type_names")

    def __init__(
        self,
        timestamps_us: np.ndarray,
        type_codes: np.ndarray,
        cores: np.ndarray,
        static_sizes: np.ndarray,
        type_names: Sequence[str],
    ) -> None:
        self.timestamps_us = timestamps_us
        self.type_codes = type_codes
        self.cores = cores
        self.static_sizes = static_sizes
        self.type_names = type_names


def _chain_events(
    chunks: Sequence[Tuple[int, TraceColumns]], start: int, stop: int
) -> tuple:
    """Materialise events ``start <= i < stop`` across retained chunks."""
    if start >= stop:
        return ()
    parts = []
    for chunk_start, chunk in chunks:
        chunk_end = chunk_start + len(chunk)
        if chunk_end <= start or chunk_start >= stop:
            continue
        parts.append(
            chunk.events(
                max(start, chunk_start) - chunk_start,
                min(stop, chunk_end) - chunk_start,
            )
        )
    if len(parts) == 1:
        return parts[0]
    return tuple(_chain.from_iterable(parts))


class StreamingWindowSource:
    """A live trace stream as monitor-ready window batches, bounded memory.

    Construct from ``byte_chunks`` (any iterable of byte chunks — a
    :class:`FileTail`, a :class:`PushFeed`, a socket reader) or from
    ``columns_chunks`` (already-decoded :class:`TraceColumns` chunks, as
    shipped over the parallel fleet's per-shard channels).  The source is
    single-pass and duck-types
    :meth:`~repro.trace.stream.ColumnarWindowSource.batches`, so it is
    accepted anywhere a fleet shard is.

    The emitted batches are bit-identical to a one-shot columnar read of
    the final stream contents: same window layout, same registry growth
    order, same ``dims``/byte-size accounting, same lazily materialised
    events.  Decoded events are discarded once the batch owning them has
    been yielded, so the buffered high-water mark
    (``stats.peak_buffered_events``) scales with ``batch_size`` times the
    window event count — never with the stream length.
    """

    def __init__(
        self,
        byte_chunks: Iterable[bytes] | None = None,
        *,
        columns_chunks: Iterable[TraceColumns] | None = None,
        recipe: StreamRecipe | None = None,
        stats: StreamStats | None = None,
    ) -> None:
        if (byte_chunks is None) == (columns_chunks is None):
            raise TraceStreamError(
                "exactly one of byte_chunks / columns_chunks must be given"
            )
        self.recipe = recipe if recipe is not None else StreamRecipe()
        self.stats = stats if stats is not None else StreamStats()
        self._byte_chunks = byte_chunks
        self._columns_chunks = columns_chunks
        self._columns_iter: Iterator[TraceColumns] | None = None
        self._exhausted = False
        self._batches_started = False
        self._duration: int | None = None
        # Stream-global type table (first-appearance order across chunks).
        self._global_names: list[str] = []
        self._global_codes: dict[str, int] = {}
        # Event buffers: absolute event index of element 0 is _buf_base.
        self._ts_buf = np.empty(0, dtype=np.int64)
        self._code_buf = np.empty(0, dtype=np.int32)
        self._core_buf = np.empty(0, dtype=np.int64)
        self._static_buf = np.empty(0, dtype=np.int64)
        self._buf_base = 0
        self._events_total = 0
        self._last_ts: int | None = None
        self._chunk_chain: List[Tuple[int, TraceColumns]] = []
        # Completed (but not yet batched) windows: absolute event spans.
        self._win_lo: list[int] = []
        self._win_hi: list[int] = []
        self._win_index: list[int] = []
        self._win_start: list[int] = []
        self._win_end: list[int] = []
        self._win_cursor = 0
        self._windows_emitted = 0
        self._consumed_abs = 0
        # Policy state.
        self._next_slot = 0  # BY_DURATION: first incomplete slot
        self._assigned_abs = 0  # BY_COUNT: first unassigned event
        self._count_window_start: int | None = None
        self._count_boundary: int = 0

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def follow(
        cls,
        path: "Path | str",
        *,
        recipe: StreamRecipe | None = None,
        poll_interval_s: float = 0.05,
        idle_timeout_s: float | None = None,
        stop: threading.Event | None = None,
        chunk_bytes: int = 1 << 20,
        stats: StreamStats | None = None,
    ) -> "StreamingWindowSource":
        """Follow ``path`` as it grows (see :class:`FileTail`)."""
        tail = FileTail(
            path,
            poll_interval_s=poll_interval_s,
            idle_timeout_s=idle_timeout_s,
            stop=stop,
            chunk_bytes=chunk_bytes,
        )
        source = cls(byte_chunks=tail, recipe=recipe, stats=stats)
        source.tail = tail
        return source

    # ------------------------------------------------------------------ #
    # Chunk intake
    # ------------------------------------------------------------------ #
    def _ensure_started(self, default_window_duration_us: int) -> None:
        if self._columns_iter is not None:
            return
        duration = (
            self.recipe.window_duration_us
            if self.recipe.window_duration_us is not None
            else default_window_duration_us
        )
        if duration <= 0:
            raise TraceStreamError("window_duration_us must be positive")
        self._duration = int(duration)
        if self._columns_chunks is not None:
            self._columns_iter = iter(self._columns_chunks)
        else:
            self._columns_iter = self._decode_chunks(self._byte_chunks)

    def _decode_chunks(self, byte_chunks: Iterable[bytes]) -> Iterator[TraceColumns]:
        fmt = self.recipe.format
        head = b""
        decoder = None
        for raw in byte_chunks:
            if not raw:
                continue
            data = corrupt_chunk("stream.chunk", bytes(raw))
            if decoder is None:
                head += data
                if fmt == "auto" and len(head) < 4:
                    continue
                decoder = self._make_decoder(head, fmt)
                data, head = head, b""
            columns = decoder.feed(data)
            self._note_corruption(decoder)
            if len(columns):
                yield columns
        if decoder is None:
            if not head:
                # Streaming analogue of the reader's empty-file error: the
                # stream *ended* (stop / idle timeout) without any bytes.
                raise TraceFormatError("empty trace stream")
            decoder = self._make_decoder(head, fmt)
            columns = decoder.feed(head)
            self._note_corruption(decoder)
            if len(columns):
                yield columns
        tail = decoder.finish()
        self._note_corruption(decoder)
        if len(tail):
            yield tail

    def _make_decoder(
        self, head: bytes, fmt: str
    ) -> "BinaryColumnsDecoder | JsonColumnsDecoder":
        if fmt == "auto":
            fmt = "binary" if _MAGIC.startswith(head[:4]) else "jsonl"
        on_corrupt = self.recipe.on_corrupt
        if fmt == "binary":
            return BinaryColumnsDecoder(on_corrupt=on_corrupt)
        return JsonColumnsDecoder(on_corrupt=on_corrupt)

    def _note_corruption(
        self, decoder: "BinaryColumnsDecoder | JsonColumnsDecoder"
    ) -> None:
        """Mirror the decoder's corruption tally into the stream stats."""
        if decoder.corrupt_records != self.stats.corrupt_records:
            self.stats.corrupt_records = decoder.corrupt_records
            self.stats.corrupt_offsets = decoder.corrupt_offsets

    def columns_chunks(self) -> Iterator[TraceColumns]:
        """The decoded chunk stream itself (single-pass; for shard feeders).

        Consuming this bypasses the windowing machinery — used by the
        parallel fleet, whose parent process pumps decoded chunks over a
        bounded channel while the worker rebuilds an identical source from
        them (:meth:`with_columns_chunks`).
        """
        if self._batches_started or self._columns_iter is not None:
            raise TraceStreamError("stream already consumed")
        self._batches_started = True
        if self._columns_chunks is not None:
            return iter(self._columns_chunks)
        return self._decode_chunks(self._byte_chunks)

    def with_columns_chunks(
        self, columns_chunks: Iterable[TraceColumns]
    ) -> "StreamingWindowSource":
        """A fresh source with the same recipe over pre-decoded chunks."""
        return StreamingWindowSource(
            columns_chunks=columns_chunks, recipe=self.recipe
        )

    def _pump(self) -> bool:
        """Advance by one chunk; ``False`` once exhausted (and finalised)."""
        if self._exhausted:
            return False
        assert self._columns_iter is not None
        try:
            chunk = next(self._columns_iter)
        except StopIteration:
            self._exhausted = True
            self._finalize_windows()
            return False
        self._extend(chunk)
        return True

    def _extend(self, chunk: TraceColumns) -> None:
        self.stats.chunks += 1
        n = len(chunk)
        if n:
            remap = np.empty(len(chunk.type_names), dtype=np.int32)
            for local, name in enumerate(chunk.type_names):
                code = self._global_codes.get(name)
                if code is None:
                    code = len(self._global_names)
                    self._global_codes[name] = code
                    self._global_names.append(name)
                remap[local] = code
            timestamps = chunk.timestamps_us
            first_ts = int(timestamps[0])
            if self._last_ts is not None and first_ts < self._last_ts:
                raise TraceStreamError(
                    "event stream is not sorted by timestamp "
                    f"({first_ts} after {self._last_ts})"
                )
            _check_sorted_columns(timestamps)
            if self._events_total == 0 and first_ts < self.recipe.start_us:
                raise TraceStreamError(
                    f"event at t={first_ts} precedes stream start "
                    f"{self.recipe.start_us}"
                )
            self._ts_buf = np.concatenate((self._ts_buf, timestamps))
            self._code_buf = np.concatenate(
                (self._code_buf, remap[chunk.type_codes])
            )
            self._core_buf = np.concatenate((self._core_buf, chunk.cores))
            self._static_buf = np.concatenate(
                (self._static_buf, chunk.static_sizes)
            )
            self._chunk_chain.append((self._events_total, chunk))
            self._events_total += n
            self.stats.events += n
            self._last_ts = int(timestamps[-1])
        self._advance_windows(final=False)
        if len(self._ts_buf) > self.stats.peak_buffered_events:
            self.stats.peak_buffered_events = len(self._ts_buf)

    # ------------------------------------------------------------------ #
    # Incremental windowing
    # ------------------------------------------------------------------ #
    def _advance_windows(self, final: bool) -> None:
        if self.recipe.policy is WindowPolicy.BY_DURATION:
            self._advance_duration(final)
        elif self.recipe.policy is WindowPolicy.BY_COUNT:
            self._advance_count(final)
        else:
            raise TraceStreamError(
                f"unknown window policy: {self.recipe.policy!r}"
            )

    def _advance_duration(self, final: bool) -> None:
        duration = self._duration
        assert duration is not None
        start0 = self.recipe.start_us
        if self._events_total == 0:
            if final and self.recipe.emit_empty and self._windows_emitted == 0:
                # One-shot layout of an empty trace: a single empty window.
                self._push_window(0, start0, start0 + duration, 0, 0)
            return
        assert self._last_ts is not None
        last_slot = (self._last_ts - start0) // duration
        # A slot is complete once an event at/after its end has arrived;
        # at end-of-stream the slot holding the last event completes too.
        until = last_slot + 1 if final else last_slot
        if until <= self._next_slot:
            return
        bounds = start0 + duration * np.arange(
            self._next_slot, until + 1, dtype=np.int64
        )
        relative = np.searchsorted(self._ts_buf, bounds, side="left")
        for k in range(len(bounds) - 1):
            lo = int(relative[k]) + self._buf_base
            hi = int(relative[k + 1]) + self._buf_base
            if hi > lo or self.recipe.emit_empty:
                index = (
                    self._next_slot + k
                    if self.recipe.emit_empty
                    else self._windows_emitted
                )
                self._push_window(
                    index, int(bounds[k]), int(bounds[k + 1]), lo, hi
                )
        self._assigned_abs = int(relative[-1]) + self._buf_base
        self._next_slot = until

    def _advance_count(self, final: bool) -> None:
        per_window = self.recipe.events_per_window
        while self._events_total - self._assigned_abs >= per_window:
            self._cut_count_window(self._assigned_abs + per_window)
        if final and self._events_total > self._assigned_abs:
            self._cut_count_window(self._events_total)

    def _cut_count_window(self, hi: int) -> None:
        lo = self._assigned_abs
        first_ts = int(self._ts_buf[lo - self._buf_base])
        last_ts = int(self._ts_buf[hi - 1 - self._buf_base])
        if self._windows_emitted == 0:
            if first_ts < self.recipe.start_us:
                raise TraceFormatError(
                    f"event at t={first_ts} outside window "
                    f"[{self.recipe.start_us}, {last_ts + 1})"
                )
            start = self.recipe.start_us
        elif first_ts == self._count_boundary:
            # Duplicate boundary timestamp: the window starts *at* the
            # boundary so the event falls inside its half-open extent.
            start = self._count_boundary
        else:
            start = self._count_boundary + 1
        self._push_window(self._windows_emitted, start, last_ts + 1, lo, hi)
        self._count_boundary = last_ts
        self._assigned_abs = hi

    def _push_window(
        self, index: int, start_us: int, end_us: int, lo: int, hi: int
    ) -> None:
        self._win_index.append(index)
        self._win_start.append(start_us)
        self._win_end.append(end_us)
        self._win_lo.append(lo)
        self._win_hi.append(hi)
        self._windows_emitted += 1
        self.stats.windows += 1

    def _finalize_windows(self) -> None:
        self._advance_windows(final=True)

    def _available(self) -> int:
        return len(self._win_index) - self._win_cursor

    # ------------------------------------------------------------------ #
    # Consumption
    # ------------------------------------------------------------------ #
    def reference_windows(
        self,
        reference_duration_us: int,
        default_window_duration_us: int = 40_000,
    ) -> list[TraceWindow]:
        """Consume the stream's reference prefix as materialised windows.

        Returns every window whose extent ends at or before
        ``start_us + reference_duration_us`` — exactly the prefix
        :meth:`TraceMonitor.run_on_columns` splits off for reference
        learning.  Must be called before :meth:`batches`.
        """
        if reference_duration_us <= 0:
            raise TraceStreamError("reference_duration_us must be positive")
        if self._batches_started:
            raise TraceStreamError("stream already consumed")
        self._ensure_started(default_window_duration_us)
        boundary = self.recipe.start_us + reference_duration_us
        while not self._win_end or self._win_end[-1] <= boundary:
            if not self._pump():
                break
        first_live = 0
        while (
            first_live < len(self._win_end)
            and self._win_end[first_live] <= boundary
        ):
            first_live += 1
        windows = [
            TraceWindow(
                index=self._win_index[w],
                start_us=self._win_start[w],
                end_us=self._win_end[w],
                events=_chain_events(
                    self._chunk_chain, self._win_lo[w], self._win_hi[w]
                ),
            )
            for w in range(first_live)
        ]
        self._win_cursor = first_live
        if first_live:
            self._consumed_abs = self._win_hi[first_live - 1]
            self._compact()
        return windows

    def batches(
        self,
        registry: EventTypeRegistry,
        batch_size: int,
        default_window_duration_us: int = 40_000,
    ) -> Iterator[WindowBatch]:
        """Yield the stream's window batches against ``registry``.

        Single-pass: pulls chunks from the source on demand, yields a
        batch as soon as ``batch_size`` windows have completed (only the
        final batch may be shorter), and releases buffered events once
        their batch is out.  Signature-compatible with
        :meth:`~repro.trace.stream.ColumnarWindowSource.batches`, so the
        fleet treats both source kinds uniformly.
        """
        if batch_size <= 0:
            raise TraceStreamError("batch_size must be positive")
        if self._batches_started:
            raise TraceStreamError("stream already consumed")
        self._batches_started = True
        self._ensure_started(default_window_duration_us)

        def _generate() -> Iterator[WindowBatch]:
            mapper = _StreamCodeMapper(registry)
            while True:
                while self._available() >= batch_size:
                    yield self._build_batch(registry, mapper, batch_size)
                if not self._pump():
                    break
            while self._available():
                yield self._build_batch(
                    registry, mapper, min(batch_size, self._available())
                )

        return _generate()

    def _build_batch(
        self,
        registry: EventTypeRegistry,
        mapper: _StreamCodeMapper,
        n_windows: int,
    ) -> WindowBatch:
        cursor = self._win_cursor
        stop = cursor + n_windows
        offsets_abs = np.empty(n_windows + 1, dtype=np.int64)
        offsets_abs[:-1] = self._win_lo[cursor:stop]
        offsets_abs[-1] = self._win_hi[stop - 1]
        lo_abs, hi_abs = int(offsets_abs[0]), int(offsets_abs[-1])
        rel_lo = lo_abs - self._buf_base
        rel_hi = hi_abs - self._buf_base
        file_codes = self._code_buf[rel_lo:rel_hi]
        mapper.extend(self._global_names)
        dimension_before = len(registry)
        growth = mapper.register_span(file_codes, lo_abs, registry)
        codes = mapper.map[file_codes]
        if growth.size:
            dims = dimension_before + np.searchsorted(
                growth, offsets_abs[1:], side="left"
            )
        else:
            dims = np.full(n_windows, dimension_before, dtype=np.int64)
        sizes = encoded_window_sizes_columns(
            _SpanView(
                self._ts_buf,
                self._code_buf,
                self._core_buf,
                self._static_buf,
                tuple(self._global_names),
            ),
            offsets_abs - self._buf_base,
        )
        indices = np.array(self._win_index[cursor:stop], dtype=np.int64)
        starts = np.array(self._win_start[cursor:stop], dtype=np.int64)
        ends = np.array(self._win_end[cursor:stop], dtype=np.int64)
        span_chunks = [
            (chunk_start, chunk)
            for chunk_start, chunk in self._chunk_chain
            if chunk_start < hi_abs and chunk_start + len(chunk) > lo_abs
        ]
        offsets_snapshot = offsets_abs.copy()

        def factory(position: int) -> TraceWindow:
            return TraceWindow(
                index=int(indices[position]),
                start_us=int(starts[position]),
                end_us=int(ends[position]),
                events=_chain_events(
                    span_chunks,
                    int(offsets_snapshot[position]),
                    int(offsets_snapshot[position + 1]),
                ),
            )

        batch = WindowBatch(
            codes=codes,
            offsets=offsets_abs - lo_abs,
            indices=indices,
            start_us=starts,
            end_us=ends,
            dims=dims,
            dimension=len(registry),
            windows=None,
            window_sizes=sizes,
            window_factory=factory,
        )
        self._win_cursor = stop
        self._consumed_abs = hi_abs
        self.stats.batches += 1
        self._compact()
        return batch

    def _compact(self) -> None:
        """Release buffered events and windows already handed over."""
        cut = self._consumed_abs - self._buf_base
        if cut > 0:
            self._ts_buf = self._ts_buf[cut:].copy()
            self._code_buf = self._code_buf[cut:].copy()
            self._core_buf = self._core_buf[cut:].copy()
            self._static_buf = self._static_buf[cut:].copy()
            self._buf_base = self._consumed_abs
            self._chunk_chain = [
                (chunk_start, chunk)
                for chunk_start, chunk in self._chunk_chain
                if chunk_start + len(chunk) > self._consumed_abs
            ]
        if self._win_cursor:
            del self._win_index[: self._win_cursor]
            del self._win_start[: self._win_cursor]
            del self._win_end[: self._win_cursor]
            del self._win_lo[: self._win_cursor]
            del self._win_hi[: self._win_cursor]
            self._win_cursor = 0
