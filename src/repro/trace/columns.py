"""Columnar trace decode: raw trace bytes to flat NumPy arrays.

The object decoders (:meth:`~repro.trace.codec.BinaryTraceCodec.decode`,
:meth:`~repro.trace.codec.JsonTraceCodec.decode`) materialise one
:class:`~repro.trace.event.TraceEvent` per event — convenient, but the
per-event allocation cost dominates file-fed monitoring now that scoring is
vectorized.  :class:`TraceColumns` is the columnar alternative: one pass over
the raw buffer fills flat arrays —

* ``timestamps_us`` — ``int64`` microsecond timestamps, in stream order;
* ``type_codes`` — ``int32`` event-type codes against the columns' own
  *file registry* (``type_names``, first-appearance order);
* ``cores`` — ``int64`` core indices;
* ``static_sizes`` — ``int64`` per-event byte cost of the binary codec's
  core/task/payload fields (everything except the per-window varint-encoded
  timestamp delta and event-type code), so window byte accounting is a
  vectorized sum instead of an encode pass.

The raw source (binary buffer + per-record offsets, JSON-lines text + line
spans, or the original event tuple) is kept alongside the arrays, so
:class:`~repro.trace.event.TraceEvent` objects can still be materialised
lazily — the recorder only needs them for the windows it actually writes.
A :class:`TraceColumns` pickles as a handful of arrays plus one flat
buffer, far cheaper than a list of event objects, which is what the
process-parallel fleet ships to its workers on spawn-only platforms.

Decoding is bit-identical to the object decoders: rebuilding the events
from the columns reproduces ``read_trace`` exactly, and the derived window
sizes equal :func:`~repro.trace.codec.encoded_window_sizes` (the property
suite asserts both).
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

import numpy as np

from ..errors import TraceFormatError
from .codec import (
    _MAGIC,
    JsonTraceCodec,
    _decode_varint,
    _parse_segment_header,
    _varint_size,
)
from .event import TraceEvent

#: Shared stateless codec for lazy JSON-line materialisation.
_JSON_CODEC = JsonTraceCodec()

__all__ = [
    "TraceColumns",
    "decode_binary_columns",
    "decode_json_columns",
    "encoded_window_sizes_columns",
    "varint_size_array",
]


def varint_size_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`~repro.trace.codec._varint_size` over an array.

    Exact (no floating-point log tricks): one compare-and-add per extra
    varint byte, at most nine iterations for ``int64`` input.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size and int(values.min()) < 0:
        bad = int(values[values < 0][0])
        raise TraceFormatError(f"cannot varint-encode negative value {bad}")
    sizes = np.ones(len(values), dtype=np.int64)
    shifted = values >> 7
    while shifted.any():
        sizes += shifted > 0
        shifted >>= 7
    return sizes


class TraceColumns:
    """A whole trace as flat arrays plus a lazily decodable raw source.

    Instances are produced by :func:`decode_binary_columns`,
    :func:`decode_json_columns`, :meth:`TraceColumns.from_events` or
    :func:`~repro.trace.reader.read_trace_columns`; the constructor wires
    pre-validated arrays and is not meant to be called directly.
    """

    __slots__ = (
        "timestamps_us",
        "type_codes",
        "cores",
        "type_names",
        "static_sizes",
        "_source_kind",
        "_binary_data",
        "_record_offsets",
        "_text",
        "_line_starts",
        "_line_ends",
        "_events",
    )

    def __init__(
        self,
        timestamps_us: np.ndarray,
        type_codes: np.ndarray,
        cores: np.ndarray,
        type_names: tuple[str, ...],
        static_sizes: np.ndarray,
        source_kind: str,
        binary_data: bytes | None = None,
        record_offsets: np.ndarray | None = None,
        text: str | None = None,
        line_starts: np.ndarray | None = None,
        line_ends: np.ndarray | None = None,
        events: tuple[TraceEvent, ...] | None = None,
    ) -> None:
        self.timestamps_us = np.asarray(timestamps_us, dtype=np.int64)
        self.type_codes = np.asarray(type_codes, dtype=np.int32)
        self.cores = np.asarray(cores, dtype=np.int64)
        self.type_names = tuple(type_names)
        self.static_sizes = np.asarray(static_sizes, dtype=np.int64)
        n = len(self.timestamps_us)
        for name, array in (
            ("type_codes", self.type_codes),
            ("cores", self.cores),
            ("static_sizes", self.static_sizes),
        ):
            if len(array) != n:
                raise TraceFormatError(
                    f"column {name} length {len(array)} does not match "
                    f"event count {n}"
                )
        if source_kind not in {"binary", "jsonl", "events"}:
            raise TraceFormatError(f"unknown column source kind: {source_kind!r}")
        self._source_kind = source_kind
        self._binary_data = binary_data
        self._record_offsets = record_offsets
        self._text = text
        self._line_starts = line_starts
        self._line_ends = line_ends
        self._events = events

    # ------------------------------------------------------------------ #
    # Container behaviour
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.timestamps_us)

    @property
    def n_events(self) -> int:
        """Total number of events in the trace."""
        return len(self.timestamps_us)

    @property
    def source_kind(self) -> str:
        """Where lazily materialised events come from (binary/jsonl/events)."""
        return self._source_kind

    @property
    def duration_us(self) -> int:
        """Extent of the trace (last timestamp; 0 when empty)."""
        if not len(self.timestamps_us):
            return 0
        return int(self.timestamps_us[-1])

    # ------------------------------------------------------------------ #
    # Construction from in-memory events
    # ------------------------------------------------------------------ #
    @classmethod
    def from_events(cls, events: Iterable[TraceEvent]) -> "TraceColumns":
        """Build columns from an in-memory event sequence.

        Useful for feeding simulated (never serialised) traces through the
        columnar ingest plane; the events themselves back the lazy
        materialisation, so round-tripping is free.
        """
        events = tuple(events)
        n = len(events)
        timestamps = np.empty(n, dtype=np.int64)
        codes = np.empty(n, dtype=np.int32)
        cores = np.empty(n, dtype=np.int64)
        static = np.empty(n, dtype=np.int64)
        code_by_name: dict[str, int] = {}
        names: list[str] = []
        task_cache: dict[str, int] = {}
        for i, event in enumerate(events):
            timestamps[i] = event.timestamp_us
            code = code_by_name.get(event.etype)
            if code is None:
                code = len(names)
                code_by_name[event.etype] = code
                names.append(event.etype)
            codes[i] = code
            cores[i] = event.core
            static[i] = 1 + _task_field_size(event.task, task_cache) + (
                _payload_field_size(event.args)
            )
        return cls(
            timestamps_us=timestamps,
            type_codes=codes,
            cores=cores,
            type_names=tuple(names),
            static_sizes=static,
            source_kind="events",
            events=events,
        )

    # ------------------------------------------------------------------ #
    # Lazy event materialisation
    # ------------------------------------------------------------------ #
    def events(self, start: int, stop: int) -> tuple[TraceEvent, ...]:
        """Materialise events ``start <= i < stop`` from the raw source.

        Bit-identical to the corresponding slice of the object decode; only
        called for windows the recorder actually persists (or keeps).
        """
        if start < 0 or stop > len(self) or start > stop:
            raise TraceFormatError(
                f"event slice [{start}, {stop}) out of range for "
                f"{len(self)} events"
            )
        if self._source_kind == "events":
            assert self._events is not None
            return self._events[start:stop]
        if self._source_kind == "binary":
            return tuple(self._binary_event(i) for i in range(start, stop))
        return tuple(self._json_event(i) for i in range(start, stop))

    def to_events(self) -> tuple[TraceEvent, ...]:
        """Materialise the whole trace (the object-decode result)."""
        return self.events(0, len(self))

    def _binary_event(self, i: int) -> TraceEvent:
        data = self._binary_data
        assert data is not None and self._record_offsets is not None
        offset = int(self._record_offsets[i])
        _, offset = _decode_varint(data, offset)  # delta (timestamp known)
        _, offset = _decode_varint(data, offset)  # segment-local code
        offset += 1  # core byte (known)
        task_len, offset = _decode_varint(data, offset)
        try:
            task = data[offset : offset + task_len].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise TraceFormatError(
                "malformed task name in binary trace"
            ) from exc
        offset += task_len
        payload_len, offset = _decode_varint(data, offset)
        # The columnar decode only length-skipped the payload; a corrupt
        # payload therefore surfaces here, at materialisation, with the
        # same error the object decoder raises at read time.
        try:
            if payload_len:
                args = json.loads(
                    data[offset : offset + payload_len].decode("utf-8")
                )
            else:
                args = {}
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise TraceFormatError(
                "malformed event payload in binary trace"
            ) from exc
        return TraceEvent(
            timestamp_us=int(self.timestamps_us[i]),
            etype=self.type_names[int(self.type_codes[i])],
            core=int(self.cores[i]),
            task=task,
            args=args,
        )

    def _json_event(self, i: int) -> TraceEvent:
        assert (
            self._text is not None
            and self._line_starts is not None
            and self._line_ends is not None
        )
        line = self._text[int(self._line_starts[i]) : int(self._line_ends[i])]
        return _JSON_CODEC.decode_event(line)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceColumns(n_events={len(self)}, "
            f"n_types={len(self.type_names)}, source={self._source_kind!r})"
        )


def _task_field_size(task: str, cache: dict[str, int]) -> int:
    """Encoded size of the task field (varint length prefix + UTF-8 bytes)."""
    size = cache.get(task)
    if size is None:
        length = len(task.encode("utf-8"))
        size = _varint_size(length) + length
        cache[task] = size
    return size


def _payload_field_size(args) -> int:
    """Encoded size of the payload field, mirroring ``encoded_trace_size``."""
    if not args:
        return 1
    # json.dumps escapes non-ASCII by default, so the string length equals
    # the UTF-8 byte length (same shortcut as encoded_trace_size).
    length = len(json.dumps(dict(args), sort_keys=True, separators=(",", ":")))
    return _varint_size(length) + length


# ---------------------------------------------------------------------- #
# Vectorized decoders
# ---------------------------------------------------------------------- #
def decode_binary_columns(data: bytes) -> TraceColumns:
    """Decode a (possibly segmented) binary trace blob into columns.

    Walks the records once — varint lengths only, no UTF-8 decode, no JSON
    parse, no event objects — and fills the flat arrays.  Concatenated
    segments (as written by the binary recording sink) share one global
    type table built in first-appearance order.
    """
    if data[:4] != _MAGIC:
        raise TraceFormatError("not a binary trace (bad magic)")
    name_codes: dict[str, int] = {}
    names: list[str] = []
    ts_parts: list[np.ndarray] = []
    code_parts: list[np.ndarray] = []
    core_parts: list[np.ndarray] = []
    static_parts: list[np.ndarray] = []
    offset_parts: list[np.ndarray] = []
    size = len(data)
    offset = 0
    while offset < size:
        # Shared header walk with the object decoder (magic, length,
        # version, registry contiguity) — the two decoders cannot diverge.
        segment_registry, count, offset = _parse_segment_header(data, offset)
        segment_names = segment_registry.names
        remap = np.empty(len(segment_names), dtype=np.int32)
        for local, name in enumerate(segment_names):
            code = name_codes.get(name)
            if code is None:
                code = len(names)
                name_codes[name] = code
                names.append(name)
            remap[local] = code
        timestamps = np.empty(count, dtype=np.int64)
        codes = np.empty(count, dtype=np.int32)
        cores = np.empty(count, dtype=np.int64)
        static = np.empty(count, dtype=np.int64)
        records = np.empty(count, dtype=np.int64)
        previous = 0
        n_segment_types = len(segment_names)
        for i in range(count):
            records[i] = offset
            delta, offset = _decode_varint(data, offset)
            code, offset = _decode_varint(data, offset)
            if code >= n_segment_types:
                raise TraceFormatError(f"unknown event-type code: {code}")
            if offset >= size:
                raise TraceFormatError("truncated event record")
            core = data[offset]
            offset += 1
            task_len, task_end = _decode_varint(data, offset)
            task_field = (task_end - offset) + task_len
            offset = task_end + task_len
            if offset > size:
                raise TraceFormatError("truncated event record")
            payload_len, payload_end = _decode_varint(data, offset)
            payload_field = (payload_end - offset) + payload_len
            offset = payload_end + payload_len
            if offset > size:
                raise TraceFormatError("truncated event record")
            previous += delta
            timestamps[i] = previous
            codes[i] = remap[code]
            cores[i] = core
            static[i] = 1 + task_field + payload_field
        ts_parts.append(timestamps)
        code_parts.append(codes)
        core_parts.append(cores)
        static_parts.append(static)
        offset_parts.append(records)
    return TraceColumns(
        timestamps_us=_concat(ts_parts, np.int64),
        type_codes=_concat(code_parts, np.int32),
        cores=_concat(core_parts, np.int64),
        type_names=tuple(names),
        static_sizes=_concat(static_parts, np.int64),
        source_kind="binary",
        binary_data=data,
        record_offsets=_concat(offset_parts, np.int64),
    )


def _concat(parts: Sequence[np.ndarray], dtype) -> np.ndarray:
    if not parts:
        return np.empty(0, dtype=dtype)
    if len(parts) == 1:
        return parts[0]
    return np.concatenate(parts)


def decode_json_columns(text: str) -> TraceColumns:
    """Decode a JSON-lines trace into columns.

    One ``json.loads`` per line is unavoidable, but nothing else per event
    is: no :class:`TraceEvent` construction, no per-event windowing, and
    the byte accounting inputs are computed inline (task field sizes are
    cached per task name).  Empty lines are skipped exactly as the object
    reader does.
    """
    timestamps: list[int] = []
    codes: list[int] = []
    cores: list[int] = []
    static: list[int] = []
    line_starts: list[int] = []
    line_ends: list[int] = []
    name_codes: dict[str, int] = {}
    names: list[str] = []
    task_cache: dict[str, int] = {}
    position = 0
    for raw in text.split("\n"):
        start = position
        position += len(raw) + 1
        line = raw.strip()
        if not line:
            continue
        lead = len(raw) - len(raw.lstrip())
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"malformed JSON event line: {line!r}") from exc
        try:
            timestamp = int(record["t"])
            etype = str(record["type"])
            core = int(record.get("core", 0))
            task = str(record.get("task", ""))
            args = dict(record.get("args", {}))
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"malformed event record: {record!r}") from exc
        if timestamp < 0:
            raise TraceFormatError(f"negative timestamp: {timestamp}")
        code = name_codes.get(etype)
        if code is None:
            code = len(names)
            name_codes[etype] = code
            names.append(etype)
        task_field = _task_field_size(task, task_cache)
        payload_field = _payload_field_size(args)
        timestamps.append(timestamp)
        codes.append(code)
        cores.append(core)
        static.append(1 + task_field + payload_field)
        line_starts.append(start + lead)
        line_ends.append(start + lead + len(line))
    return TraceColumns(
        timestamps_us=np.array(timestamps, dtype=np.int64),
        type_codes=np.array(codes, dtype=np.int32),
        cores=np.array(cores, dtype=np.int64),
        type_names=tuple(names),
        static_sizes=np.array(static, dtype=np.int64),
        source_kind="jsonl",
        text=text,
        line_starts=np.array(line_starts, dtype=np.int64),
        line_ends=np.array(line_ends, dtype=np.int64),
    )


# ---------------------------------------------------------------------- #
# Vectorized window byte accounting
# ---------------------------------------------------------------------- #
def encoded_window_sizes_columns(
    columns: TraceColumns, event_offsets: np.ndarray
) -> np.ndarray:
    """Binary-encoded size of consecutive windows, straight from columns.

    ``event_offsets`` delimits the windows (CSR-style, length
    ``n_windows + 1``, global event indices).  Bit-identical to
    :func:`~repro.trace.codec.encoded_window_sizes` over the materialised
    windows: per window, timestamp deltas restart (the first event is
    encoded against timestamp 0) and event-type codes come from a fresh
    per-window registry, exactly like the recorder's accounting.
    """
    offsets = np.asarray(event_offsets, dtype=np.int64)
    if len(offsets) == 0:
        raise TraceFormatError("event_offsets must contain at least one entry")
    lo, hi = int(offsets[0]), int(offsets[-1])
    n_span = hi - lo
    cores = columns.cores[lo:hi]
    if n_span and (int(cores.min()) < 0 or int(cores.max()) > 0xFF):
        bad = int(cores[(cores < 0) | (cores > 0xFF)][0])
        raise TraceFormatError(
            f"core index {bad} does not fit the codec's 1-byte core field "
            "(valid range 0-255)"
        )
    local = offsets - lo
    totals = np.zeros(n_span, dtype=np.int64)
    if n_span:
        segment = columns.timestamps_us[lo:hi]
        deltas = np.empty(n_span, dtype=np.int64)
        deltas[0] = segment[0]
        np.subtract(segment[1:], segment[:-1], out=deltas[1:])
        starts = local[:-1]
        starts = starts[starts < n_span]
        deltas[starts] = segment[starts]
        if int(deltas.min()) < 0:
            bad = int(np.flatnonzero(deltas < 0)[0])
            raise TraceFormatError(
                "events must be encoded in timestamp order "
                f"({int(segment[bad])} after {int(segment[bad - 1])})"
            )
        totals += varint_size_array(deltas)
        totals += columns.static_sizes[lo:hi]
        if len(columns.type_names) <= 0x80:
            # Every within-window first-appearance code fits one varint byte.
            totals += 1
        else:
            totals += _window_code_sizes(columns.type_codes[lo:hi], local)
    cumulative = np.concatenate(([0], np.cumsum(totals)))
    return cumulative[local[1:]] - cumulative[local[:-1]]


def _window_code_sizes(codes: np.ndarray, local_offsets: np.ndarray) -> np.ndarray:
    """Per-event varint size of the per-window fresh-registry type code.

    Slow path, only reached when a trace carries more than 128 distinct
    event types (a window could then need 2-byte codes).  Mirrors the
    ``codes.setdefault(etype, len(codes))`` numbering of
    :func:`~repro.trace.codec.encoded_trace_size`.
    """
    sizes = np.empty(len(codes), dtype=np.int64)
    for w in range(len(local_offsets) - 1):
        ranks: dict[int, int] = {}
        for i in range(int(local_offsets[w]), int(local_offsets[w + 1])):
            rank = ranks.setdefault(int(codes[i]), len(ranks))
            sizes[i] = _varint_size(rank)
    return sizes


