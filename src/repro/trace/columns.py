"""Columnar trace decode: raw trace bytes to flat NumPy arrays.

The object decoders (:meth:`~repro.trace.codec.BinaryTraceCodec.decode`,
:meth:`~repro.trace.codec.JsonTraceCodec.decode`) materialise one
:class:`~repro.trace.event.TraceEvent` per event — convenient, but the
per-event allocation cost dominates file-fed monitoring now that scoring is
vectorized.  :class:`TraceColumns` is the columnar alternative: one pass over
the raw buffer fills flat arrays —

* ``timestamps_us`` — ``int64`` microsecond timestamps, in stream order;
* ``type_codes`` — ``int32`` event-type codes against the columns' own
  *file registry* (``type_names``, first-appearance order);
* ``cores`` — ``int64`` core indices;
* ``static_sizes`` — ``int64`` per-event byte cost of the binary codec's
  core/task/payload fields (everything except the per-window varint-encoded
  timestamp delta and event-type code), so window byte accounting is a
  vectorized sum instead of an encode pass.

The raw source (binary buffer + per-record offsets, JSON-lines text + line
spans, or the original event tuple) is kept alongside the arrays, so
:class:`~repro.trace.event.TraceEvent` objects can still be materialised
lazily — the recorder only needs them for the windows it actually writes.
A :class:`TraceColumns` pickles as a handful of arrays plus one flat
buffer, far cheaper than a list of event objects, which is what the
process-parallel fleet ships to its workers on spawn-only platforms.

Decoding is bit-identical to the object decoders: rebuilding the events
from the columns reproduces ``read_trace`` exactly, and the derived window
sizes equal :func:`~repro.trace.codec.encoded_window_sizes` (the property
suite asserts both).
"""

from __future__ import annotations

import codecs
import json
import struct
from typing import Any, Iterable, Mapping, Sequence

from numpy.typing import DTypeLike

import numpy as np

from ..errors import TraceFormatError
from .codec import (
    _MAGIC,
    JsonTraceCodec,
    _decode_varint,
    _parse_segment_header,
    _varint_size,
)
from .event import TraceEvent

#: Shared stateless codec for lazy JSON-line materialisation.
_JSON_CODEC = JsonTraceCodec()

__all__ = [
    "BinaryColumnsDecoder",
    "JsonColumnsDecoder",
    "TraceColumns",
    "decode_binary_columns",
    "decode_json_columns",
    "encoded_window_sizes_columns",
    "varint_size_array",
]


def varint_size_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`~repro.trace.codec._varint_size` over an array.

    Exact (no floating-point log tricks): one compare-and-add per extra
    varint byte, at most nine iterations for ``int64`` input.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size and int(values.min()) < 0:
        bad = int(values[values < 0][0])
        raise TraceFormatError(f"cannot varint-encode negative value {bad}")
    sizes = np.ones(len(values), dtype=np.int64)
    shifted = values >> 7
    while shifted.any():
        sizes += shifted > 0
        shifted >>= 7
    return sizes


class TraceColumns:
    """A whole trace as flat arrays plus a lazily decodable raw source.

    Instances are produced by :func:`decode_binary_columns`,
    :func:`decode_json_columns`, :meth:`TraceColumns.from_events` or
    :func:`~repro.trace.reader.read_trace_columns`; the constructor wires
    pre-validated arrays and is not meant to be called directly.
    """

    __slots__ = (
        "timestamps_us",
        "type_codes",
        "cores",
        "type_names",
        "static_sizes",
        "_source_kind",
        "_binary_data",
        "_record_offsets",
        "_text",
        "_line_starts",
        "_line_ends",
        "_events",
    )

    def __init__(
        self,
        timestamps_us: np.ndarray,
        type_codes: np.ndarray,
        cores: np.ndarray,
        type_names: tuple[str, ...],
        static_sizes: np.ndarray,
        source_kind: str,
        binary_data: bytes | None = None,
        record_offsets: np.ndarray | None = None,
        text: str | None = None,
        line_starts: np.ndarray | None = None,
        line_ends: np.ndarray | None = None,
        events: tuple[TraceEvent, ...] | None = None,
    ) -> None:
        self.timestamps_us = np.asarray(timestamps_us, dtype=np.int64)
        self.type_codes = np.asarray(type_codes, dtype=np.int32)
        self.cores = np.asarray(cores, dtype=np.int64)
        self.type_names = tuple(type_names)
        self.static_sizes = np.asarray(static_sizes, dtype=np.int64)
        n = len(self.timestamps_us)
        for name, array in (
            ("type_codes", self.type_codes),
            ("cores", self.cores),
            ("static_sizes", self.static_sizes),
        ):
            if len(array) != n:
                raise TraceFormatError(
                    f"column {name} length {len(array)} does not match "
                    f"event count {n}"
                )
        if source_kind not in {"binary", "jsonl", "events"}:
            raise TraceFormatError(f"unknown column source kind: {source_kind!r}")
        self._source_kind = source_kind
        self._binary_data = binary_data
        self._record_offsets = record_offsets
        self._text = text
        self._line_starts = line_starts
        self._line_ends = line_ends
        self._events = events

    # ------------------------------------------------------------------ #
    # Container behaviour
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.timestamps_us)

    @property
    def n_events(self) -> int:
        """Total number of events in the trace."""
        return len(self.timestamps_us)

    @property
    def source_kind(self) -> str:
        """Where lazily materialised events come from (binary/jsonl/events)."""
        return self._source_kind

    @property
    def duration_us(self) -> int:
        """Extent of the trace (last timestamp; 0 when empty)."""
        if not len(self.timestamps_us):
            return 0
        return int(self.timestamps_us[-1])

    # ------------------------------------------------------------------ #
    # Construction from in-memory events
    # ------------------------------------------------------------------ #
    @classmethod
    def from_events(cls, events: Iterable[TraceEvent]) -> "TraceColumns":
        """Build columns from an in-memory event sequence.

        Useful for feeding simulated (never serialised) traces through the
        columnar ingest plane; the events themselves back the lazy
        materialisation, so round-tripping is free.
        """
        events = tuple(events)
        n = len(events)
        timestamps = np.empty(n, dtype=np.int64)
        codes = np.empty(n, dtype=np.int32)
        cores = np.empty(n, dtype=np.int64)
        static = np.empty(n, dtype=np.int64)
        code_by_name: dict[str, int] = {}
        names: list[str] = []
        task_cache: dict[str, int] = {}
        for i, event in enumerate(events):
            timestamps[i] = event.timestamp_us
            code = code_by_name.get(event.etype)
            if code is None:
                code = len(names)
                code_by_name[event.etype] = code
                names.append(event.etype)
            codes[i] = code
            cores[i] = event.core
            static[i] = 1 + _task_field_size(event.task, task_cache) + (
                _payload_field_size(event.args)
            )
        return cls(
            timestamps_us=timestamps,
            type_codes=codes,
            cores=cores,
            type_names=tuple(names),
            static_sizes=static,
            source_kind="events",
            events=events,
        )

    # ------------------------------------------------------------------ #
    # Lazy event materialisation
    # ------------------------------------------------------------------ #
    def events(self, start: int, stop: int) -> tuple[TraceEvent, ...]:
        """Materialise events ``start <= i < stop`` from the raw source.

        Bit-identical to the corresponding slice of the object decode; only
        called for windows the recorder actually persists (or keeps).
        """
        if start < 0 or stop > len(self) or start > stop:
            raise TraceFormatError(
                f"event slice [{start}, {stop}) out of range for "
                f"{len(self)} events"
            )
        if self._source_kind == "events":
            assert self._events is not None
            return self._events[start:stop]
        if self._source_kind == "binary":
            return tuple(self._binary_event(i) for i in range(start, stop))
        return tuple(self._json_event(i) for i in range(start, stop))

    def to_events(self) -> tuple[TraceEvent, ...]:
        """Materialise the whole trace (the object-decode result)."""
        return self.events(0, len(self))

    def _binary_event(self, i: int) -> TraceEvent:
        data = self._binary_data
        assert data is not None and self._record_offsets is not None
        offset = int(self._record_offsets[i])
        _, offset = _decode_varint(data, offset)  # delta (timestamp known)
        _, offset = _decode_varint(data, offset)  # segment-local code
        offset += 1  # core byte (known)
        task_len, offset = _decode_varint(data, offset)
        try:
            task = data[offset : offset + task_len].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise TraceFormatError(
                "malformed task name in binary trace"
            ) from exc
        offset += task_len
        payload_len, offset = _decode_varint(data, offset)
        # The columnar decode only length-skipped the payload; a corrupt
        # payload therefore surfaces here, at materialisation, with the
        # same error the object decoder raises at read time.
        try:
            if payload_len:
                args = json.loads(
                    data[offset : offset + payload_len].decode("utf-8")
                )
            else:
                args = {}
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise TraceFormatError(
                "malformed event payload in binary trace"
            ) from exc
        return TraceEvent(
            timestamp_us=int(self.timestamps_us[i]),
            etype=self.type_names[int(self.type_codes[i])],
            core=int(self.cores[i]),
            task=task,
            args=args,
        )

    def _json_event(self, i: int) -> TraceEvent:
        assert (
            self._text is not None
            and self._line_starts is not None
            and self._line_ends is not None
        )
        line = self._text[int(self._line_starts[i]) : int(self._line_ends[i])]
        return _JSON_CODEC.decode_event(line)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceColumns(n_events={len(self)}, "
            f"n_types={len(self.type_names)}, source={self._source_kind!r})"
        )


def _task_field_size(task: str, cache: dict[str, int]) -> int:
    """Encoded size of the task field (varint length prefix + UTF-8 bytes)."""
    size = cache.get(task)
    if size is None:
        length = len(task.encode("utf-8"))
        size = _varint_size(length) + length
        cache[task] = size
    return size


def _payload_field_size(args: Mapping[str, Any]) -> int:
    """Encoded size of the payload field, mirroring ``encoded_trace_size``."""
    if not args:
        return 1
    # json.dumps escapes non-ASCII by default, so the string length equals
    # the UTF-8 byte length (same shortcut as encoded_trace_size).
    length = len(json.dumps(dict(args), sort_keys=True, separators=(",", ":")))
    return _varint_size(length) + length


# ---------------------------------------------------------------------- #
# Vectorized decoders
# ---------------------------------------------------------------------- #
def _try_decode_varint(
    data: bytes, offset: int, size: int
) -> tuple[int, int] | None:
    """Decode a varint at ``offset``; ``None`` when ``data`` ends inside it.

    An over-long varint (more than 64 value bits) is corrupt rather than
    incomplete and still raises, exactly like
    :func:`~repro.trace.codec._decode_varint`.
    """
    result = 0
    shift = 0
    while True:
        if offset >= size:
            return None
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise TraceFormatError("varint too long in binary trace")


def _parse_record(
    data: bytes, offset: int
) -> tuple[int, int, int, int, int] | None:
    """Parse one binary event record starting at ``offset``.

    Returns ``(delta, local_code, core, static_size, end_offset)``, or
    ``None`` when ``data`` ends mid-record — the caller decides whether
    that means a truncated file (one-shot decode) or simply an incomplete
    chunk (streaming decode).  Single definition shared by
    :func:`decode_binary_columns` and :class:`BinaryColumnsDecoder` so the
    two cannot diverge on the record layout.
    """
    size = len(data)
    parsed = _try_decode_varint(data, offset, size)
    if parsed is None:
        return None
    delta, pos = parsed
    parsed = _try_decode_varint(data, pos, size)
    if parsed is None:
        return None
    code, pos = parsed
    if pos >= size:
        return None
    core = data[pos]
    pos += 1
    parsed = _try_decode_varint(data, pos, size)
    if parsed is None:
        return None
    task_len, task_end = parsed
    task_field = (task_end - pos) + task_len
    pos = task_end + task_len
    if pos > size:
        return None
    parsed = _try_decode_varint(data, pos, size)
    if parsed is None:
        return None
    payload_len, payload_end = parsed
    payload_field = (payload_end - pos) + payload_len
    pos = payload_end + payload_len
    if pos > size:
        return None
    return delta, code, core, 1 + task_field + payload_field, pos


def decode_binary_columns(data: bytes) -> TraceColumns:
    """Decode a (possibly segmented) binary trace blob into columns.

    Walks the records once — varint lengths only, no UTF-8 decode, no JSON
    parse, no event objects — and fills the flat arrays.  Concatenated
    segments (as written by the binary recording sink) share one global
    type table built in first-appearance order.
    """
    if data[:4] != _MAGIC:
        raise TraceFormatError("not a binary trace (bad magic)")
    name_codes: dict[str, int] = {}
    names: list[str] = []
    ts_parts: list[np.ndarray] = []
    code_parts: list[np.ndarray] = []
    core_parts: list[np.ndarray] = []
    static_parts: list[np.ndarray] = []
    offset_parts: list[np.ndarray] = []
    size = len(data)
    offset = 0
    while offset < size:
        # Shared header walk with the object decoder (magic, length,
        # version, registry contiguity) — the two decoders cannot diverge.
        segment_registry, count, offset = _parse_segment_header(data, offset)
        segment_names = segment_registry.names
        remap = np.empty(len(segment_names), dtype=np.int32)
        for local, name in enumerate(segment_names):
            code = name_codes.get(name)
            if code is None:
                code = len(names)
                name_codes[name] = code
                names.append(name)
            remap[local] = code
        timestamps = np.empty(count, dtype=np.int64)
        codes = np.empty(count, dtype=np.int32)
        cores = np.empty(count, dtype=np.int64)
        static = np.empty(count, dtype=np.int64)
        records = np.empty(count, dtype=np.int64)
        previous = 0
        n_segment_types = len(segment_names)
        for i in range(count):
            records[i] = offset
            parsed = _parse_record(data, offset)
            if parsed is None:
                raise TraceFormatError(
                    f"truncated event record at byte offset {offset} "
                    f"(trace ends mid-record, {count - i} of the segment's "
                    f"{count} record(s) missing or incomplete)"
                )
            delta, code, core, static_size, offset = parsed
            if code >= n_segment_types:
                raise TraceFormatError(
                    f"unknown event-type code: {code} "
                    f"at byte offset {int(records[i])}"
                )
            previous += delta
            timestamps[i] = previous
            codes[i] = remap[code]
            cores[i] = core
            static[i] = static_size
        ts_parts.append(timestamps)
        code_parts.append(codes)
        core_parts.append(cores)
        static_parts.append(static)
        offset_parts.append(records)
    return TraceColumns(
        timestamps_us=_concat(ts_parts, np.int64),
        type_codes=_concat(code_parts, np.int32),
        cores=_concat(core_parts, np.int64),
        type_names=tuple(names),
        static_sizes=_concat(static_parts, np.int64),
        source_kind="binary",
        binary_data=data,
        record_offsets=_concat(offset_parts, np.int64),
    )


def _concat(parts: Sequence[np.ndarray], dtype: DTypeLike) -> np.ndarray:
    if not parts:
        return np.empty(0, dtype=dtype)
    if len(parts) == 1:
        return parts[0]
    return np.concatenate(parts)


def decode_json_columns(text: str) -> TraceColumns:
    """Decode a JSON-lines trace into columns.

    One ``json.loads`` per line is unavoidable, but nothing else per event
    is: no :class:`TraceEvent` construction, no per-event windowing, and
    the byte accounting inputs are computed inline (task field sizes are
    cached per task name).  Empty lines are skipped exactly as the object
    reader does.
    """
    timestamps: list[int] = []
    codes: list[int] = []
    cores: list[int] = []
    static: list[int] = []
    line_starts: list[int] = []
    line_ends: list[int] = []
    name_codes: dict[str, int] = {}
    names: list[str] = []
    task_cache: dict[str, int] = {}
    position = 0
    for line_no, raw in enumerate(text.split("\n"), start=1):
        start = position
        position += len(raw) + 1
        line = raw.strip()
        if not line:
            continue
        lead = len(raw) - len(raw.lstrip())
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"malformed JSON event line {line_no}: {line!r} "
                "(a partial final line usually means the trace is still "
                "being appended)"
            ) from exc
        try:
            timestamp = int(record["t"])
            etype = str(record["type"])
            core = int(record.get("core", 0))
            task = str(record.get("task", ""))
            args = dict(record.get("args", {}))
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(
                f"malformed event record at line {line_no}: {record!r}"
            ) from exc
        if timestamp < 0:
            raise TraceFormatError(
                f"negative timestamp at line {line_no}: {timestamp}"
            )
        code = name_codes.get(etype)
        if code is None:
            code = len(names)
            name_codes[etype] = code
            names.append(etype)
        task_field = _task_field_size(task, task_cache)
        payload_field = _payload_field_size(args)
        timestamps.append(timestamp)
        codes.append(code)
        cores.append(core)
        static.append(1 + task_field + payload_field)
        line_starts.append(start + lead)
        line_ends.append(start + lead + len(line))
    return TraceColumns(
        timestamps_us=np.array(timestamps, dtype=np.int64),
        type_codes=np.array(codes, dtype=np.int32),
        cores=np.array(cores, dtype=np.int64),
        type_names=tuple(names),
        static_sizes=np.array(static, dtype=np.int64),
        source_kind="jsonl",
        text=text,
        line_starts=np.array(line_starts, dtype=np.int64),
        line_ends=np.array(line_ends, dtype=np.int64),
    )


# ---------------------------------------------------------------------- #
# Resumable chunked decoders (streaming ingest)
# ---------------------------------------------------------------------- #
class BinaryColumnsDecoder:
    """Resumable, chunk-fed counterpart of :func:`decode_binary_columns`.

    Feed arbitrary byte ranges of a binary trace (they need not align with
    record or segment boundaries); each :meth:`feed` returns the columns of
    the records the chunk *completed* and buffers the partial trailing
    record (or segment header) for the next call, so memory stays bounded
    by one record/header plus the current chunk.  :attr:`resume_offset`
    reports the absolute offset of the first unconsumed byte — the point a
    re-opened reader should seek to.

    Emitted chunks use one *global* type table grown across segments in the
    same registry order as the one-shot decoder; every chunk's
    ``type_names`` is the table so far (a prefix of the final table), so
    concatenating the chunks reproduces the one-shot decode bit for bit.

    :meth:`finish` marks end-of-stream: ending mid-header or mid-record is
    then an error naming the absolute byte offset, exactly like a one-shot
    decode of the same truncated blob.

    ``on_corrupt="skip"`` quarantines corruption instead of raising: on a
    mangled header, over-long varint, unknown type code or truncated tail
    the decoder abandons the damaged region and resynchronises at the next
    segment magic, counting each region in :attr:`corrupt_records` and
    recording its absolute byte offset in :attr:`corrupt_offsets`.  The
    concatenation contract above then only covers the surviving records.
    """

    __slots__ = (
        "_buffer",
        "_base",
        "_names",
        "_name_codes",
        "_remap",
        "_remaining",
        "_previous",
        "_saw_data",
        "_finished",
        "_on_corrupt",
        "_resyncing",
        "_corrupt_offsets",
    )

    def __init__(self, on_corrupt: str = "raise") -> None:
        if on_corrupt not in ("raise", "skip"):
            raise ValueError(
                f"on_corrupt must be 'raise' or 'skip', got {on_corrupt!r}"
            )
        self._buffer = b""
        self._base = 0  # absolute stream offset of _buffer[0]
        self._names: list[str] = []
        self._name_codes: dict[str, int] = {}
        self._remap: np.ndarray | None = None  # active segment local→global
        self._remaining = 0  # records left in the active segment
        self._previous = 0  # previous absolute timestamp (segment-local)
        self._saw_data = False
        self._finished = False
        self._on_corrupt = on_corrupt
        self._resyncing = False  # inside a corrupt region, hunting for magic
        self._corrupt_offsets: list[int] = []

    @property
    def resume_offset(self) -> int:
        """Absolute byte offset of the first unconsumed byte."""
        return self._base

    @property
    def type_names(self) -> tuple[str, ...]:
        """Global type table accumulated so far (first-appearance order)."""
        return tuple(self._names)

    @property
    def corrupt_records(self) -> int:
        """Number of corrupt regions skipped (``on_corrupt="skip"`` only)."""
        return len(self._corrupt_offsets)

    @property
    def corrupt_offsets(self) -> tuple[int, ...]:
        """Absolute byte offset where each skipped corrupt region began."""
        return tuple(self._corrupt_offsets)

    def feed(self, chunk: bytes) -> TraceColumns:
        """Consume ``chunk``; return columns for the records it completed."""
        if self._finished:
            raise TraceFormatError("cannot feed a finished decoder")
        if chunk:
            self._saw_data = True
            self._buffer += bytes(chunk)
        return self._drain(final=False)

    def finish(self) -> TraceColumns:
        """Mark end-of-stream; flush and validate the remaining buffer."""
        if self._finished:
            raise TraceFormatError("decoder already finished")
        self._finished = True
        if not self._saw_data:
            raise TraceFormatError("not a binary trace (empty stream)")
        columns = self._drain(final=True)
        if self._remaining:
            if self._on_corrupt == "raise":
                raise TraceFormatError(
                    f"truncated binary trace: segment promises "
                    f"{self._remaining} more event record(s) at byte offset "
                    f"{self._base}"
                )
            # _drain(final=True) already recorded the corrupt tail region.
            self._remaining = 0
        return columns

    def _drain(self, final: bool) -> TraceColumns:
        data = self._buffer
        size = len(data)
        pos = 0
        timestamps: list[int] = []
        codes: list[int] = []
        cores: list[int] = []
        static: list[int] = []
        records: list[int] = []
        while True:
            if self._resyncing:
                found = data.find(_MAGIC, pos)
                if found != -1:
                    pos = found
                    self._resyncing = False
                    continue
                pos = size if final else self._magic_tail(data, pos)
                break
            if self._remaining == 0:
                if pos >= size:
                    break
                try:
                    header = self._try_header(data, pos, final)
                except TraceFormatError:
                    if self._on_corrupt == "raise":
                        raise
                    pos = self._quarantine(pos, size)
                    continue
                if header is None:
                    break
                self._remap, self._remaining, pos = header
                self._previous = 0
                continue
            try:
                parsed = _parse_record(data, pos)
            except TraceFormatError:
                if self._on_corrupt == "raise":
                    raise
                pos = self._quarantine(pos, size)
                continue
            if parsed is None:
                if not final:
                    break
                if self._on_corrupt == "raise":
                    raise TraceFormatError(
                        f"truncated event record at byte offset "
                        f"{self._base + pos} (stream ends mid-record)"
                    )
                pos = self._quarantine(pos, size)
                continue
            delta, code, core, static_size, end = parsed
            remap = self._remap
            assert remap is not None
            if code >= len(remap):
                if self._on_corrupt == "raise":
                    raise TraceFormatError(
                        f"unknown event-type code: {code} "
                        f"at byte offset {self._base + pos}"
                    )
                pos = self._quarantine(pos, size)
                continue
            records.append(pos)
            self._previous += delta
            timestamps.append(self._previous)
            codes.append(int(remap[code]))
            cores.append(core)
            static.append(static_size)
            self._remaining -= 1
            pos = end
        self._buffer = data[pos:]
        self._base += pos
        return TraceColumns(
            timestamps_us=np.array(timestamps, dtype=np.int64),
            type_codes=np.array(codes, dtype=np.int32),
            cores=np.array(cores, dtype=np.int64),
            type_names=tuple(self._names),
            static_sizes=np.array(static, dtype=np.int64),
            source_kind="binary",
            binary_data=data[:pos],
            record_offsets=np.array(records, dtype=np.int64),
        )

    def _try_header(
        self, data: bytes, pos: int, final: bool
    ) -> tuple[np.ndarray, int, int] | None:
        """Parse a segment header at ``pos``; ``None`` when incomplete."""
        size = len(data)
        head = data[pos : pos + 4]
        if len(head) < 4:
            if not _MAGIC.startswith(head):
                raise TraceFormatError(
                    "not a binary trace (bad magic)"
                    if self._base + pos == 0
                    else "trailing bytes after binary trace segment (bad magic)"
                )
        elif head != _MAGIC:
            raise TraceFormatError(
                "not a binary trace (bad magic)"
                if self._base + pos == 0
                else "trailing bytes after binary trace segment (bad magic)"
            )
        header_end = size + 1  # assume incomplete until proven otherwise
        if pos + 8 <= size:
            (header_len,) = struct.unpack("<I", data[pos + 4 : pos + 8])
            header_end = pos + 8 + header_len
        if header_end > size:
            if final:
                raise TraceFormatError(
                    f"truncated binary trace header at byte offset "
                    f"{self._base + pos}"
                )
            return None
        registry, count, body = _parse_segment_header(data, pos)
        segment_names = registry.names
        remap = np.empty(len(segment_names), dtype=np.int32)
        for local, name in enumerate(segment_names):
            code = self._name_codes.get(name)
            if code is None:
                code = len(self._names)
                self._name_codes[name] = code
                self._names.append(name)
            remap[local] = code
        return remap, count, body

    def _quarantine(self, pos: int, size: int) -> int:
        """Record a corrupt region at ``pos`` and start hunting for magic.

        Advances past the offending byte so the resynchronisation scan can
        never re-match the region it just abandoned (a truncated header
        starts with a perfectly valid magic).
        """
        self._corrupt_offsets.append(self._base + pos)
        self._remaining = 0
        self._resyncing = True
        return min(pos + 1, size)

    @staticmethod
    def _magic_tail(data: bytes, pos: int) -> int:
        """First index >= ``pos`` that could still start a magic at the tail.

        While resynchronising, everything up to this index is discarded;
        the (at most ``len(_MAGIC) - 1``) bytes after it are kept in the
        buffer in case the next chunk completes a segment magic.
        """
        size = len(data)
        for keep in range(min(len(_MAGIC) - 1, size - pos), 0, -1):
            if data[size - keep :] == _MAGIC[:keep]:
                return size - keep
        return size


class JsonColumnsDecoder:
    """Resumable, chunk-fed counterpart of :func:`decode_json_columns`.

    Feed byte (or text) chunks of a JSON-lines trace; each :meth:`feed`
    parses the lines the chunk completed and buffers the partial trailing
    line — and any partial UTF-8 sequence — for the next call.
    :meth:`finish` parses a final unterminated line exactly like the
    one-shot decoder (a regular file's last line often lacks a newline);
    a line that then fails to parse is reported with its 1-based line
    number, as is any malformed line mid-stream.  :attr:`resume_line`
    reports the next line a re-opened reader should start from.

    Chunks share one global type table (first-appearance order), matching
    the one-shot decode bit for bit when concatenated.

    ``on_corrupt="skip"`` quarantines corruption instead of raising: a
    malformed JSON line, malformed record or negative timestamp is dropped
    (its 1-based line number lands in :attr:`corrupt_offsets`), and invalid
    UTF-8 decodes to replacement characters — turning the damaged lines
    into malformed-JSON skips rather than a fatal stream error.
    """

    __slots__ = (
        "_utf8",
        "_pending",
        "_lines_done",
        "_name_codes",
        "_names",
        "_task_cache",
        "_finished",
        "_on_corrupt",
        "_corrupt_lines",
    )

    def __init__(self, on_corrupt: str = "raise") -> None:
        if on_corrupt not in ("raise", "skip"):
            raise ValueError(
                f"on_corrupt must be 'raise' or 'skip', got {on_corrupt!r}"
            )
        errors = "strict" if on_corrupt == "raise" else "replace"
        self._utf8 = codecs.getincrementaldecoder("utf-8")(errors)
        self._pending = ""  # text after the last consumed newline
        self._lines_done = 0  # raw lines fully consumed so far
        self._name_codes: dict[str, int] = {}
        self._names: list[str] = []
        self._task_cache: dict[str, int] = {}
        self._finished = False
        self._on_corrupt = on_corrupt
        self._corrupt_lines: list[int] = []

    @property
    def resume_line(self) -> int:
        """1-based number of the first not-yet-consumed raw line."""
        return self._lines_done + 1

    @property
    def type_names(self) -> tuple[str, ...]:
        """Global type table accumulated so far (first-appearance order)."""
        return tuple(self._names)

    @property
    def corrupt_records(self) -> int:
        """Number of corrupt lines skipped (``on_corrupt="skip"`` only)."""
        return len(self._corrupt_lines)

    @property
    def corrupt_offsets(self) -> tuple[int, ...]:
        """1-based line number of each skipped corrupt line."""
        return tuple(self._corrupt_lines)

    def feed(self, chunk: "bytes | str") -> TraceColumns:
        """Consume ``chunk``; return columns for the lines it completed."""
        if self._finished:
            raise TraceFormatError("cannot feed a finished decoder")
        if isinstance(chunk, (bytes, bytearray)):
            try:
                text = self._utf8.decode(chunk)
            except UnicodeDecodeError as exc:
                raise TraceFormatError(
                    f"invalid UTF-8 in JSON-lines stream near line "
                    f"{self._lines_done + 1}"
                ) from exc
        else:
            text = chunk
        combined = self._pending + text
        cut = combined.rfind("\n") + 1
        self._pending = combined[cut:]
        return self._parse(combined[:cut], final=False)

    def finish(self) -> TraceColumns:
        """Mark end-of-stream; parse the final (unterminated) line, if any."""
        if self._finished:
            raise TraceFormatError("decoder already finished")
        self._finished = True
        try:
            tail = self._utf8.decode(b"", final=True)
        except UnicodeDecodeError as exc:
            raise TraceFormatError(
                f"truncated UTF-8 sequence at end of JSON-lines stream "
                f"(line {self._lines_done + 1})"
            ) from exc
        text = self._pending + tail
        self._pending = ""
        return self._parse(text, final=True)

    def _parse(self, text: str, final: bool) -> TraceColumns:
        raw_lines = text.split("\n")
        if not final:
            # ``text`` is empty or newline-terminated: the final split
            # element is the empty string after the last newline, not a line.
            raw_lines = raw_lines[:-1]
        timestamps: list[int] = []
        codes: list[int] = []
        cores: list[int] = []
        static: list[int] = []
        line_starts: list[int] = []
        line_ends: list[int] = []
        position = 0
        for raw in raw_lines:
            self._lines_done += 1
            line_no = self._lines_done
            start = position
            position += len(raw) + 1
            line = raw.strip()
            if not line:
                continue
            lead = len(raw) - len(raw.lstrip())
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if self._on_corrupt == "skip":
                    self._corrupt_lines.append(line_no)
                    continue
                raise TraceFormatError(
                    f"malformed JSON event line {line_no}: {line!r}"
                ) from exc
            try:
                timestamp = int(record["t"])
                etype = str(record["type"])
                core = int(record.get("core", 0))
                task = str(record.get("task", ""))
                args = dict(record.get("args", {}))
            except (KeyError, TypeError, ValueError) as exc:
                if self._on_corrupt == "skip":
                    self._corrupt_lines.append(line_no)
                    continue
                raise TraceFormatError(
                    f"malformed event record at line {line_no}: {record!r}"
                ) from exc
            if timestamp < 0:
                if self._on_corrupt == "skip":
                    self._corrupt_lines.append(line_no)
                    continue
                raise TraceFormatError(
                    f"negative timestamp at line {line_no}: {timestamp}"
                )
            code = self._name_codes.get(etype)
            if code is None:
                code = len(self._names)
                self._name_codes[etype] = code
                self._names.append(etype)
            timestamps.append(timestamp)
            codes.append(code)
            cores.append(core)
            static.append(
                1
                + _task_field_size(task, self._task_cache)
                + _payload_field_size(args)
            )
            line_starts.append(start + lead)
            line_ends.append(start + lead + len(line))
        return TraceColumns(
            timestamps_us=np.array(timestamps, dtype=np.int64),
            type_codes=np.array(codes, dtype=np.int32),
            cores=np.array(cores, dtype=np.int64),
            type_names=tuple(self._names),
            static_sizes=np.array(static, dtype=np.int64),
            source_kind="jsonl",
            text=text,
            line_starts=np.array(line_starts, dtype=np.int64),
            line_ends=np.array(line_ends, dtype=np.int64),
        )


# ---------------------------------------------------------------------- #
# Vectorized window byte accounting
# ---------------------------------------------------------------------- #
def encoded_window_sizes_columns(
    columns: TraceColumns, event_offsets: np.ndarray
) -> np.ndarray:
    """Binary-encoded size of consecutive windows, straight from columns.

    ``event_offsets`` delimits the windows (CSR-style, length
    ``n_windows + 1``, global event indices).  Bit-identical to
    :func:`~repro.trace.codec.encoded_window_sizes` over the materialised
    windows: per window, timestamp deltas restart (the first event is
    encoded against timestamp 0) and event-type codes come from a fresh
    per-window registry, exactly like the recorder's accounting.
    """
    offsets = np.asarray(event_offsets, dtype=np.int64)
    if len(offsets) == 0:
        raise TraceFormatError("event_offsets must contain at least one entry")
    lo, hi = int(offsets[0]), int(offsets[-1])
    n_span = hi - lo
    cores = columns.cores[lo:hi]
    if n_span and (int(cores.min()) < 0 or int(cores.max()) > 0xFF):
        bad = int(cores[(cores < 0) | (cores > 0xFF)][0])
        raise TraceFormatError(
            f"core index {bad} does not fit the codec's 1-byte core field "
            "(valid range 0-255)"
        )
    local = offsets - lo
    totals = np.zeros(n_span, dtype=np.int64)
    if n_span:
        segment = columns.timestamps_us[lo:hi]
        deltas = np.empty(n_span, dtype=np.int64)
        deltas[0] = segment[0]
        np.subtract(segment[1:], segment[:-1], out=deltas[1:])
        starts = local[:-1]
        starts = starts[starts < n_span]
        deltas[starts] = segment[starts]
        if int(deltas.min()) < 0:
            bad = int(np.flatnonzero(deltas < 0)[0])
            raise TraceFormatError(
                "events must be encoded in timestamp order "
                f"({int(segment[bad])} after {int(segment[bad - 1])})"
            )
        totals += varint_size_array(deltas)
        totals += columns.static_sizes[lo:hi]
        if len(columns.type_names) <= 0x80:
            # Every within-window first-appearance code fits one varint byte.
            totals += 1
        else:
            totals += _window_code_sizes(columns.type_codes[lo:hi], local)
    cumulative = np.concatenate(([0], np.cumsum(totals)))
    return cumulative[local[1:]] - cumulative[local[:-1]]


def _window_code_sizes(codes: np.ndarray, local_offsets: np.ndarray) -> np.ndarray:
    """Per-event varint size of the per-window fresh-registry type code.

    Slow path, only reached when a trace carries more than 128 distinct
    event types (a window could then need 2-byte codes).  Mirrors the
    ``codes.setdefault(etype, len(codes))`` numbering of
    :func:`~repro.trace.codec.encoded_trace_size`.
    """
    sizes = np.empty(len(codes), dtype=np.int64)
    for w in range(len(local_offsets) - 1):
        ranks: dict[int, int] = {}
        for i in range(int(local_offsets[w]), int(local_offsets[w + 1])):
            rank = ranks.setdefault(int(codes[i]), len(ranks))
            sizes[i] = _varint_size(rank)
    return sizes


