"""Version information for the :mod:`repro` package."""

__version__ = "1.0.0"

#: Tuple form of the version, convenient for programmatic comparisons.
VERSION_TUPLE = tuple(int(part) for part in __version__.split("."))
