"""Online anomaly detection over the window stream (paper Section II).

For every incoming window the detector:

1. computes the window pmf ``Npmf``;
2. compares it with the running past pmf ``Ppmf`` using the (symmetrised,
   smoothed) Kullback-Leibler divergence;
3. if the two are similar, merges ``Npmf`` into ``Ppmf`` — no LOF test is
   performed (this both saves computation and lets the detector follow slow
   drifts of the correct behaviour);
4. otherwise computes the LOF of ``Npmf`` against the learned reference
   model and declares the window anomalous when ``LOF >= alpha``.

The outcome of each window is captured in a :class:`WindowDecision`; the
decisions are what the recorder, the evaluation code and the threshold
sweeps consume.  Note that the LOF score of a window does not depend on
``alpha``, so a single monitoring pass supports sweeping ``alpha``
afterwards (that is how the Figure 1 benchmark is generated).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..config import DetectorConfig
from ..errors import ModelError
from ..trace.event import EventTypeRegistry
from ..trace.window import TraceWindow
from .divergence import symmetric_kl_divergence
from .model import ReferenceModel
from .pmf import Pmf, pmf_from_window

__all__ = ["DetectionOutcome", "WindowDecision", "OnlineAnomalyDetector"]


class DetectionOutcome(str, Enum):
    """What the detector did with a window."""

    #: The window pmf was close to the running past pmf; it was merged and no
    #: LOF test was run.
    MERGED = "merged"
    #: LOF was computed and stayed below the threshold: the window is normal.
    NORMAL = "normal"
    #: LOF was computed and reached the threshold: the window is anomalous.
    ANOMALOUS = "anomalous"
    #: The window contained no events; nothing could be computed.
    EMPTY = "empty"


@dataclass(frozen=True)
class WindowDecision:
    """Decision record for one monitored window.

    Attributes
    ----------
    window_index:
        Index of the window in the stream.
    start_us / end_us:
        Time extent of the window.
    n_events:
        Number of events in the window.
    kl_to_past:
        Symmetrised KL divergence between the window pmf and the running
        past pmf at the time the window was processed (``nan`` for empty
        windows).
    lof_score:
        LOF score of the window, or ``None`` when the KL gate skipped the
        LOF computation (or the window was empty).
    outcome:
        What the detector concluded.
    window_bytes:
        Binary-encoded size of the window (filled in by the monitor; the
        detector itself leaves it at 0).  Threshold sweeps use it to compute
        the recorded volume for any ``alpha`` without replaying the stream.
    """

    window_index: int
    start_us: int
    end_us: int
    n_events: int
    kl_to_past: float
    lof_score: float | None
    outcome: DetectionOutcome
    window_bytes: int = 0

    @property
    def anomalous(self) -> bool:
        """Whether the window was declared anomalous (and hence recorded)."""
        return self.outcome is DetectionOutcome.ANOMALOUS

    @property
    def lof_checked(self) -> bool:
        """Whether a LOF computation was actually performed."""
        return self.lof_score is not None

    def anomalous_at(self, alpha: float) -> bool:
        """Re-evaluate the decision for a different LOF threshold ``alpha``.

        Windows whose LOF score was never computed (merged or empty windows)
        remain non-anomalous for every threshold, exactly as they would have
        been in a live run with that threshold, because the KL gate does not
        depend on ``alpha``.
        """
        if self.lof_score is None:
            return False
        return self.lof_score >= alpha


class OnlineAnomalyDetector:
    """Stateful detector driving the KL gate and the LOF test."""

    def __init__(
        self,
        model: ReferenceModel,
        config: DetectorConfig,
        registry: EventTypeRegistry,
    ) -> None:
        if not model.is_fitted:
            raise ModelError("the reference model must be learned before monitoring")
        self.model = model
        self.config = config
        self.registry = registry
        self._past_pmf: Pmf = model.mean_reference_pmf(registry)
        self._n_processed = 0
        self._n_lof_computed = 0
        self._n_merged = 0

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def past_pmf(self) -> Pmf:
        """Current running past pmf ``Ppmf``."""
        return self._past_pmf

    @property
    def n_processed(self) -> int:
        """Number of windows processed so far."""
        return self._n_processed

    @property
    def n_lof_computed(self) -> int:
        """Number of windows for which a LOF score was computed."""
        return self._n_lof_computed

    @property
    def n_merged(self) -> int:
        """Number of windows merged into the past pmf by the KL gate."""
        return self._n_merged

    @property
    def lof_computation_rate(self) -> float:
        """Fraction of windows that required a LOF computation."""
        if self._n_processed == 0:
            return 0.0
        return self._n_lof_computed / self._n_processed

    # ------------------------------------------------------------------ #
    # Processing
    # ------------------------------------------------------------------ #
    def process(self, window: TraceWindow) -> WindowDecision:
        """Process one window and return the decision."""
        self._n_processed += 1
        if window.is_empty:
            return WindowDecision(
                window_index=window.index,
                start_us=window.start_us,
                end_us=window.end_us,
                n_events=0,
                kl_to_past=float("nan"),
                lof_score=None,
                outcome=DetectionOutcome.EMPTY,
            )

        current = pmf_from_window(window, self.registry)
        kl = symmetric_kl_divergence(
            current, self._past_pmf, smoothing=self.config.kl_smoothing
        )

        if self.config.use_kl_gate and kl < self.config.kl_threshold:
            self._merge(current)
            self._n_merged += 1
            return WindowDecision(
                window_index=window.index,
                start_us=window.start_us,
                end_us=window.end_us,
                n_events=len(window),
                kl_to_past=kl,
                lof_score=None,
                outcome=DetectionOutcome.MERGED,
            )

        score = self.model.lof_score(current)
        self._n_lof_computed += 1
        anomalous = score >= self.config.lof_threshold
        if not anomalous:
            # A window that passed the LOF test is "regular" even though it
            # drifted away from the recent past: fold it into Ppmf so slow
            # behaviour changes keep being tracked (paper Section II).
            self._merge(current)
        return WindowDecision(
            window_index=window.index,
            start_us=window.start_us,
            end_us=window.end_us,
            n_events=len(window),
            kl_to_past=kl,
            lof_score=score,
            outcome=DetectionOutcome.ANOMALOUS if anomalous else DetectionOutcome.NORMAL,
        )

    def _merge(self, current: Pmf) -> None:
        self._past_pmf = self._past_pmf.merge(current, decay=self.config.merge_decay)
