"""Online anomaly detection over the window stream (paper Section II).

For every incoming window the detector:

1. computes the window pmf ``Npmf``;
2. compares it with the running past pmf ``Ppmf`` using the (symmetrised,
   smoothed) Kullback-Leibler divergence;
3. if the two are similar, merges ``Npmf`` into ``Ppmf`` — no LOF test is
   performed (this both saves computation and lets the detector follow slow
   drifts of the correct behaviour);
4. otherwise computes the LOF of ``Npmf`` against the learned reference
   model and declares the window anomalous when ``LOF >= alpha``.

The outcome of each window is captured in a :class:`WindowDecision`; the
decisions are what the recorder, the evaluation code and the threshold
sweeps consume.  Note that the LOF score of a window does not depend on
``alpha``, so a single monitoring pass supports sweeping ``alpha``
afterwards (that is how the Figure 1 benchmark is generated).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..config import DetectorConfig
from ..errors import ModelError
from ..trace.batch import WindowBatch
from ..trace.event import EventTypeRegistry
from ..trace.window import TraceWindow
from .divergence import (
    _symmetric_kl_raw,
    symmetric_kl_divergence,
    symmetric_kl_divergence_matrix,
)
from .model import ReferenceModel
from .pmf import Pmf, merge_counts, pmf_from_window, pmf_matrix

__all__ = ["DetectionOutcome", "WindowDecision", "OnlineAnomalyDetector"]

#: Fraction of the KL threshold above which a window's LOF score is computed
#: speculatively during batch processing.  The speculative KL is measured
#: against the past pmf as of batch entry, while the authoritative gate sees
#: a past pmf that drifts with every merge; the margin makes near-threshold
#: windows part of the one batched LOF pass instead of falling back to an
#: individual query.  Correctness does not depend on the value — missed
#: windows are simply scored on demand.
_SPECULATION_MARGIN = 0.5


class DetectionOutcome(str, Enum):
    """What the detector did with a window."""

    #: The window pmf was close to the running past pmf; it was merged and no
    #: LOF test was run.
    MERGED = "merged"
    #: LOF was computed and stayed below the threshold: the window is normal.
    NORMAL = "normal"
    #: LOF was computed and reached the threshold: the window is anomalous.
    ANOMALOUS = "anomalous"
    #: The window contained no events; nothing could be computed.
    EMPTY = "empty"


@dataclass(frozen=True)
class WindowDecision:
    """Decision record for one monitored window.

    Attributes
    ----------
    window_index:
        Index of the window in the stream.
    start_us / end_us:
        Time extent of the window.
    n_events:
        Number of events in the window.
    kl_to_past:
        Symmetrised KL divergence between the window pmf and the running
        past pmf at the time the window was processed (``nan`` for empty
        windows).
    lof_score:
        LOF score of the window, or ``None`` when the KL gate skipped the
        LOF computation (or the window was empty).
    outcome:
        What the detector concluded.
    window_bytes:
        Binary-encoded size of the window (filled in by the monitor; the
        detector itself leaves it at 0).  Threshold sweeps use it to compute
        the recorded volume for any ``alpha`` without replaying the stream.
    """

    window_index: int
    start_us: int
    end_us: int
    n_events: int
    kl_to_past: float
    lof_score: float | None
    outcome: DetectionOutcome
    window_bytes: int = 0

    @property
    def anomalous(self) -> bool:
        """Whether the window was declared anomalous (and hence recorded)."""
        return self.outcome is DetectionOutcome.ANOMALOUS

    @property
    def lof_checked(self) -> bool:
        """Whether a LOF computation was actually performed."""
        return self.lof_score is not None

    def anomalous_at(self, alpha: float) -> bool:
        """Re-evaluate the decision for a different LOF threshold ``alpha``.

        Windows whose LOF score was never computed (merged or empty windows)
        remain non-anomalous for every threshold, exactly as they would have
        been in a live run with that threshold, because the KL gate does not
        depend on ``alpha``.
        """
        if self.lof_score is None:
            return False
        return self.lof_score >= alpha


class OnlineAnomalyDetector:
    """Stateful detector driving the KL gate and the LOF test."""

    def __init__(
        self,
        model: ReferenceModel,
        config: DetectorConfig,
        registry: EventTypeRegistry,
    ) -> None:
        if not model.is_fitted:
            raise ModelError("the reference model must be learned before monitoring")
        self.model = model
        self.config = config
        self.registry = registry
        self._past_pmf: Pmf = model.mean_reference_pmf(registry)
        self._n_processed = 0
        self._n_lof_computed = 0
        self._n_merged = 0

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def past_pmf(self) -> Pmf:
        """Current running past pmf ``Ppmf``."""
        return self._past_pmf

    @property
    def n_processed(self) -> int:
        """Number of windows processed so far."""
        return self._n_processed

    @property
    def n_lof_computed(self) -> int:
        """Number of windows for which a LOF score was computed."""
        return self._n_lof_computed

    @property
    def n_merged(self) -> int:
        """Number of windows merged into the past pmf by the KL gate."""
        return self._n_merged

    @property
    def lof_computation_rate(self) -> float:
        """Fraction of windows that required a LOF computation."""
        if self._n_processed == 0:
            return 0.0
        return self._n_lof_computed / self._n_processed

    # ------------------------------------------------------------------ #
    # Processing
    # ------------------------------------------------------------------ #
    def process(self, window: TraceWindow) -> WindowDecision:
        """Process one window and return the decision."""
        self._n_processed += 1
        if window.is_empty:
            return WindowDecision(
                window_index=window.index,
                start_us=window.start_us,
                end_us=window.end_us,
                n_events=0,
                kl_to_past=float("nan"),
                lof_score=None,
                outcome=DetectionOutcome.EMPTY,
            )

        current = pmf_from_window(window, self.registry)
        kl = symmetric_kl_divergence(
            current, self._past_pmf, smoothing=self.config.kl_smoothing
        )

        if self.config.use_kl_gate and kl < self.config.kl_threshold:
            self._merge(current)
            self._n_merged += 1
            return WindowDecision(
                window_index=window.index,
                start_us=window.start_us,
                end_us=window.end_us,
                n_events=len(window),
                kl_to_past=kl,
                lof_score=None,
                outcome=DetectionOutcome.MERGED,
            )

        score = self.model.lof_score(current)
        self._n_lof_computed += 1
        anomalous = score >= self.config.lof_threshold
        if not anomalous:
            # A window that passed the LOF test is "regular" even though it
            # drifted away from the recent past: fold it into Ppmf so slow
            # behaviour changes keep being tracked (paper Section II).
            self._merge(current)
        return WindowDecision(
            window_index=window.index,
            start_us=window.start_us,
            end_us=window.end_us,
            n_events=len(window),
            kl_to_past=kl,
            lof_score=score,
            outcome=DetectionOutcome.ANOMALOUS if anomalous else DetectionOutcome.NORMAL,
        )

    def process_batch(self, batch: WindowBatch) -> list[WindowDecision]:
        """Process a micro-batch of windows, vectorized.

        Drop-in equivalent of calling :meth:`process` on each window in
        order — same outcomes, same KL divergences, same LOF scores, same
        running past pmf afterwards — but computed on the columnar batch:

        * the counts matrix comes from one ``bincount``
          (:func:`~repro.analysis.pmf.pmf_matrix`) instead of per-event
          Python loops;
        * LOF scores are *speculated* in one batched k-NN pass for the
          windows whose KL against the batch-entry past pmf fails the gate
          (LOF scores only depend on the frozen model, never on the running
          past pmf, so a speculated score is exact whenever it is needed);
        * a lean sequential replay over raw count rows then reproduces the
          exact gate -> merge -> LOF decision chain, because each merge
          changes the past pmf the *next* window is gated against.

        Windows gated away by the replay keep ``lof_score=None`` even when a
        speculative score existed, matching the serial path; the rare
        gate-failure that was not speculated (the past pmf drifted across
        the threshold mid-batch) is scored individually on demand.
        """
        decisions: list[WindowDecision] = []
        n_windows = len(batch)
        if n_windows == 0:
            return decisions
        config = self.config
        counts = pmf_matrix(batch, self.registry)
        event_counts = batch.event_counts
        past_counts = self._past_pmf.counts
        # Plain-int copies for the replay loop: per-element numpy scalar
        # extraction would cost more than the arithmetic it feeds.
        indices_list = batch.indices.tolist()
        starts_list = batch.start_us.tolist()
        ends_list = batch.end_us.tolist()
        counts_list = event_counts.tolist()
        dims_list = batch.dims.tolist()

        # Speculative batched LOF over the likely gate failures.
        speculated: dict[int, float] = {}
        probabilities: np.ndarray | None = None
        nonempty = np.flatnonzero(event_counts > 0)
        if nonempty.size:
            totals = counts.sum(axis=1)
            probabilities = counts / np.where(totals > 0.0, totals, 1.0)[:, None]
            if config.use_kl_gate:
                speculative_kl = symmetric_kl_divergence_matrix(
                    counts[nonempty], past_counts, smoothing=config.kl_smoothing
                )
                candidates = nonempty[
                    speculative_kl >= _SPECULATION_MARGIN * config.kl_threshold
                ]
            else:
                candidates = nonempty
            if candidates.size:
                vectors = self.model.vectors_for(
                    probabilities[candidates], self.registry
                )
                scores = self.model.score_vectors(vectors)
                speculated = dict(zip(candidates.tolist(), scores.tolist()))

        # Exact sequential replay of the gate -> merge -> LOF chain.  The
        # counters are accumulated locally and committed together with the
        # past pmf after the loop, so an exception mid-batch leaves the
        # detector in its batch-entry state instead of half-updated.
        n_merged = 0
        n_lof_computed = 0
        for i in range(n_windows):
            index = indices_list[i]
            start_us = starts_list[i]
            end_us = ends_list[i]
            n_events = counts_list[i]
            if n_events == 0:
                decisions.append(
                    WindowDecision(
                        window_index=index,
                        start_us=start_us,
                        end_us=end_us,
                        n_events=0,
                        kl_to_past=float("nan"),
                        lof_score=None,
                        outcome=DetectionOutcome.EMPTY,
                    )
                )
                continue
            # dims[i] is the registry size right after this window was coded,
            # so the slice matches the serial pmf's dimensionality exactly
            # (KL smoothing is sensitive to the padded width).
            current = counts[i, : dims_list[i]]
            kl = _symmetric_kl_raw(current, past_counts, config.kl_smoothing)
            if config.use_kl_gate and kl < config.kl_threshold:
                past_counts = merge_counts(past_counts, current, config.merge_decay)
                n_merged += 1
                decisions.append(
                    WindowDecision(
                        window_index=index,
                        start_us=start_us,
                        end_us=end_us,
                        n_events=n_events,
                        kl_to_past=kl,
                        lof_score=None,
                        outcome=DetectionOutcome.MERGED,
                    )
                )
                continue
            score = speculated.get(i)
            if score is None:
                assert probabilities is not None
                vector = self.model.vectors_for(
                    probabilities[i : i + 1], self.registry
                )
                score = float(self.model.score_vectors(vector)[0])
            n_lof_computed += 1
            anomalous = score >= config.lof_threshold
            if not anomalous:
                past_counts = merge_counts(past_counts, current, config.merge_decay)
            decisions.append(
                WindowDecision(
                    window_index=index,
                    start_us=start_us,
                    end_us=end_us,
                    n_events=n_events,
                    kl_to_past=kl,
                    lof_score=score,
                    outcome=(
                        DetectionOutcome.ANOMALOUS
                        if anomalous
                        else DetectionOutcome.NORMAL
                    ),
                )
            )
        self._past_pmf = Pmf._from_trusted(past_counts, self.registry)
        self._n_processed += n_windows
        self._n_merged += n_merged
        self._n_lof_computed += n_lof_computed
        return decisions

    def _merge(self, current: Pmf) -> None:
        self._past_pmf = self._past_pmf.merge(current, decay=self.config.merge_decay)
