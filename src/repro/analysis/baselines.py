"""Baseline recording strategies the LOF-based monitor is compared against.

The paper's implicit baseline is "record the whole trace" (the 5.9 GB
figure).  To put the detector's precision/recall in context the benchmark
suite also compares it with the obvious cheaper strategies a test engineer
might use instead:

* :class:`RandomSamplingBaseline` — record each window with a fixed
  probability (equal recording budget, no intelligence);
* :class:`PeriodicSamplingBaseline` — record every *n*-th window;
* :class:`ZScoreBaseline` — record windows whose event count deviates from
  the reference mean by more than a z-score threshold (a simple statistical
  monitor without the pmf abstraction);
* :class:`KlOnlyDetectorBaseline` — the paper's KL gate alone, without the
  LOF test (an ablation of the contribution).

Each baseline consumes the same window stream, produces
:class:`~repro.analysis.detector.WindowDecision`-compatible records and a
:class:`~repro.analysis.recorder.RecorderReport`, so the evaluation pipeline
(labelling, metrics) is shared with the real detector.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..errors import ModelError
from ..trace.codec import encoded_trace_size
from ..trace.event import EventTypeRegistry
from ..trace.window import TraceWindow
from .detector import DetectionOutcome, WindowDecision
from .divergence import symmetric_kl_divergence
from .pmf import Pmf, pmf_from_window
from .recorder import RecorderReport, SelectiveTraceRecorder

__all__ = [
    "BaselineResult",
    "RecordingBaseline",
    "RandomSamplingBaseline",
    "PeriodicSamplingBaseline",
    "ZScoreBaseline",
    "KlOnlyDetectorBaseline",
    "run_baseline",
]


@dataclass
class BaselineResult:
    """Decisions and size accounting produced by one baseline run."""

    name: str
    decisions: list[WindowDecision]
    report: RecorderReport
    parameters: dict = field(default_factory=dict)

    @property
    def n_recorded(self) -> int:
        """Number of windows the baseline chose to record."""
        return sum(1 for decision in self.decisions if decision.anomalous)

    @property
    def recording_rate(self) -> float:
        """Fraction of windows recorded."""
        if not self.decisions:
            return 0.0
        return self.n_recorded / len(self.decisions)


class RecordingBaseline(ABC):
    """Interface shared by every baseline recording strategy."""

    name = "baseline"

    def fit(self, reference_windows: Sequence[TraceWindow]) -> "RecordingBaseline":
        """Learn whatever the baseline needs from the reference prefix.

        The default implementation needs no learning and returns ``self``.
        """
        return self

    @abstractmethod
    def decide(self, window: TraceWindow) -> bool:
        """Return ``True`` when ``window`` should be recorded."""

    def parameters(self) -> dict:
        """Parameters to attach to the result (for reports)."""
        return {}


class RandomSamplingBaseline(RecordingBaseline):
    """Record each window independently with probability ``budget_fraction``."""

    name = "random-sampling"

    def __init__(self, budget_fraction: float, seed: int = 0) -> None:
        if not 0.0 <= budget_fraction <= 1.0:
            raise ModelError("budget_fraction must be in [0, 1]")
        self.budget_fraction = float(budget_fraction)
        self._rng = np.random.default_rng(seed)

    def decide(self, window: TraceWindow) -> bool:
        return bool(self._rng.random() < self.budget_fraction)

    def parameters(self) -> dict:
        return {"budget_fraction": self.budget_fraction}


class PeriodicSamplingBaseline(RecordingBaseline):
    """Record one window out of every ``record_every``."""

    name = "periodic-sampling"

    def __init__(self, record_every: int) -> None:
        if record_every < 1:
            raise ModelError("record_every must be >= 1")
        self.record_every = int(record_every)
        self._counter = 0

    def decide(self, window: TraceWindow) -> bool:
        record = self._counter % self.record_every == 0
        self._counter += 1
        return record

    def parameters(self) -> dict:
        return {"record_every": self.record_every}


class ZScoreBaseline(RecordingBaseline):
    """Record windows whose event count is unusual compared to the reference.

    This is the classic lightweight monitor: compute the mean and standard
    deviation of the per-window event count on the reference trace, then
    record any window whose count deviates by more than ``z_threshold``
    standard deviations.  It catches gross rate changes but is blind to
    *mix* changes that keep the event count roughly constant — which is the
    gap the paper's pmf + LOF approach fills.
    """

    name = "zscore"

    def __init__(self, z_threshold: float = 3.0) -> None:
        if z_threshold <= 0:
            raise ModelError("z_threshold must be positive")
        self.z_threshold = float(z_threshold)
        self._mean: float | None = None
        self._std: float | None = None

    def fit(self, reference_windows: Sequence[TraceWindow]) -> "ZScoreBaseline":
        counts = np.array([len(window) for window in reference_windows], dtype=float)
        if len(counts) < 2:
            raise ModelError("z-score baseline needs at least two reference windows")
        self._mean = float(counts.mean())
        self._std = float(max(counts.std(ddof=1), 1e-9))
        return self

    def decide(self, window: TraceWindow) -> bool:
        if self._mean is None or self._std is None:
            raise ModelError("ZScoreBaseline.decide() called before fit()")
        z = abs(len(window) - self._mean) / self._std
        return z >= self.z_threshold

    def parameters(self) -> dict:
        return {"z_threshold": self.z_threshold, "mean": self._mean, "std": self._std}


class KlOnlyDetectorBaseline(RecordingBaseline):
    """The paper's KL comparison alone, without the LOF test (ablation).

    The running past pmf is maintained exactly like in the full detector; a
    window is recorded whenever its divergence from the past exceeds the
    threshold.  Without the reference model, a legitimate but *abrupt*
    behaviour change (e.g. a scene change in the video) is indistinguishable
    from an anomaly, which is why the paper adds the LOF stage.
    """

    name = "kl-only"

    def __init__(
        self,
        kl_threshold: float = 0.05,
        merge_decay: float = 0.2,
        smoothing: float = 1e-6,
        registry: EventTypeRegistry | None = None,
    ) -> None:
        if kl_threshold < 0:
            raise ModelError("kl_threshold must be >= 0")
        self.kl_threshold = float(kl_threshold)
        self.merge_decay = float(merge_decay)
        self.smoothing = float(smoothing)
        self.registry = registry if registry is not None else EventTypeRegistry()
        self._past: Pmf | None = None

    def fit(self, reference_windows: Sequence[TraceWindow]) -> "KlOnlyDetectorBaseline":
        past: Pmf | None = None
        for window in reference_windows:
            if window.is_empty:
                continue
            current = pmf_from_window(window, self.registry)
            past = current if past is None else past.merge(current, decay=self.merge_decay)
        if past is None:
            raise ModelError("KL-only baseline needs a non-empty reference trace")
        self._past = past
        return self

    def decide(self, window: TraceWindow) -> bool:
        if self._past is None:
            raise ModelError("KlOnlyDetectorBaseline.decide() called before fit()")
        if window.is_empty:
            return False
        current = pmf_from_window(window, self.registry)
        divergence = symmetric_kl_divergence(current, self._past, smoothing=self.smoothing)
        if divergence < self.kl_threshold:
            self._past = self._past.merge(current, decay=self.merge_decay)
            return False
        return True

    def parameters(self) -> dict:
        return {
            "kl_threshold": self.kl_threshold,
            "merge_decay": self.merge_decay,
            "smoothing": self.smoothing,
        }


def run_baseline(
    baseline: RecordingBaseline,
    windows: Iterable[TraceWindow],
    reference_windows: Sequence[TraceWindow] = (),
    context_windows: int = 0,
) -> BaselineResult:
    """Run ``baseline`` over a window stream with the shared evaluation plumbing."""
    baseline.fit(list(reference_windows))
    recorder = SelectiveTraceRecorder(context_windows=context_windows)
    decisions: list[WindowDecision] = []
    try:
        for window in windows:
            record = baseline.decide(window)
            window_bytes = encoded_trace_size(window.events)
            recorder.observe(window, record=record, window_bytes=window_bytes)
            decisions.append(
                WindowDecision(
                    window_index=window.index,
                    start_us=window.start_us,
                    end_us=window.end_us,
                    n_events=len(window),
                    kl_to_past=float("nan"),
                    lof_score=None,
                    outcome=(
                        DetectionOutcome.ANOMALOUS if record else DetectionOutcome.NORMAL
                    ),
                    window_bytes=window_bytes,
                )
            )
    finally:
        recorder.close()
    return BaselineResult(
        name=baseline.name,
        decisions=decisions,
        report=recorder.report(),
        parameters=baseline.parameters(),
    )
