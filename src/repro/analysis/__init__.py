"""Analysis layer: the paper's contribution.

Windows of trace events are abstracted as probability mass functions
(:mod:`~repro.analysis.pmf`), compared with Kullback-Leibler divergence
(:mod:`~repro.analysis.divergence`), scored against a learned reference model
with the Local Outlier Factor (:mod:`~repro.analysis.lof`), and only windows
deemed anomalous are recorded (:mod:`~repro.analysis.recorder`).  The
:mod:`~repro.analysis.monitor` module ties everything into the online
monitoring loop; :mod:`~repro.analysis.labeling` and
:mod:`~repro.analysis.metrics` implement the paper's evaluation protocol;
:mod:`~repro.analysis.baselines` provides the comparison recorders and
:mod:`~repro.analysis.periodic` the periodicity extension sketched in the
paper's conclusion.
"""

from .pmf import Pmf, merge_counts, pmf_from_counts, pmf_from_window, pmf_matrix
from .divergence import (
    kl_divergence,
    symmetric_kl_divergence,
    kl_divergence_matrix,
    symmetric_kl_divergence_matrix,
    js_divergence,
    total_variation_distance,
)
from .knn import BruteForceKnn, KdTreeKnn, KnnIndex
from .lof import LocalOutlierFactor
from .model import ReferenceModel
from .refdb import ReferenceDatabase
from .detector import DetectionOutcome, OnlineAnomalyDetector, WindowDecision
from .recorder import FullTraceRecorder, RecorderReport, SelectiveTraceRecorder
from .monitor import MonitorResult, TraceMonitor
from .fleet import FleetResult, ShardedTraceMonitor
from .labeling import GroundTruth, WindowLabel, estimate_impact_delays, label_windows
from .metrics import ConfusionCounts, DetectionMetrics, compute_metrics, reduction_factor
from .baselines import (
    BaselineResult,
    KlOnlyDetectorBaseline,
    PeriodicSamplingBaseline,
    RandomSamplingBaseline,
    ZScoreBaseline,
    run_baseline,
)
from .periodic import PeriodicityCompactor, estimate_dominant_period

__all__ = [
    "Pmf",
    "pmf_from_counts",
    "pmf_from_window",
    "pmf_matrix",
    "merge_counts",
    "kl_divergence",
    "symmetric_kl_divergence",
    "kl_divergence_matrix",
    "symmetric_kl_divergence_matrix",
    "js_divergence",
    "total_variation_distance",
    "KnnIndex",
    "BruteForceKnn",
    "KdTreeKnn",
    "LocalOutlierFactor",
    "ReferenceModel",
    "ReferenceDatabase",
    "OnlineAnomalyDetector",
    "WindowDecision",
    "DetectionOutcome",
    "SelectiveTraceRecorder",
    "FullTraceRecorder",
    "RecorderReport",
    "TraceMonitor",
    "MonitorResult",
    "FleetResult",
    "ShardedTraceMonitor",
    "GroundTruth",
    "WindowLabel",
    "estimate_impact_delays",
    "label_windows",
    "ConfusionCounts",
    "DetectionMetrics",
    "compute_metrics",
    "reduction_factor",
    "BaselineResult",
    "RandomSamplingBaseline",
    "PeriodicSamplingBaseline",
    "ZScoreBaseline",
    "KlOnlyDetectorBaseline",
    "run_baseline",
    "PeriodicityCompactor",
    "estimate_dominant_period",
]
