"""Sharded multi-stream monitoring fleet.

A production deployment monitors many concurrent trace streams — one per
device under endurance test — against one shared reference model.
:class:`ShardedTraceMonitor` is that fleet: it fans N labelled window streams
out to per-shard :class:`~repro.analysis.detector.OnlineAnomalyDetector` and
:class:`~repro.analysis.recorder.SelectiveTraceRecorder` instances over a
single fitted :class:`~repro.analysis.model.ReferenceModel`, drives every
shard through the vectorized batch scoring plane
(:class:`~repro.trace.batch.WindowBatch` micro-batches of
``MonitorConfig.batch_size`` windows), and merges the per-shard
:class:`~repro.analysis.monitor.MonitorResult` objects into one aggregated
:class:`FleetResult`.

Isolation guarantees (what the equivalence suite locks down):

* every shard clones the fleet's base event-type registry, so unseen event
  types appearing on one stream never change another shard's pmf
  dimensionality;
* detector state (running past pmf, counters) and recorder state (context
  buffer, byte accounting, output file) are strictly per shard;
* the shared reference model is frozen after fitting and only read.

A sharded run is therefore decision- and byte-identical to N independent
:meth:`~repro.analysis.monitor.TraceMonitor.monitor_windows` runs over the
same model, while sharing the model memory and interleaving shards
batch-by-batch (the :class:`WindowBatch` is the unit of work distribution).
``MonitorConfig.max_active_shards`` bounds how many shards are open at once
for very wide fleets; scheduling order never changes the results.

Two execution backends produce that same result:

* **serial** (``MonitorConfig.fleet_workers == 1``, the default) — one
  process interleaves every shard batch-by-batch, exactly as in PR 2;
* **process-parallel** (``fleet_workers > 1``) — whole shards are
  partitioned across a worker-process pool
  (:func:`~repro.analysis.parallel.monitor_shards_parallel`); the fitted
  model ships to each worker once, recorders stay worker-local, and the
  per-shard results are merged deterministically in submission order.

Fault tolerance (both backends):

* ``MonitorConfig.shard_failure_policy`` — ``"abort"`` (default) re-raises
  the first shard failure after every other shard has closed its output
  file (as :class:`~repro.errors.FleetError` from the parallel backend,
  the original exception from the serial one); ``"isolate"`` quarantines
  the failing shard while its siblings run to completion, with the
  failure reported as a :class:`ShardOutcome` on the result.
* ``MonitorConfig.shard_retries`` / ``shard_retry_backoff_s`` — failed
  shards with a replayable source are re-run from scratch, producing
  bit-identical results to a fault-free run.
* Crash consistency — recorders write to ``.partial`` files committed by
  atomic rename only on a clean close, failed shards' partials are
  removed, and runs with an ``output_dir`` get a ``manifest.json`` naming
  every shard's status, attempts and output bytes.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from ..config import DetectorConfig, MonitorConfig
from ..errors import FleetError, ModelError
from ..logging_util import get_logger
from ..testing.faults import fault_point, shard_scope
from ..trace.batch import WindowBatch
from ..trace.columns import TraceColumns
from ..trace.event import EventTypeRegistry
from ..trace.stream import ColumnarWindowSource, TraceStream
from ..trace.streaming import StreamingWindowSource
from ..trace.window import TraceWindow
from .detector import OnlineAnomalyDetector, WindowDecision
from .model import ReferenceModel
from .monitor import (
    MonitorResult,
    ShardOutcome,
    build_shard_pipeline,
    detector_stats_snapshot,
    score_and_record_batch,
    shard_batches,
    shard_output_path,
)
from .parallel import monitor_shards_parallel, source_replayable
from .recorder import RecorderReport, SelectiveTraceRecorder, partial_output_path

__all__ = ["FleetResult", "ShardOutcome", "ShardedTraceMonitor"]

#: File name of the per-run shard manifest written next to the outputs.
MANIFEST_NAME = "manifest.json"

_LOGGER = get_logger("analysis.fleet")


@dataclass
class FleetResult:
    """Aggregated outcome of one sharded monitoring run.

    Attributes
    ----------
    shard_results:
        Per-shard :class:`MonitorResult`, keyed by shard label in submission
        order.  Holds only the shards that completed; under
        ``shard_failure_policy="isolate"`` quarantined shards appear in
        ``outcomes`` instead, and every aggregate below covers the
        survivors.
    model:
        The shared reference model every shard was scored against.
    outcomes:
        One :class:`ShardOutcome` per *submitted* shard (status, attempts,
        error summary), in submission order.
    diagnostics:
        Teardown warnings that did not fail the run but should not be
        silent (e.g. a feeder thread abandoned after its join timeout).
    """

    shard_results: dict[str, MonitorResult]
    model: ReferenceModel
    outcomes: dict[str, ShardOutcome] = field(default_factory=dict)
    diagnostics: tuple[str, ...] = ()

    # ------------------------------------------------------------------ #
    # Shard access
    # ------------------------------------------------------------------ #
    @property
    def shard_labels(self) -> tuple[str, ...]:
        """Shard labels in submission order."""
        return tuple(self.shard_results)

    @property
    def n_shards(self) -> int:
        """Number of shards in the fleet."""
        return len(self.shard_results)

    def shard(self, label: str) -> MonitorResult:
        """Return the result of the shard named ``label``."""
        try:
            return self.shard_results[label]
        except KeyError:
            raise FleetError(f"unknown shard label: {label!r}") from None

    # ------------------------------------------------------------------ #
    # Failure accounting
    # ------------------------------------------------------------------ #
    @property
    def failed_labels(self) -> tuple[str, ...]:
        """Labels of quarantined shards, in submission order."""
        return tuple(
            label for label, outcome in self.outcomes.items() if not outcome.ok
        )

    @property
    def n_failed(self) -> int:
        """Number of quarantined shards."""
        return len(self.failed_labels)

    @property
    def degraded(self) -> bool:
        """Whether the run completed with at least one quarantined shard."""
        return self.n_failed > 0

    # ------------------------------------------------------------------ #
    # Fleet-wide reductions
    # ------------------------------------------------------------------ #
    @property
    def n_windows(self) -> int:
        """Total number of monitored windows across the fleet."""
        return sum(result.n_windows for result in self.shard_results.values())

    @property
    def n_anomalous(self) -> int:
        """Total number of anomalous windows across the fleet."""
        return sum(result.n_anomalous for result in self.shard_results.values())

    @property
    def anomaly_rate(self) -> float:
        """Fraction of fleet windows declared anomalous."""
        n_windows = self.n_windows
        if n_windows == 0:
            return 0.0
        return self.n_anomalous / n_windows

    @property
    def report(self) -> RecorderReport:
        """Field-wise sum of every shard's recording report."""
        merged = RecorderReport(0, 0, 0, 0, 0, 0)
        for result in self.shard_results.values():
            merged = merged.merged_with(result.report)
        return merged

    @property
    def reduction_factor(self) -> float:
        """Fleet-wide trace-size reduction factor."""
        return self.report.reduction_factor

    @property
    def recorded_indices(self) -> dict[str, list[int]]:
        """Recorded window indices per shard."""
        return {
            label: list(result.recorded_indices)
            for label, result in self.shard_results.items()
        }

    @property
    def detector_stats(self) -> dict[str, float]:
        """Summed detector counters with the fleet-wide LOF computation rate."""
        totals = {
            "windows_processed": 0.0,
            "windows_merged": 0.0,
            "lof_computations": 0.0,
        }
        for result in self.shard_results.values():
            for key in totals:
                totals[key] += result.detector_stats.get(key, 0.0)
        processed = totals["windows_processed"]
        totals["lof_computation_rate"] = (
            totals["lof_computations"] / processed if processed else 0.0
        )
        return totals

    def to_dict(self) -> dict:
        """JSON-serialisable summary (fleet aggregates plus per-shard rows)."""
        return {
            "fleet": {
                "n_shards": self.n_shards,
                "n_windows": self.n_windows,
                "n_anomalous": self.n_anomalous,
                "anomaly_rate": self.anomaly_rate,
                "n_failed": self.n_failed,
                "degraded": self.degraded,
                "detector_stats": self.detector_stats,
                **self.report.to_dict(),
            },
            "outcomes": {
                label: outcome.to_dict()
                for label, outcome in self.outcomes.items()
            },
            "diagnostics": list(self.diagnostics),
            "shards": {
                label: {
                    "n_windows": result.n_windows,
                    "n_anomalous": result.n_anomalous,
                    "anomaly_rate": result.anomaly_rate,
                    "recorded_indices": list(result.recorded_indices),
                    "detector_stats": dict(result.detector_stats),
                    **result.report.to_dict(),
                }
                for label, result in self.shard_results.items()
            },
        }


class _Shard:
    """Mutable per-stream state while the fleet is running."""

    __slots__ = (
        "label",
        "registry",
        "detector",
        "recorder",
        "batches",
        "decisions",
        "source",
        "attempt",
    )

    def __init__(
        self,
        label: str,
        registry: EventTypeRegistry,
        detector: OnlineAnomalyDetector,
        recorder: SelectiveTraceRecorder,
        batches: Iterator[WindowBatch],
        source: object = None,
        attempt: int = 1,
    ) -> None:
        self.label = label
        self.registry = registry
        self.detector = detector
        self.recorder = recorder
        self.batches = batches
        self.decisions: list[WindowDecision] = []
        # Original window source and 1-based run number, kept for retries.
        self.source = source
        self.attempt = attempt


class ShardedTraceMonitor:
    """Monitors many labelled window streams over one shared reference model.

    Construction mirrors :class:`~repro.analysis.monitor.TraceMonitor`; the
    ``registry`` argument is the *base* registry every shard clones at
    activation, so shards observe registry growth exactly as an independent
    single-stream run seeded with the same registry would.
    """

    def __init__(
        self,
        detector_config: DetectorConfig | None = None,
        monitor_config: MonitorConfig | None = None,
        registry: EventTypeRegistry | None = None,
    ) -> None:
        self.detector_config = detector_config or DetectorConfig()
        self.monitor_config = monitor_config or MonitorConfig()
        self.registry = registry if registry is not None else EventTypeRegistry()

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def run_on_streams(
        self,
        streams: Mapping[str, TraceStream] | Sequence[TraceStream],
        model: ReferenceModel,
        output_dir: str | Path | None = None,
        keep_events: bool = False,
    ) -> FleetResult:
        """Monitor several trace streams as one fleet.

        ``streams`` is either a mapping from shard label to
        :class:`TraceStream` or a plain sequence (labelled ``stream-00``,
        ``stream-01``, ...).  Every stream is cut into windows with the
        configured ``window_duration_us``.
        """
        labelled = self._label_streams(streams)
        duration = self.monitor_config.window_duration_us
        shards = {
            label: stream.windows(window_duration_us=duration)
            for label, stream in labelled.items()
        }
        return self.monitor_shards(
            shards, model, output_dir=output_dir, keep_events=keep_events
        )

    def run_on_columns(
        self,
        columns: Mapping[str, TraceColumns] | Sequence[TraceColumns],
        model: ReferenceModel,
        output_dir: str | Path | None = None,
        keep_events: bool = False,
    ) -> FleetResult:
        """Monitor several columnar traces as one fleet.

        The columnar mirror of :meth:`run_on_streams`: every shard's windows
        are cut array-natively with the configured ``window_duration_us``
        and scored through lazy :class:`~repro.trace.batch.WindowBatch`
        micro-batches.  With ``fleet_workers > 1`` the workers receive the
        flat column arrays — far cheaper to pickle than event lists on
        spawn-only platforms.  Results are bit-identical to the object path.
        """
        labelled = self._label_streams(columns)
        return self.monitor_shards(
            labelled, model, output_dir=output_dir, keep_events=keep_events
        )

    def monitor_shards(
        self,
        shards: "Mapping[str, Iterable[TraceWindow] | TraceColumns | ColumnarWindowSource | StreamingWindowSource]",
        model: ReferenceModel,
        output_dir: str | Path | None = None,
        keep_events: bool = False,
    ) -> FleetResult:
        """Monitor shard streams (windowed or columnar) against a fitted model.

        Shard values may be window iterables (the historical form), raw
        :class:`~repro.trace.columns.TraceColumns` (cut into duration
        windows with the configured ``window_duration_us``),
        :class:`~repro.trace.stream.ColumnarWindowSource` objects carrying
        their own windowing recipe, or live
        :class:`~repro.trace.streaming.StreamingWindowSource` streams
        (single-pass, bounded memory; in the parallel backend they are fed
        to workers chunk-by-chunk over bounded channels instead of being
        materialised up front).  When ``output_dir`` is given each
        shard records its anomalous windows to
        ``<output_dir>/<label>.jsonl`` (``.bin`` with the binary recording
        format).  With ``MonitorConfig.fleet_workers > 1`` the shards are
        partitioned across a process pool instead of being interleaved
        serially; the merged result is bit-identical either way.
        """
        if not model.is_fitted:
            raise ModelError("the shared reference model must be fitted")
        labels = list(shards)
        if len(set(labels)) != len(labels):
            raise FleetError("shard labels must be unique")
        if self.monitor_config.fleet_workers > 1 and labels:
            ordered, outcomes, diagnostics = monitor_shards_parallel(
                shards,
                model,
                self.detector_config,
                self.monitor_config,
                self.registry.names,
                output_dir=output_dir,
                keep_events=keep_events,
            )
        else:
            ordered, outcomes, diagnostics = self._monitor_shards_serial(
                shards, labels, model, output_dir, keep_events
            )
        result = FleetResult(
            shard_results=ordered,
            model=model,
            outcomes=outcomes,
            diagnostics=diagnostics,
        )
        if output_dir is not None:
            self._write_manifest(Path(output_dir), outcomes)
        _LOGGER.info(
            "fleet done: %d shards, %d windows, %d anomalous, %d failed, "
            "reduction factor %.1f",
            result.n_shards,
            result.n_windows,
            result.n_anomalous,
            result.n_failed,
            result.report.reduction_factor,
        )
        return result

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _monitor_shards_serial(
        self,
        shards: Mapping[str, Iterable[TraceWindow]],
        labels: list[str],
        model: ReferenceModel,
        output_dir: str | Path | None,
        keep_events: bool,
    ) -> tuple[dict[str, MonitorResult], dict[str, ShardOutcome], tuple[str, ...]]:
        """Interleave every shard batch-by-batch in this process.

        Failure handling follows ``MonitorConfig.shard_failure_policy``:
        a failing shard's recorder is discarded (its ``.partial`` file
        removed, nothing committed under the final name), then the shard
        is retried from scratch while budget remains and its source is
        replayable, quarantined under ``"isolate"``, or — the default
        ``"abort"`` — its original exception propagates after every
        sibling closed its output file.
        """
        cap = self.monitor_config.max_active_shards
        if cap is None:
            cap = max(len(labels), 1)

        pending: deque[tuple[str, object, int]] = deque(
            (label, source, 1) for label, source in shards.items()
        )
        active: deque[_Shard] = deque()
        opened: list[_Shard] = []
        results: dict[str, MonitorResult] = {}
        outcomes: dict[str, ShardOutcome] = {}
        try:
            while pending or active:
                while pending and len(active) < cap:
                    label, source, attempt = pending.popleft()
                    try:
                        with shard_scope(label, attempt):
                            shard = self._activate(
                                label, source, model, output_dir, keep_events,
                                attempt,
                            )
                    except Exception as exc:
                        self._handle_shard_failure(
                            label, source, attempt, exc, pending, outcomes
                        )
                        continue
                    opened.append(shard)
                    active.append(shard)
                if not active:
                    continue
                shard = active.popleft()
                try:
                    with shard_scope(shard.label, shard.attempt):
                        batch = next(shard.batches, None)
                        if batch is None:
                            results[shard.label] = self._finalize(shard, model)
                        else:
                            fault_point("shard.batch")
                            self._process_batch(shard, batch)
                except Exception as exc:
                    shard.recorder.discard()
                    self._handle_shard_failure(
                        shard.label, shard.source, shard.attempt, exc,
                        pending, outcomes,
                    )
                    continue
                if batch is None:
                    outcomes[shard.label] = ShardOutcome(
                        shard.label, "ok", shard.attempt
                    )
                else:
                    active.append(shard)
        except BaseException:
            # Already unwinding: close everything best-effort so one failing
            # recorder cannot leak the rest, but let the original error win.
            for shard in opened:
                try:
                    shard.recorder.close()
                except Exception:
                    _LOGGER.exception(
                        "shard %r recorder close failed during unwind", shard.label
                    )
            raise
        close_error: Exception | None = None
        for shard in opened:
            try:
                shard.recorder.close()
            except Exception as exc:
                # Keep closing the remaining shards — the documented
                # guarantee is that every shard's output file is closed —
                # then surface the first failure.
                if close_error is None:
                    close_error = exc
                _LOGGER.exception(
                    "shard %r recorder close failed", shard.label
                )
        if close_error is not None:
            raise close_error

        return (
            {label: results[label] for label in labels if label in results},
            {label: outcomes[label] for label in labels},
            (),
        )

    def _handle_shard_failure(
        self,
        label: str,
        source: object,
        attempt: int,
        exc: Exception,
        pending: "deque[tuple[str, object, int]]",
        outcomes: dict[str, ShardOutcome],
    ) -> None:
        """Route one shard failure: retry, quarantine, or abort (re-raise)."""
        config = self.monitor_config
        if attempt <= config.shard_retries and source_replayable(source):
            _LOGGER.warning(
                "shard %r attempt %d failed, retrying: %s", label, attempt, exc
            )
            if config.shard_retry_backoff_s > 0.0:
                time.sleep(config.shard_retry_backoff_s * attempt)
            pending.append((label, source, attempt + 1))
            return
        if config.shard_failure_policy == "isolate":
            error = f"{type(exc).__name__}: {exc}"
            _LOGGER.error(
                "shard %r failed after %d attempt(s), quarantined: %s",
                label,
                attempt,
                error,
            )
            outcomes[label] = ShardOutcome(label, "failed", attempt, error=error)
            return
        raise exc

    def _write_manifest(
        self, output_dir: Path, outcomes: Mapping[str, ShardOutcome]
    ) -> Path:
        """Atomically write ``manifest.json`` describing every shard's output.

        Failed shards get their leftover ``.partial`` file removed here (a
        hard-killed worker cannot clean up after itself), so after any run
        the directory holds only committed outputs plus the manifest —
        never a truncated file that looks valid.
        """
        config = self.monitor_config
        shards: dict[str, dict[str, object]] = {}
        for label, outcome in outcomes.items():
            path = shard_output_path(output_dir, label, config)
            entry = dict(outcome.to_dict())
            if outcome.ok and path.exists():
                entry["output"] = path.name
                entry["output_bytes"] = path.stat().st_size
            else:
                partial_output_path(path).unlink(missing_ok=True)
                entry["output"] = None
                entry["output_bytes"] = None
            shards[label] = entry
        manifest = {
            "policy": config.shard_failure_policy,
            "recording_format": config.recording_format,
            "shards": shards,
        }
        manifest_path = output_dir / MANIFEST_NAME
        temp_path = manifest_path.with_name(manifest_path.name + ".partial")
        temp_path.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
        os.replace(temp_path, manifest_path)
        return manifest_path

    @staticmethod
    def _label_streams(
        streams: Mapping[str, TraceStream] | Sequence[TraceStream],
    ) -> dict[str, TraceStream]:
        if isinstance(streams, Mapping):
            return dict(streams)
        return {
            f"stream-{position:02d}": stream
            for position, stream in enumerate(streams)
        }

    def _activate(
        self,
        label: str,
        windows: "Iterable[TraceWindow] | TraceColumns | ColumnarWindowSource",
        model: ReferenceModel,
        output_dir: str | Path | None,
        keep_events: bool,
        attempt: int = 1,
    ) -> _Shard:
        fault_point("shard.start", label, attempt)
        config = self.monitor_config
        output_path = (
            shard_output_path(output_dir, label, config)
            if output_dir is not None
            else None
        )
        shard_registry, detector, recorder = build_shard_pipeline(
            model,
            self.detector_config,
            config,
            self.registry.names,
            output_path=output_path,
            keep_events=keep_events,
        )
        try:
            batches = iter(shard_batches(windows, shard_registry, config))
        except Exception:
            # The recorder opened its .partial file above; a source that
            # fails at activation must not leak it.
            recorder.discard()
            raise
        return _Shard(
            label, shard_registry, detector, recorder, batches,
            source=windows, attempt=attempt,
        )

    @staticmethod
    def _process_batch(shard: _Shard, batch: WindowBatch) -> None:
        shard.decisions.extend(
            score_and_record_batch(shard.detector, shard.recorder, batch)
        )

    @staticmethod
    def _finalize(shard: _Shard, model: ReferenceModel) -> MonitorResult:
        shard.recorder.close()
        return MonitorResult(
            decisions=shard.decisions,
            report=shard.recorder.report(),
            model=model,
            recorded_indices=shard.recorder.recorded_indices,
            reference_window_count=0,
            detector_stats=detector_stats_snapshot(shard.detector),
        )
