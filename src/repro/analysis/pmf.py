"""Probability mass functions over event types.

The paper abstracts each trace window as "a vector giving for each event type
the number of occurrences of that event type in the window" and manipulates
the normalised form as a probability mass function.  :class:`Pmf` is that
vector: it is tied to an :class:`~repro.trace.event.EventTypeRegistry` (which
fixes the dimensionality and the meaning of each component), keeps the raw
counts alongside the normalised probabilities, and supports the merge
operation the online detector uses to track slow drift.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from numpy.typing import DTypeLike

import numpy as np

from ..errors import ModelError
from ..trace.batch import WindowBatch
from ..trace.event import EventTypeRegistry
from ..trace.window import TraceWindow

__all__ = ["Pmf", "pmf_from_window", "pmf_from_counts", "pmf_matrix", "merge_counts"]


def _zero_extended(vector: np.ndarray, size: int) -> np.ndarray:
    """``vector`` zero-padded to ``size`` (returned as-is when already there).

    ``np.pad`` costs microseconds of Python bookkeeping per call, which
    dominates the detector's per-window merge; this is the cheap equivalent.
    """
    if len(vector) == size:
        return vector
    out = np.zeros(size)
    out[: len(vector)] = vector
    return out


class Pmf:
    """A probability mass function over the event types of a registry.

    Parameters
    ----------
    counts:
        Event counts per event-type code (length must equal ``len(registry)``).
    registry:
        The event-type registry defining the meaning of each component.
    """

    __slots__ = ("registry", "_counts", "_prob_cache")

    def __init__(self, counts: np.ndarray | Iterable[float], registry: EventTypeRegistry) -> None:
        counts = np.asarray(list(counts) if not isinstance(counts, np.ndarray) else counts,
                            dtype=float)
        if counts.ndim != 1:
            raise ModelError(f"pmf counts must be one-dimensional, got shape {counts.shape}")
        if len(counts) != len(registry):
            raise ModelError(
                f"pmf dimensionality {len(counts)} does not match registry size {len(registry)}"
            )
        if np.any(counts < 0):
            raise ModelError("pmf counts must be non-negative")
        self.registry = registry
        self._counts = counts
        self._prob_cache: dict[float, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, registry: EventTypeRegistry) -> "Pmf":
        """A pmf with zero counts everywhere."""
        return cls(np.zeros(len(registry)), registry)

    @classmethod
    def _from_trusted(cls, counts: np.ndarray, registry: EventTypeRegistry) -> "Pmf":
        """Wrap already-validated counts without re-checking the registry size.

        Used by the batch scoring plane, whose running past pmf can lag the
        registry (types registered after the last merge), exactly as a pmf
        constructed before the registry grew would.
        """
        pmf = object.__new__(cls)
        pmf.registry = registry
        pmf._counts = np.asarray(counts, dtype=float)
        pmf._prob_cache = {}
        return pmf

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def counts(self) -> np.ndarray:
        """Raw (possibly fractional after merging) counts per event type."""
        return self._counts.copy()

    @property
    def total(self) -> float:
        """Total number of events represented."""
        return float(self._counts.sum())

    @property
    def dimension(self) -> int:
        """Number of event types (components)."""
        return len(self._counts)

    @property
    def is_empty(self) -> bool:
        """Whether the pmf represents zero events."""
        return self.total <= 0.0

    def probabilities(self, smoothing: float = 0.0) -> np.ndarray:
        """Normalised probabilities, optionally Laplace-smoothed.

        With ``smoothing > 0`` every component gets ``smoothing`` added to its
        count before normalisation, so the result has full support — which is
        what the Kullback-Leibler divergence needs to stay finite.
        An empty pmf with no smoothing yields the uniform distribution.

        The returned vector is cached (a pmf's counts never change after
        construction) and marked read-only; copy it before mutating.
        """
        if smoothing < 0:
            raise ModelError("smoothing must be >= 0")
        key = float(smoothing)
        cached = self._prob_cache.get(key)
        if cached is None:
            values = self._counts + smoothing
            total = values.sum()
            if total <= 0:
                cached = np.full(self.dimension, 1.0 / self.dimension)
            else:
                cached = values / total
            cached.setflags(write=False)
            self._prob_cache[key] = cached
        return cached

    def probability(self, etype: str, smoothing: float = 0.0) -> float:
        """Probability of a single event type."""
        code = self.registry.code(etype)
        return float(self.probabilities(smoothing)[code])

    def count(self, etype: str) -> float:
        """Raw count of a single event type."""
        return float(self._counts[self.registry.code(etype)])

    def as_dict(self) -> dict[str, float]:
        """Return a ``name -> count`` mapping (zero entries omitted)."""
        return {
            self.registry.name(code): float(value)
            for code, value in enumerate(self._counts)
            if value > 0
        }

    def top_types(self, n: int = 5) -> list[tuple[str, float]]:
        """The ``n`` most frequent event types and their probabilities."""
        probabilities = self.probabilities()
        order = np.argsort(probabilities)[::-1][:n]
        return [(self.registry.name(int(code)), float(probabilities[code])) for code in order]

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def merge(self, other: "Pmf", decay: float = 0.5) -> "Pmf":
        """Blend ``other`` into this pmf (the detector's Ppmf update).

        The result's probabilities are ``(1 - decay) * self + decay * other``
        computed on the *normalised* distributions, then rescaled to the
        average total so the merged pmf still carries a meaningful event
        count.  ``decay = 1`` replaces this pmf entirely; small values make
        the running estimate adapt slowly.
        """
        registry = self._common_registry(other)
        if not 0.0 < decay <= 1.0:
            raise ModelError("decay must be in (0, 1]")
        size = max(self.dimension, other.dimension)
        if self.is_empty:
            return Pmf(np.array(_zero_extended(other._counts, size)), registry)
        if other.is_empty:
            return Pmf(np.array(_zero_extended(self._counts, size)), registry)
        # The cached probabilities equal counts / counts.sum() bit-for-bit, so
        # reusing them (zero-extended to the common length) avoids
        # re-normalising the running past pmf on every merge.
        mine_prob = _zero_extended(self.probabilities(), size)
        theirs_prob = _zero_extended(other.probabilities(), size)
        blended = (1.0 - decay) * mine_prob + decay * theirs_prob
        scale = (1.0 - decay) * self.total + decay * other.total
        return Pmf(blended * scale, registry)

    def add(self, other: "Pmf") -> "Pmf":
        """Return the component-wise sum of the two pmfs (count addition)."""
        mine, theirs, registry = self._aligned_counts(other)
        return Pmf(mine + theirs, registry)

    def _common_registry(self, other: "Pmf") -> EventTypeRegistry:
        """Return the (longer) shared registry, rejecting unrelated ones.

        Pmfs built on the same (possibly grown) registry may have different
        lengths: the registry only ever appends types, so the shorter vector
        can be treated as zero-padded (the missing types simply never
        occurred).  Truly different registries are rejected.
        """
        longer, shorter = (self.registry, other.registry)
        if len(other.registry) > len(self.registry):
            longer, shorter = other.registry, self.registry
        if longer is not shorter and longer.names[: len(shorter)] != shorter.names:
            raise ModelError("cannot combine pmfs built on different registries")
        return longer

    def _aligned_counts(self, other: "Pmf") -> tuple[np.ndarray, np.ndarray, EventTypeRegistry]:
        """Return both count vectors zero-padded to a common length."""
        registry = self._common_registry(other)
        size = max(self.dimension, other.dimension)
        mine = _zero_extended(self._counts, size)
        if mine is self._counts:
            mine = mine.copy()
        theirs = _zero_extended(other._counts, size)
        if theirs is other._counts:
            theirs = theirs.copy()
        return mine, theirs, registry

    # ------------------------------------------------------------------ #
    # Dunder conveniences
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pmf):
            return NotImplemented
        return (
            self.registry.names == other.registry.names
            and np.allclose(self._counts, other._counts)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        top = ", ".join(f"{name}={p:.2f}" for name, p in self.top_types(3))
        return f"Pmf(total={self.total:.0f}, top=[{top}])"


def pmf_from_window(
    window: TraceWindow, registry: EventTypeRegistry, register_unknown: bool = True
) -> Pmf:
    """Compute the pmf of a trace window against ``registry``.

    Event types absent from the registry are registered on the fly when
    ``register_unknown`` is true (the monitor may legitimately encounter
    types the reference run never produced); otherwise they raise
    :class:`~repro.errors.ModelError`.

    .. note::
       Registering a new type grows the registry, and therefore the
       dimensionality of *future* pmfs.  Existing pmfs keep their length;
       the LOF model pads reference points with zeros as needed.
    """
    if register_unknown:
        for event in window.events:
            registry.register(event.etype)
    counts = np.zeros(len(registry), dtype=float)
    for event in window.events:
        if event.etype not in registry:
            raise ModelError(
                f"event type {event.etype!r} is not in the registry and "
                "register_unknown is disabled"
            )
        counts[registry.code(event.etype)] += 1.0
    return Pmf(counts, registry)


def merge_counts(mine: np.ndarray, theirs: np.ndarray, decay: float) -> np.ndarray:
    """Raw-array mirror of :meth:`Pmf.merge`, bit-for-bit.

    The batch scoring plane keeps the running past pmf as a plain counts
    array (no registry-size validation per step) and merges with this
    function; :meth:`Pmf.merge` and ``merge_counts`` must produce identical
    floats for the serial and batched detectors to make identical decisions,
    which the equivalence tests assert.
    """
    if not 0.0 < decay <= 1.0:
        raise ModelError("decay must be in (0, 1]")
    mine = np.asarray(mine, dtype=float)
    theirs = np.asarray(theirs, dtype=float)
    size = max(len(mine), len(theirs))
    mine_total = float(mine.sum())
    theirs_total = float(theirs.sum())
    if mine_total <= 0.0:
        return np.array(_zero_extended(theirs, size))
    if theirs_total <= 0.0:
        return np.array(_zero_extended(mine, size))
    mine_prob = _zero_extended(mine / mine_total, size)
    theirs_prob = _zero_extended(theirs / theirs_total, size)
    blended = (1.0 - decay) * mine_prob + decay * theirs_prob
    scale = (1.0 - decay) * mine_total + decay * theirs_total
    return blended * scale


def pmf_matrix(
    batch: WindowBatch, registry: EventTypeRegistry, dtype: DTypeLike = float
) -> np.ndarray:
    """Per-window event-type counts of a batch, as one ``(n, d)`` matrix.

    Row ``i`` equals ``pmf_from_window(batch.window(i), registry).counts``
    zero-padded to ``d = len(registry)`` — computed with a single
    ``bincount`` over the columnar codes instead of one Python loop per
    event.  The batch must have been built against ``registry`` (or one with
    a superset of its codes); codes outside the registry raise
    :class:`~repro.errors.ModelError`.
    """
    dimension = len(registry)
    n_windows = len(batch)
    if batch.dimension > dimension:
        raise ModelError(
            f"batch was coded against {batch.dimension} event types but the "
            f"registry only has {dimension}"
        )
    matrix = np.zeros((n_windows, dimension), dtype=dtype)
    if batch.n_events == 0 or n_windows == 0:
        return matrix
    window_ids = np.repeat(np.arange(n_windows, dtype=np.int64), batch.event_counts)
    flat = window_ids * dimension + batch.codes.astype(np.int64)
    matrix[:] = np.bincount(flat, minlength=n_windows * dimension).reshape(
        n_windows, dimension
    )
    return matrix


def pmf_from_counts(counts: Mapping[str, float], registry: EventTypeRegistry) -> Pmf:
    """Build a pmf from a ``name -> count`` mapping (names are registered)."""
    for name in counts:
        registry.register(name)
    values = np.zeros(len(registry), dtype=float)
    for name, value in counts.items():
        if value < 0:
            raise ModelError(f"negative count for {name!r}: {value}")
        values[registry.code(name)] = float(value)
    return Pmf(values, registry)
