"""Ground-truth labelling of monitored windows (paper Section III).

The paper labels every monitored window by combining three ingredients:

* the known perturbation intervals,
* the application's error messages (GStreamer QoS errors),
* the detector's verdict (``LOF >= alpha``),

with one subtlety: because of the player's buffering, the *observable* impact
of a perturbation is delayed by ``Δs`` after its start and persists for
``Δe`` after its end.  The paper estimates average delays on a small
calibration portion of the run and then labels:

* **TP** — window in ``[start + Δs, end + Δe]``, an error is reported and
  ``LOF >= alpha``;
* **FN** — window in the impact interval, an error is reported, but
  ``LOF < alpha``;
* **FP** — ``LOF >= alpha`` but no error is reported or the window is outside
  every impact interval;
* **TN** — everything else.

This module implements both the delay estimation and the labelling.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence

from ..errors import LabelingError
from ..media.perturbation import PerturbationInterval
from .detector import WindowDecision

__all__ = [
    "WindowLabel",
    "ImpactInterval",
    "GroundTruth",
    "estimate_impact_delays",
    "label_windows",
]


class WindowLabel(str, Enum):
    """Confusion-matrix label of one monitored window."""

    TRUE_POSITIVE = "TP"
    FALSE_POSITIVE = "FP"
    FALSE_NEGATIVE = "FN"
    TRUE_NEGATIVE = "TN"


@dataclass(frozen=True)
class ImpactInterval:
    """A perturbation interval shifted by the estimated impact delays."""

    start_us: float
    end_us: float

    def __post_init__(self) -> None:
        if self.end_us <= self.start_us:
            raise LabelingError(
                f"impact interval ends before it starts: [{self.start_us}, {self.end_us})"
            )

    def overlaps_window(self, start_us: float, end_us: float) -> bool:
        """Whether the interval intersects the window ``[start_us, end_us)``."""
        return self.start_us < end_us and start_us < self.end_us


def estimate_impact_delays(
    intervals: Sequence[PerturbationInterval],
    error_timestamps_us: Sequence[int],
    calibration_intervals: int = 2,
    max_tail_s: float = 60.0,
) -> tuple[float, float]:
    """Estimate the mean impact delays ``(Δs, Δe)`` in microseconds.

    For each of the first ``calibration_intervals`` perturbations (the paper
    calibrates on a two-minute portion of the video):

    * ``Δs`` is the delay between the perturbation start and the first error
      reported afterwards;
    * ``Δe`` is the delay between the perturbation end and the last error
      reported before the errors die out (bounded by ``max_tail_s`` so an
      unrelated later error is not attributed to this perturbation).

    Perturbations that produced no error at all are skipped.  If none of the
    calibration perturbations produced errors, ``(0.0, 0.0)`` is returned —
    the labelling then degrades to the unshifted intervals.
    """
    if calibration_intervals <= 0:
        raise LabelingError("calibration_intervals must be positive")
    if max_tail_s <= 0:
        raise LabelingError("max_tail_s must be positive")

    errors = sorted(int(t) for t in error_timestamps_us)
    ordered = sorted(intervals, key=lambda interval: interval.start_us)
    start_delays: list[float] = []
    end_delays: list[float] = []
    for position, interval in enumerate(ordered[:calibration_intervals]):
        tail_limit_us = interval.end_us + max_tail_s * 1e6
        if position + 1 < len(ordered):
            # Errors caused by the next perturbation must not be attributed
            # to this one.
            tail_limit_us = min(tail_limit_us, ordered[position + 1].start_us)
        related = [t for t in errors if interval.start_us <= t < tail_limit_us]
        if not related:
            continue
        start_delays.append(related[0] - interval.start_us)
        end_delays.append(max(0.0, related[-1] - interval.end_us))
    if not start_delays:
        return 0.0, 0.0
    return (
        sum(start_delays) / len(start_delays),
        sum(end_delays) / len(end_delays),
    )


@dataclass(frozen=True)
class GroundTruth:
    """Ground truth against which window decisions are labelled."""

    impact_intervals: tuple[ImpactInterval, ...]
    error_timestamps_us: tuple[int, ...]
    delta_start_us: float = 0.0
    delta_end_us: float = 0.0

    @classmethod
    def from_run(
        cls,
        intervals: Sequence[PerturbationInterval],
        error_timestamps_us: Sequence[int],
        calibration_intervals: int = 2,
        max_tail_s: float = 60.0,
    ) -> "GroundTruth":
        """Build the ground truth from a run's perturbations and error log."""
        delta_start, delta_end = estimate_impact_delays(
            intervals,
            error_timestamps_us,
            calibration_intervals=calibration_intervals,
            max_tail_s=max_tail_s,
        )
        impact = tuple(
            ImpactInterval(
                start_us=interval.start_us + delta_start,
                end_us=interval.end_us + delta_end,
            )
            for interval in intervals
        )
        return cls(
            impact_intervals=impact,
            error_timestamps_us=tuple(sorted(int(t) for t in error_timestamps_us)),
            delta_start_us=delta_start,
            delta_end_us=delta_end,
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def window_in_impact(self, start_us: float, end_us: float) -> bool:
        """Whether the window overlaps any impact interval."""
        return any(
            interval.overlaps_window(start_us, end_us)
            for interval in self.impact_intervals
        )

    def window_has_error(self, start_us: float, end_us: float) -> bool:
        """Whether an application error was reported inside the window.

        Uses binary search over the sorted error timestamps.
        """
        import bisect

        timestamps = self.error_timestamps_us
        position = bisect.bisect_left(timestamps, int(start_us))
        return position < len(timestamps) and timestamps[position] < end_us

    def expected_anomalous(self, start_us: float, end_us: float) -> bool:
        """Whether a window *should* be flagged (impact interval + error)."""
        return self.window_in_impact(start_us, end_us) and self.window_has_error(
            start_us, end_us
        )


def label_windows(
    decisions: Iterable[WindowDecision],
    ground_truth: GroundTruth,
    alpha: float | None = None,
) -> list[WindowLabel]:
    """Label every decision following the paper's protocol.

    When ``alpha`` is ``None`` the decision recorded during monitoring is
    used; otherwise the stored LOF scores are re-thresholded at ``alpha``
    (which is how the Figure 1 sweep evaluates many thresholds from a single
    monitoring pass).
    """
    labels: list[WindowLabel] = []
    for decision in decisions:
        detected = (
            decision.anomalous if alpha is None else decision.anomalous_at(alpha)
        )
        should_detect = ground_truth.expected_anomalous(
            decision.start_us, decision.end_us
        )
        if should_detect and detected:
            labels.append(WindowLabel.TRUE_POSITIVE)
        elif should_detect and not detected:
            labels.append(WindowLabel.FALSE_NEGATIVE)
        elif detected:
            labels.append(WindowLabel.FALSE_POSITIVE)
        else:
            labels.append(WindowLabel.TRUE_NEGATIVE)
    return labels
