"""End-to-end trace monitor: learning + online detection + selective recording.

:class:`TraceMonitor` is the public entry point a user of the library drives:
give it a trace stream (from the simulator, from a file, or from any iterable
of events), it learns the reference model on the configured prefix — or uses
a model from the curated reference database — then monitors the remainder of
the stream, recording only the anomalous windows.  The returned
:class:`MonitorResult` bundles the per-window decisions, the recording report
and the model, i.e. everything the evaluation layer needs.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

import numpy as np

from ..config import DetectorConfig, MonitorConfig
from ..errors import ModelError
from ..logging_util import get_logger
from ..trace.batch import WindowBatch, batch_windows
from ..trace.codec import encoded_trace_size
from ..trace.columns import TraceColumns
from ..trace.event import EventTypeRegistry, TraceEvent
from ..trace.pipeline import prefetch_batches as _prefetch_batches
from ..trace.stream import (
    ColumnarWindowSource,
    TraceStream,
    batches_from_layout,
    column_windows_by_duration,
    materialize_layout_windows,
)
from ..trace.streaming import StreamRecipe, StreamingWindowSource, StreamStats
from ..trace.window import TraceWindow
from .detector import OnlineAnomalyDetector, WindowDecision
from .model import ReferenceModel
from .recorder import RecorderReport, SelectiveTraceRecorder

__all__ = [
    "MonitorResult",
    "ShardOutcome",
    "TraceMonitor",
    "build_shard_pipeline",
    "detector_stats_snapshot",
    "shard_batches",
    "shard_output_path",
]

_LOGGER = get_logger("analysis.monitor")


def _check_prefetch(prefetch_batches: int) -> None:
    """Reject negative prefetch depths instead of silently disabling."""
    if prefetch_batches < 0:
        from ..errors import ConfigurationError

        raise ConfigurationError(
            f"prefetch_batches must be >= 0 (got {prefetch_batches}); "
            "use 0 to disable prefetching"
        )


def build_shard_pipeline(
    model: ReferenceModel,
    detector_config: DetectorConfig,
    monitor_config: MonitorConfig,
    registry_names: Iterable[str],
    output_path: str | Path | None = None,
    keep_events: bool = False,
) -> tuple[EventTypeRegistry, OnlineAnomalyDetector, SelectiveTraceRecorder]:
    """Build one shard's scoring pipeline: cloned registry, detector, recorder.

    Single definition shared by the serial fleet
    (:meth:`~repro.analysis.fleet.ShardedTraceMonitor._activate`) and the
    process-parallel workers (:mod:`repro.analysis.parallel`): the two
    backends advertise bit-identical results, so the objects they score with
    must be constructed in exactly one place.
    """
    registry = EventTypeRegistry(tuple(registry_names))
    detector = OnlineAnomalyDetector(model, detector_config, registry)
    recorder = SelectiveTraceRecorder(
        context_windows=monitor_config.record_context_windows,
        output_path=output_path,
        keep_events=keep_events,
        io_buffer_bytes=monitor_config.io_buffer_bytes,
        recording_format=monitor_config.recording_format,
    )
    return registry, detector, recorder


def shard_output_path(
    output_dir: str | Path, label: str, monitor_config: MonitorConfig
) -> Path:
    """Output file of one fleet shard (suffix follows the recording format).

    Single definition shared by the serial and process-parallel fleet
    backends so their on-disk layouts cannot drift apart.
    """
    suffix = ".bin" if monitor_config.recording_format == "binary" else ".jsonl"
    return Path(output_dir) / f"{label}{suffix}"


def shard_batches(
    source: "Iterable[TraceWindow] | TraceColumns | ColumnarWindowSource",
    registry: EventTypeRegistry,
    monitor_config: MonitorConfig,
) -> "Iterable[WindowBatch]":
    """Window-batch iterator for one fleet shard, object or columnar.

    Accepts what the fleet accepts as a shard value — an iterable of
    :class:`~repro.trace.window.TraceWindow`, a raw
    :class:`~repro.trace.columns.TraceColumns` (cut into duration windows
    with the configured ``window_duration_us``), a fully parameterised
    :class:`~repro.trace.stream.ColumnarWindowSource`, or a live
    :class:`~repro.trace.streaming.StreamingWindowSource` (whose batches
    are pulled chunk by chunk with bounded memory).  Single definition
    shared by the serial fleet and the process-parallel workers, so both
    backends batch identically.
    """
    batch_size = max(monitor_config.batch_size, 1)
    if isinstance(source, TraceColumns):
        source = ColumnarWindowSource(source)
    if isinstance(source, (ColumnarWindowSource, StreamingWindowSource)):
        return source.batches(
            registry,
            batch_size,
            default_window_duration_us=monitor_config.window_duration_us,
        )
    return batch_windows(iter(source), registry, batch_size)


def detector_stats_snapshot(detector: OnlineAnomalyDetector) -> dict[str, float]:
    """Counter snapshot of a detector, as stored in ``MonitorResult``.

    Single definition shared by :class:`TraceMonitor`, the serial fleet and
    the process-parallel fleet workers, so the stats dictionaries compared by
    the equivalence suites cannot drift apart structurally.
    """
    return {
        "windows_processed": detector.n_processed,
        "windows_merged": detector.n_merged,
        "lof_computations": detector.n_lof_computed,
        "lof_computation_rate": detector.lof_computation_rate,
    }


def score_and_record_batch(
    detector: OnlineAnomalyDetector,
    recorder: SelectiveTraceRecorder,
    batch: WindowBatch,
) -> list[WindowDecision]:
    """Score one columnar batch, record it, return the stamped decisions.

    This is the single definition of the batched score -> size -> record
    step: both :meth:`TraceMonitor.monitor_windows` and the sharded fleet
    (:mod:`repro.analysis.fleet`) call it, so their per-window decisions and
    byte accounting cannot drift apart.

    Byte sizes come from :meth:`~repro.trace.batch.WindowBatch.window_sizes`
    (precomputed vectorized accounting on columnar batches, a codec pass on
    object-built ones — bit-identical either way) and the recorder receives
    :meth:`~repro.trace.batch.WindowBatch.window_refs`, so columnar batches
    materialise event objects only for the windows actually written.
    """
    batch_decisions = detector.process_batch(batch)
    sizes = batch.window_sizes()
    stamped = [
        dataclasses.replace(decision, window_bytes=size)
        for decision, size in zip(batch_decisions, sizes)
    ]
    recorder.observe_batch(
        batch.window_refs(),
        [decision.anomalous for decision in stamped],
        window_bytes=sizes,
    )
    return stamped


@dataclass
class MonitorResult:
    """Everything produced by one monitoring session.

    Attributes
    ----------
    decisions:
        Per-window decisions, in stream order (reference windows excluded).
    report:
        Byte-accurate recording report.
    model:
        The reference model that was used.
    recorded_indices:
        Indices of the windows written to storage (includes context windows).
    reference_window_count:
        Number of windows consumed by the learning step.
    detector_stats:
        Counters from the detector (windows merged, LOF computations, ...).
    stream_stats:
        Ingest accounting of the streaming source (chunk/window counters,
        corrupt-record quarantine tallies); ``None`` for one-shot runs.
    """

    decisions: list[WindowDecision]
    report: RecorderReport
    model: ReferenceModel
    recorded_indices: list[int]
    reference_window_count: int = 0
    detector_stats: dict[str, float] = field(default_factory=dict)
    stream_stats: StreamStats | None = None

    @property
    def n_windows(self) -> int:
        """Number of monitored (non-reference) windows."""
        return len(self.decisions)

    @property
    def n_anomalous(self) -> int:
        """Number of windows declared anomalous."""
        return sum(1 for decision in self.decisions if decision.anomalous)

    @property
    def anomaly_rate(self) -> float:
        """Fraction of monitored windows declared anomalous."""
        if not self.decisions:
            return 0.0
        return self.n_anomalous / len(self.decisions)

    def anomalous_windows(self) -> list[WindowDecision]:
        """Decisions of the anomalous windows only."""
        return [decision for decision in self.decisions if decision.anomalous]

    def lof_scores(self) -> list[float | None]:
        """LOF score per monitored window (``None`` when not computed)."""
        return [decision.lof_score for decision in self.decisions]


@dataclass(frozen=True)
class ShardOutcome:
    """Terminal status of one shard in a fleet run.

    Every shard submitted to :class:`~repro.analysis.fleet.ShardedTraceMonitor`
    gets exactly one outcome, whether it succeeded or was quarantined under
    ``MonitorConfig.shard_failure_policy="isolate"`` — failures are reported,
    never silently dropped.

    Attributes
    ----------
    label:
        The shard's label.
    status:
        ``"ok"`` (a :class:`MonitorResult` exists for the shard) or
        ``"failed"`` (the shard was quarantined; no result, no output file).
    attempts:
        Number of runs the shard took, including retries
        (``MonitorConfig.shard_retries``).
    error:
        Summary of the final failure, ``None`` for succeeded shards.
    """

    label: str
    status: str
    attempts: int = 1
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the shard completed successfully."""
        return self.status == "ok"

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form (fleet summaries, the output manifest)."""
        return {
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
        }


class TraceMonitor:
    """Drives reference learning, online detection and selective recording."""

    def __init__(
        self,
        detector_config: DetectorConfig | None = None,
        monitor_config: MonitorConfig | None = None,
        registry: EventTypeRegistry | None = None,
    ) -> None:
        self.detector_config = detector_config or DetectorConfig()
        self.monitor_config = monitor_config or MonitorConfig()
        self.registry = registry if registry is not None else EventTypeRegistry()

    # ------------------------------------------------------------------ #
    # Learning
    # ------------------------------------------------------------------ #
    def learn_reference(self, windows: Iterable[TraceWindow]) -> ReferenceModel:
        """Learn a reference model from the given windows."""
        model = ReferenceModel(
            k_neighbours=self.detector_config.k_neighbours,
            index_kind=self.monitor_config.knn_backend,
        )
        model.learn(windows, self.registry)
        _LOGGER.info(
            "learned reference model from %d windows (%d usable)",
            model.n_windows_seen,
            model.n_reference_windows,
        )
        return model

    # ------------------------------------------------------------------ #
    # Monitoring
    # ------------------------------------------------------------------ #
    def _make_recorder(
        self, output_path: str | Path | None, keep_events: bool
    ) -> SelectiveTraceRecorder:
        return SelectiveTraceRecorder(
            context_windows=self.monitor_config.record_context_windows,
            output_path=output_path,
            keep_events=keep_events,
            io_buffer_bytes=self.monitor_config.io_buffer_bytes,
            recording_format=self.monitor_config.recording_format,
        )

    def monitor_windows(
        self,
        windows: Iterable[TraceWindow],
        model: ReferenceModel,
        output_path: str | Path | None = None,
        keep_events: bool = False,
        reference_window_count: int = 0,
    ) -> MonitorResult:
        """Monitor an already-windowed stream against a learned model."""
        batch_size = self.monitor_config.batch_size
        if batch_size > 1:
            # Vectorized plane: score a columnar micro-batch at a time, then
            # hand the whole batch to the recorder so the codec and file
            # writes are amortised across windows.
            return self.monitor_batches(
                batch_windows(windows, self.registry, batch_size),
                model,
                output_path=output_path,
                keep_events=keep_events,
                reference_window_count=reference_window_count,
            )
        detector = OnlineAnomalyDetector(model, self.detector_config, self.registry)
        recorder = self._make_recorder(output_path, keep_events)
        decisions: list[WindowDecision] = []

        def record(window: TraceWindow, decision: WindowDecision) -> None:
            window_bytes = encoded_trace_size(window.events)
            decision = dataclasses.replace(decision, window_bytes=window_bytes)
            decisions.append(decision)
            recorder.observe(
                window, record=decision.anomalous, window_bytes=window_bytes
            )

        try:
            for window in windows:
                record(window, detector.process(window))
        finally:
            recorder.close()
        return self._finish(
            decisions, recorder, detector, model, reference_window_count
        )

    def monitor_batches(
        self,
        batches: Iterable[WindowBatch],
        model: ReferenceModel,
        output_path: str | Path | None = None,
        keep_events: bool = False,
        reference_window_count: int = 0,
    ) -> MonitorResult:
        """Monitor pre-built window batches against a learned model.

        The batch-iterable entry point of the monitor: accepts either
        object-built batches (:func:`~repro.trace.batch.batch_windows`) or
        the lazy batches of the columnar ingest plane
        (:func:`~repro.trace.stream.iter_column_batches`,
        :func:`~repro.trace.reader.iter_window_batches`) and produces
        results bit-identical to :meth:`monitor_windows` over the same
        windows.
        """
        detector = OnlineAnomalyDetector(model, self.detector_config, self.registry)
        recorder = self._make_recorder(output_path, keep_events)
        decisions: list[WindowDecision] = []
        try:
            for batch in batches:
                decisions.extend(score_and_record_batch(detector, recorder, batch))
        finally:
            recorder.close()
        return self._finish(
            decisions, recorder, detector, model, reference_window_count
        )

    def _finish(
        self,
        decisions: list[WindowDecision],
        recorder: SelectiveTraceRecorder,
        detector: OnlineAnomalyDetector,
        model: ReferenceModel,
        reference_window_count: int,
    ) -> MonitorResult:
        result = MonitorResult(
            decisions=decisions,
            report=recorder.report(),
            model=model,
            recorded_indices=recorder.recorded_indices,
            reference_window_count=reference_window_count,
            detector_stats=detector_stats_snapshot(detector),
        )
        _LOGGER.info(
            "monitoring done: %d windows, %d anomalous, reduction factor %.1f",
            result.n_windows,
            result.n_anomalous,
            result.report.reduction_factor,
        )
        return result

    def run_on_stream(
        self,
        stream: TraceStream,
        model: ReferenceModel | None = None,
        output_path: str | Path | None = None,
        keep_events: bool = False,
    ) -> MonitorResult:
        """Learn (if needed) and monitor a full trace stream.

        When ``model`` is ``None`` the stream's first
        ``monitor_config.reference_duration_us`` microseconds are used as the
        reference trace; otherwise the provided (curated) model is used and
        the whole stream is monitored.
        """
        window_duration = self.monitor_config.window_duration_us
        if model is None:
            reference_windows, live_windows = stream.split_reference(
                self.monitor_config.reference_duration_us,
                window_duration_us=window_duration,
            )
            model = self.learn_reference(reference_windows)
            reference_count = len(reference_windows)
        else:
            if not model.is_fitted:
                raise ModelError("provided reference model is not fitted")
            live_windows = stream.windows(window_duration_us=window_duration)
            reference_count = 0
        return self.monitor_windows(
            live_windows,
            model,
            output_path=output_path,
            keep_events=keep_events,
            reference_window_count=reference_count,
        )

    def run_on_events(
        self,
        events: Iterable[TraceEvent],
        model: ReferenceModel | None = None,
        output_path: str | Path | None = None,
        keep_events: bool = False,
    ) -> MonitorResult:
        """Convenience wrapper for plain event iterables."""
        return self.run_on_stream(
            TraceStream(events), model=model, output_path=output_path, keep_events=keep_events
        )

    def run_on_columns(
        self,
        columns: TraceColumns,
        model: ReferenceModel | None = None,
        output_path: str | Path | None = None,
        keep_events: bool = False,
        prefetch_batches: int = 0,
    ) -> MonitorResult:
        """Learn (if needed) and monitor a columnar trace.

        The columnar mirror of :meth:`run_on_stream`: windows are cut
        array-natively, batches carry lazy windows and precomputed byte
        sizes, and — when ``model`` is ``None`` — the reference prefix is
        the only part of the trace materialised as window objects (the
        learning step needs them).  Results are bit-identical to the object
        path over the same trace.

        ``prefetch_batches > 0`` overlaps batch construction with scoring
        through a bounded producer/consumer hand-off
        (:func:`~repro.trace.pipeline.prefetch_batches`); decisions and
        recordings are unaffected.
        """
        _check_prefetch(prefetch_batches)
        layout = column_windows_by_duration(
            columns, self.monitor_config.window_duration_us
        )
        first_live = 0
        reference_count = 0
        if model is None:
            boundary = self.monitor_config.reference_duration_us
            first_live = int(np.searchsorted(layout.end_us, boundary, side="right"))
            reference_windows = materialize_layout_windows(
                columns, layout, 0, first_live
            )
            model = self.learn_reference(reference_windows)
            reference_count = first_live
        elif not model.is_fitted:
            raise ModelError("provided reference model is not fitted")
        batches = batches_from_layout(
            columns,
            layout,
            self.registry,
            batch_size=max(self.monitor_config.batch_size, 1),
            first_window=first_live,
        )
        if prefetch_batches > 0:
            batches = _prefetch_batches(batches, prefetch_batches)
        return self.monitor_batches(
            batches,
            model,
            output_path=output_path,
            keep_events=keep_events,
            reference_window_count=reference_count,
        )

    def run_on_file(
        self,
        path: str | Path,
        model: ReferenceModel | None = None,
        output_path: str | Path | None = None,
        keep_events: bool = False,
        prefetch_batches: int = 0,
    ) -> MonitorResult:
        """Columnar file-to-scores path: decode, window, batch, monitor.

        Reads ``path`` with :func:`~repro.trace.reader.read_trace_columns`
        and monitors it via :meth:`run_on_columns` — the default CLI route
        for file-fed monitoring.
        """
        from ..trace.reader import read_trace_columns

        return self.run_on_columns(
            read_trace_columns(path),
            model=model,
            output_path=output_path,
            keep_events=keep_events,
            prefetch_batches=prefetch_batches,
        )

    def run_streaming(
        self,
        source: StreamingWindowSource,
        model: ReferenceModel | None = None,
        output_path: str | Path | None = None,
        keep_events: bool = False,
        prefetch_batches: int = 0,
    ) -> MonitorResult:
        """Learn (if needed) and monitor a live streaming source.

        The streaming mirror of :meth:`run_on_columns`: chunks are pulled
        from ``source`` on demand, windows are cut incrementally, and the
        decisions, report and recording are **bit-identical** to a
        one-shot read of the stream's final contents — fed in any chunking
        whatsoever.  Memory is bounded by the batch size and queue depths,
        never by the stream length.

        When ``model`` is ``None`` the stream's reference prefix
        (``monitor_config.reference_duration_us``) is consumed and
        materialised for learning first; if the stream ends inside the
        reference period, every window is reference and nothing is
        monitored — exactly like the one-shot path on the same trace.
        """
        _check_prefetch(prefetch_batches)
        window_duration = self.monitor_config.window_duration_us
        if model is None:
            reference_windows = source.reference_windows(
                self.monitor_config.reference_duration_us,
                default_window_duration_us=window_duration,
            )
            model = self.learn_reference(reference_windows)
            reference_count = len(reference_windows)
        else:
            if not model.is_fitted:
                raise ModelError("provided reference model is not fitted")
            reference_count = 0
        batches = source.batches(
            self.registry,
            max(self.monitor_config.batch_size, 1),
            default_window_duration_us=window_duration,
        )
        if prefetch_batches > 0:
            batches = _prefetch_batches(batches, prefetch_batches)
        result = self.monitor_batches(
            batches,
            model,
            output_path=output_path,
            keep_events=keep_events,
            reference_window_count=reference_count,
        )
        result.stream_stats = source.stats
        return result

    def follow_file(
        self,
        path: str | Path,
        model: ReferenceModel | None = None,
        output_path: str | Path | None = None,
        keep_events: bool = False,
        prefetch_batches: int = 0,
        poll_interval_s: float = 0.05,
        idle_timeout_s: float | None = None,
        stop: threading.Event | None = None,
        chunk_bytes: int = 1 << 20,
        on_corrupt: str = "raise",
    ) -> MonitorResult:
        """Follow a (possibly still-growing) trace file and monitor it live.

        The streaming counterpart of :meth:`run_on_file`: bytes are
        consumed as the tracer appends them (see
        :class:`~repro.trace.streaming.FileTail` for the poll / idle /
        stop semantics) and the result is bit-identical to a one-shot read
        of the final file.  ``on_corrupt="skip"`` quarantines mangled
        records instead of failing the stream; the skip tally lands in
        ``result.stream_stats``.
        """
        source = StreamingWindowSource.follow(
            path,
            recipe=StreamRecipe(on_corrupt=on_corrupt),
            poll_interval_s=poll_interval_s,
            idle_timeout_s=idle_timeout_s,
            stop=stop,
            chunk_bytes=chunk_bytes,
        )
        return self.run_streaming(
            source,
            model=model,
            output_path=output_path,
            keep_events=keep_events,
            prefetch_batches=prefetch_batches,
        )
