"""End-to-end trace monitor: learning + online detection + selective recording.

:class:`TraceMonitor` is the public entry point a user of the library drives:
give it a trace stream (from the simulator, from a file, or from any iterable
of events), it learns the reference model on the configured prefix — or uses
a model from the curated reference database — then monitors the remainder of
the stream, recording only the anomalous windows.  The returned
:class:`MonitorResult` bundles the per-window decisions, the recording report
and the model, i.e. everything the evaluation layer needs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from ..config import DetectorConfig, MonitorConfig
from ..errors import ModelError
from ..logging_util import get_logger
from ..trace.batch import batch_windows
from ..trace.codec import encoded_trace_size, encoded_window_sizes
from ..trace.event import EventTypeRegistry, TraceEvent
from ..trace.stream import TraceStream
from ..trace.window import TraceWindow
from .detector import OnlineAnomalyDetector, WindowDecision
from .model import ReferenceModel
from .recorder import RecorderReport, SelectiveTraceRecorder

__all__ = [
    "MonitorResult",
    "TraceMonitor",
    "build_shard_pipeline",
    "detector_stats_snapshot",
]

_LOGGER = get_logger("analysis.monitor")


def build_shard_pipeline(
    model: ReferenceModel,
    detector_config: DetectorConfig,
    monitor_config: MonitorConfig,
    registry_names,
    output_path: str | Path | None = None,
    keep_events: bool = False,
) -> tuple[EventTypeRegistry, OnlineAnomalyDetector, SelectiveTraceRecorder]:
    """Build one shard's scoring pipeline: cloned registry, detector, recorder.

    Single definition shared by the serial fleet
    (:meth:`~repro.analysis.fleet.ShardedTraceMonitor._activate`) and the
    process-parallel workers (:mod:`repro.analysis.parallel`): the two
    backends advertise bit-identical results, so the objects they score with
    must be constructed in exactly one place.
    """
    registry = EventTypeRegistry(tuple(registry_names))
    detector = OnlineAnomalyDetector(model, detector_config, registry)
    recorder = SelectiveTraceRecorder(
        context_windows=monitor_config.record_context_windows,
        output_path=output_path,
        keep_events=keep_events,
        io_buffer_bytes=monitor_config.io_buffer_bytes,
    )
    return registry, detector, recorder


def detector_stats_snapshot(detector: OnlineAnomalyDetector) -> dict[str, float]:
    """Counter snapshot of a detector, as stored in ``MonitorResult``.

    Single definition shared by :class:`TraceMonitor`, the serial fleet and
    the process-parallel fleet workers, so the stats dictionaries compared by
    the equivalence suites cannot drift apart structurally.
    """
    return {
        "windows_processed": detector.n_processed,
        "windows_merged": detector.n_merged,
        "lof_computations": detector.n_lof_computed,
        "lof_computation_rate": detector.lof_computation_rate,
    }


def score_and_record_batch(
    detector: OnlineAnomalyDetector,
    recorder: SelectiveTraceRecorder,
    batch,
) -> list[WindowDecision]:
    """Score one columnar batch, record it, return the stamped decisions.

    This is the single definition of the batched score -> size -> record
    step: both :meth:`TraceMonitor.monitor_windows` and the sharded fleet
    (:mod:`repro.analysis.fleet`) call it, so their per-window decisions and
    byte accounting cannot drift apart.
    """
    batch_decisions = detector.process_batch(batch)
    source_windows = batch.to_windows()
    sizes = encoded_window_sizes(source_windows)
    stamped = [
        dataclasses.replace(decision, window_bytes=size)
        for decision, size in zip(batch_decisions, sizes)
    ]
    recorder.observe_batch(
        source_windows,
        [decision.anomalous for decision in stamped],
        window_bytes=sizes,
    )
    return stamped


@dataclass
class MonitorResult:
    """Everything produced by one monitoring session.

    Attributes
    ----------
    decisions:
        Per-window decisions, in stream order (reference windows excluded).
    report:
        Byte-accurate recording report.
    model:
        The reference model that was used.
    recorded_indices:
        Indices of the windows written to storage (includes context windows).
    reference_window_count:
        Number of windows consumed by the learning step.
    detector_stats:
        Counters from the detector (windows merged, LOF computations, ...).
    """

    decisions: list[WindowDecision]
    report: RecorderReport
    model: ReferenceModel
    recorded_indices: list[int]
    reference_window_count: int = 0
    detector_stats: dict[str, float] = field(default_factory=dict)

    @property
    def n_windows(self) -> int:
        """Number of monitored (non-reference) windows."""
        return len(self.decisions)

    @property
    def n_anomalous(self) -> int:
        """Number of windows declared anomalous."""
        return sum(1 for decision in self.decisions if decision.anomalous)

    @property
    def anomaly_rate(self) -> float:
        """Fraction of monitored windows declared anomalous."""
        if not self.decisions:
            return 0.0
        return self.n_anomalous / len(self.decisions)

    def anomalous_windows(self) -> list[WindowDecision]:
        """Decisions of the anomalous windows only."""
        return [decision for decision in self.decisions if decision.anomalous]

    def lof_scores(self) -> list[float | None]:
        """LOF score per monitored window (``None`` when not computed)."""
        return [decision.lof_score for decision in self.decisions]


class TraceMonitor:
    """Drives reference learning, online detection and selective recording."""

    def __init__(
        self,
        detector_config: DetectorConfig | None = None,
        monitor_config: MonitorConfig | None = None,
        registry: EventTypeRegistry | None = None,
    ) -> None:
        self.detector_config = detector_config or DetectorConfig()
        self.monitor_config = monitor_config or MonitorConfig()
        self.registry = registry if registry is not None else EventTypeRegistry()

    # ------------------------------------------------------------------ #
    # Learning
    # ------------------------------------------------------------------ #
    def learn_reference(self, windows: Iterable[TraceWindow]) -> ReferenceModel:
        """Learn a reference model from the given windows."""
        model = ReferenceModel(k_neighbours=self.detector_config.k_neighbours)
        model.learn(windows, self.registry)
        _LOGGER.info(
            "learned reference model from %d windows (%d usable)",
            model.n_windows_seen,
            model.n_reference_windows,
        )
        return model

    # ------------------------------------------------------------------ #
    # Monitoring
    # ------------------------------------------------------------------ #
    def monitor_windows(
        self,
        windows: Iterable[TraceWindow],
        model: ReferenceModel,
        output_path: str | Path | None = None,
        keep_events: bool = False,
        reference_window_count: int = 0,
    ) -> MonitorResult:
        """Monitor an already-windowed stream against a learned model."""
        detector = OnlineAnomalyDetector(model, self.detector_config, self.registry)
        recorder = SelectiveTraceRecorder(
            context_windows=self.monitor_config.record_context_windows,
            output_path=output_path,
            keep_events=keep_events,
            io_buffer_bytes=self.monitor_config.io_buffer_bytes,
        )
        batch_size = self.monitor_config.batch_size
        decisions: list[WindowDecision] = []

        def record(window: TraceWindow, decision: WindowDecision) -> None:
            window_bytes = encoded_trace_size(window.events)
            decision = dataclasses.replace(decision, window_bytes=window_bytes)
            decisions.append(decision)
            recorder.observe(
                window, record=decision.anomalous, window_bytes=window_bytes
            )

        try:
            if batch_size > 1:
                # Vectorized plane: score a columnar micro-batch at a time,
                # then hand the whole batch to the recorder so the codec and
                # file writes are amortised across windows.
                for batch in batch_windows(windows, self.registry, batch_size):
                    decisions.extend(
                        score_and_record_batch(detector, recorder, batch)
                    )
            else:
                for window in windows:
                    record(window, detector.process(window))
        finally:
            recorder.close()

        result = MonitorResult(
            decisions=decisions,
            report=recorder.report(),
            model=model,
            recorded_indices=recorder.recorded_indices,
            reference_window_count=reference_window_count,
            detector_stats=detector_stats_snapshot(detector),
        )
        _LOGGER.info(
            "monitoring done: %d windows, %d anomalous, reduction factor %.1f",
            result.n_windows,
            result.n_anomalous,
            result.report.reduction_factor,
        )
        return result

    def run_on_stream(
        self,
        stream: TraceStream,
        model: ReferenceModel | None = None,
        output_path: str | Path | None = None,
        keep_events: bool = False,
    ) -> MonitorResult:
        """Learn (if needed) and monitor a full trace stream.

        When ``model`` is ``None`` the stream's first
        ``monitor_config.reference_duration_us`` microseconds are used as the
        reference trace; otherwise the provided (curated) model is used and
        the whole stream is monitored.
        """
        window_duration = self.monitor_config.window_duration_us
        if model is None:
            reference_windows, live_windows = stream.split_reference(
                self.monitor_config.reference_duration_us,
                window_duration_us=window_duration,
            )
            model = self.learn_reference(reference_windows)
            reference_count = len(reference_windows)
        else:
            if not model.is_fitted:
                raise ModelError("provided reference model is not fitted")
            live_windows = stream.windows(window_duration_us=window_duration)
            reference_count = 0
        return self.monitor_windows(
            live_windows,
            model,
            output_path=output_path,
            keep_events=keep_events,
            reference_window_count=reference_count,
        )

    def run_on_events(
        self,
        events: Iterable[TraceEvent],
        model: ReferenceModel | None = None,
        output_path: str | Path | None = None,
        keep_events: bool = False,
    ) -> MonitorResult:
        """Convenience wrapper for plain event iterables."""
        return self.run_on_stream(
            TraceStream(events), model=model, output_path=output_path, keep_events=keep_events
        )
