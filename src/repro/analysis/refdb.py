"""Curated reference-model database.

The paper notes that "a curated database of reference traces can be
constituted in order to skip the learning step": once a model of correct
behaviour has been learned for a given application/workload combination, it
can be stored and reused for later endurance tests.  The
:class:`ReferenceDatabase` is that store: a directory of saved
:class:`~repro.analysis.model.ReferenceModel` files plus a JSON catalogue
describing each entry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from ..errors import ModelError
from .model import ReferenceModel

__all__ = ["ReferenceDatabase", "ReferenceEntry"]

_CATALOG_NAME = "catalog.json"


@dataclass(frozen=True)
class ReferenceEntry:
    """Catalogue entry describing one stored reference model."""

    name: str
    filename: str
    description: str = ""
    tags: tuple[str, ...] = ()
    metadata: Mapping[str, Any] = field(default_factory=dict)
    fingerprint: Mapping[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form of the entry."""
        payload = {
            "name": self.name,
            "filename": self.filename,
            "description": self.description,
            "tags": list(self.tags),
            "metadata": dict(self.metadata),
        }
        if self.fingerprint is not None:
            payload["fingerprint"] = dict(self.fingerprint)
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ReferenceEntry":
        """Rebuild an entry from :meth:`to_dict` output."""
        try:
            fingerprint = data.get("fingerprint")
            return cls(
                name=str(data["name"]),
                filename=str(data["filename"]),
                description=str(data.get("description", "")),
                tags=tuple(str(tag) for tag in data.get("tags", [])),
                metadata=dict(data.get("metadata", {})),
                fingerprint=dict(fingerprint) if fingerprint is not None else None,
            )
        except KeyError as exc:
            raise ModelError(f"malformed reference catalogue entry: {data!r}") from exc


class ReferenceDatabase:
    """Directory-backed store of named reference models."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._entries: dict[str, ReferenceEntry] = {}
        self._load_catalog()

    # ------------------------------------------------------------------ #
    # Catalogue handling
    # ------------------------------------------------------------------ #
    @property
    def _catalog_path(self) -> Path:
        return self.root / _CATALOG_NAME

    def _load_catalog(self) -> None:
        if not self._catalog_path.exists():
            return
        try:
            raw = json.loads(self._catalog_path.read_text())
        except json.JSONDecodeError as exc:
            raise ModelError(f"malformed reference catalogue: {self._catalog_path}") from exc
        for item in raw.get("entries", []):
            entry = ReferenceEntry.from_dict(item)
            self._entries[entry.name] = entry

    def _save_catalog(self) -> None:
        payload = {"entries": [entry.to_dict() for entry in self._entries.values()]}
        self._catalog_path.write_text(json.dumps(payload, indent=2, sort_keys=True))

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: object) -> bool:
        return str(name) in self._entries

    def __iter__(self) -> Iterator[ReferenceEntry]:
        return iter(self._entries.values())

    def names(self) -> list[str]:
        """Names of every stored model (sorted)."""
        return sorted(self._entries)

    def add(
        self,
        name: str,
        model: ReferenceModel,
        description: str = "",
        tags: tuple[str, ...] = (),
        metadata: Mapping[str, Any] | None = None,
        overwrite: bool = False,
    ) -> ReferenceEntry:
        """Store ``model`` under ``name``.

        Raises :class:`~repro.errors.ModelError` if the name already exists
        and ``overwrite`` is false.
        """
        if not name:
            raise ModelError("reference model name must not be empty")
        if name in self._entries and not overwrite:
            raise ModelError(f"reference model {name!r} already exists")
        filename = f"{name}.npz"
        model.save(self.root / filename)
        entry = ReferenceEntry(
            name=name,
            filename=filename,
            description=description,
            tags=tags,
            metadata=dict(metadata or {}),
            fingerprint=model.fingerprint(),
        )
        self._entries[name] = entry
        self._save_catalog()
        return entry

    def get(self, name: str) -> ReferenceModel:
        """Load and return the model stored under ``name``.

        The loaded model's fingerprint (dims, point count, event-type
        registry hash) is checked against the catalogue entry; a mismatch —
        e.g. a model file replaced on disk behind the catalogue's back —
        raises :class:`~repro.errors.ModelError` naming the entry instead of
        silently scoring with a stale model.
        """
        entry = self._entries.get(name)
        if entry is None:
            raise ModelError(f"no reference model named {name!r} in {self.root}")
        model = ReferenceModel.load(self.root / entry.filename)
        if entry.fingerprint is not None:
            actual = model.fingerprint()
            if dict(entry.fingerprint) != actual:
                raise ModelError(
                    f"reference model {name!r} does not match its catalogue "
                    f"fingerprint (catalogue {dict(entry.fingerprint)!r}, "
                    f"file {actual!r}); the stored file is stale or was "
                    "replaced — re-add the model to refresh the catalogue"
                )
        return model

    def entry(self, name: str) -> ReferenceEntry:
        """Return the catalogue entry for ``name``."""
        entry = self._entries.get(name)
        if entry is None:
            raise ModelError(f"no reference model named {name!r} in {self.root}")
        return entry

    def remove(self, name: str) -> None:
        """Delete the model stored under ``name`` (file and catalogue entry)."""
        entry = self._entries.pop(name, None)
        if entry is None:
            raise ModelError(f"no reference model named {name!r} in {self.root}")
        model_path = self.root / entry.filename
        if model_path.exists():
            model_path.unlink()
        self._save_catalog()

    def find_by_tag(self, tag: str) -> list[ReferenceEntry]:
        """Return every entry carrying ``tag``."""
        return [entry for entry in self._entries.values() if tag in entry.tags]
