"""Periodicity-aware trace compaction (the paper's future-work extension).

The paper's conclusion sketches a further reduction: "we are also interested
in further reducing the recorded trace size by exploiting the periodic
behavior of the application".  Multimedia decoding is strongly periodic (one
frame every 40 ms, one GOP every ~0.5 s), so even the *anomalous* windows the
monitor records tend to repeat: a perturbation lasting several seconds
produces dozens of near-identical "decoder starved" windows.

:class:`PeriodicityCompactor` implements the natural realisation of that
idea:

1. estimate the dominant period of the application from the per-window event
   counts (autocorrelation, :func:`estimate_dominant_period`);
2. bucket recorded windows by their phase within that period;
3. within each phase bucket, keep the first occurrence of each behaviour as
   an *exemplar* and replace subsequent near-duplicates (symmetrised KL to an
   exemplar below a threshold) by a tiny reference record.

The compaction is lossy only in the controlled sense that duplicated windows
are replaced by "same as window i" markers; every distinct behaviour is kept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import ModelError
from ..trace.codec import encoded_trace_size
from ..trace.event import EventTypeRegistry
from ..trace.window import TraceWindow
from .divergence import symmetric_kl_divergence
from .pmf import Pmf, pmf_from_window

__all__ = ["estimate_dominant_period", "PeriodicityCompactor", "CompactionReport"]

#: Size in bytes of a "duplicate of window i" reference record: window index,
#: exemplar index and timestamps, varint-encoded — 16 bytes is generous.
_REFERENCE_RECORD_BYTES = 16


def estimate_dominant_period(
    values: Sequence[float],
    min_lag: int = 2,
    max_lag: int | None = None,
) -> int | None:
    """Estimate the dominant period of a signal via autocorrelation.

    Parameters
    ----------
    values:
        Evenly spaced samples (e.g. events per window).
    min_lag / max_lag:
        Search range for the period, in samples.  ``max_lag`` defaults to
        half the signal length.

    Returns
    -------
    int | None
        The lag (in samples) with the highest autocorrelation peak, or
        ``None`` when the signal is too short or has no significant
        periodicity (autocorrelation below 0.1 everywhere).
    """
    signal = np.asarray(list(values), dtype=float)
    if len(signal) < max(4, 2 * min_lag):
        return None
    if min_lag < 1:
        raise ModelError("min_lag must be >= 1")
    if max_lag is None:
        max_lag = len(signal) // 2
    max_lag = min(max_lag, len(signal) - 1)
    if max_lag < min_lag:
        return None

    centred = signal - signal.mean()
    variance = float(np.dot(centred, centred))
    if variance <= 0:
        return None
    correlations = np.empty(max_lag - min_lag + 1)
    for position, lag in enumerate(range(min_lag, max_lag + 1)):
        correlations[position] = float(np.dot(centred[:-lag], centred[lag:])) / variance
    best = int(np.argmax(correlations))
    if correlations[best] < 0.1:
        return None
    return min_lag + best


@dataclass(frozen=True)
class CompactionReport:
    """Outcome of a periodicity-aware compaction pass."""

    input_windows: int
    kept_windows: int
    deduplicated_windows: int
    input_bytes: int
    output_bytes: int
    period_windows: int | None

    @property
    def additional_reduction_factor(self) -> float:
        """Extra size reduction on top of the selective recording."""
        if self.input_bytes == 0:
            return 1.0
        if self.output_bytes == 0:
            return float("inf")
        return self.input_bytes / self.output_bytes

    def to_dict(self) -> dict:
        """JSON-serialisable form used by reports."""
        return {
            "input_windows": self.input_windows,
            "kept_windows": self.kept_windows,
            "deduplicated_windows": self.deduplicated_windows,
            "input_bytes": self.input_bytes,
            "output_bytes": self.output_bytes,
            "period_windows": self.period_windows,
            "additional_reduction_factor": self.additional_reduction_factor,
        }


@dataclass
class _Exemplar:
    """A kept window representative for one phase bucket."""

    window_index: int
    pmf: Pmf


class PeriodicityCompactor:
    """Deduplicates recorded windows that repeat the same periodic behaviour."""

    def __init__(
        self,
        similarity_threshold: float = 0.05,
        registry: EventTypeRegistry | None = None,
        phase_buckets: int | None = None,
    ) -> None:
        if similarity_threshold < 0:
            raise ModelError("similarity_threshold must be >= 0")
        if phase_buckets is not None and phase_buckets < 1:
            raise ModelError("phase_buckets must be >= 1")
        self.similarity_threshold = float(similarity_threshold)
        self.registry = registry if registry is not None else EventTypeRegistry()
        self.phase_buckets = phase_buckets

    def compact(
        self,
        recorded_windows: Iterable[TraceWindow],
        all_window_counts: Sequence[float] | None = None,
    ) -> tuple[list[TraceWindow], CompactionReport]:
        """Compact ``recorded_windows``; return kept windows and the report.

        ``all_window_counts`` (events per window over the *whole* run) is
        used to estimate the dominant period; when omitted, the counts of the
        recorded windows themselves are used, which is a weaker but still
        serviceable estimate.
        """
        windows = list(recorded_windows)
        counts_for_period = (
            list(all_window_counts)
            if all_window_counts is not None
            else [len(window) for window in windows]
        )
        period = estimate_dominant_period(counts_for_period)
        n_buckets = self.phase_buckets or (period if period else 1)

        exemplars: dict[int, list[_Exemplar]] = {}
        kept: list[TraceWindow] = []
        deduplicated = 0
        input_bytes = 0
        output_bytes = 0

        for window in windows:
            window_bytes = encoded_trace_size(window.events)
            input_bytes += window_bytes
            if window.is_empty:
                kept.append(window)
                output_bytes += window_bytes
                continue
            pmf = pmf_from_window(window, self.registry)
            phase = window.index % n_buckets if n_buckets > 1 else 0
            bucket = exemplars.setdefault(phase, [])
            duplicate_of = self._find_duplicate(bucket, pmf)
            if duplicate_of is None:
                bucket.append(_Exemplar(window_index=window.index, pmf=pmf))
                kept.append(window)
                output_bytes += window_bytes
            else:
                deduplicated += 1
                output_bytes += _REFERENCE_RECORD_BYTES

        report = CompactionReport(
            input_windows=len(windows),
            kept_windows=len(kept),
            deduplicated_windows=deduplicated,
            input_bytes=input_bytes,
            output_bytes=output_bytes,
            period_windows=period,
        )
        return kept, report

    def _find_duplicate(self, bucket: list[_Exemplar], pmf: Pmf) -> int | None:
        for exemplar in bucket:
            divergence = symmetric_kl_divergence(pmf, exemplar.pmf, smoothing=1e-6)
            if divergence < self.similarity_threshold:
                return exemplar.window_index
        return None
