"""Process-parallel execution backend for the sharded monitoring fleet.

The serial :class:`~repro.analysis.fleet.ShardedTraceMonitor` interleaves
every shard in one Python thread, so adding streams adds wall-clock time
almost linearly.  This module moves whole shards to worker processes:

* the fitted :class:`~repro.analysis.model.ReferenceModel` is pickled **once**
  and shipped to each worker at pool start-up (the model drops its
  identity-keyed projection cache on pickling and is strictly read-only
  afterwards — workers never write to it);
* each shard is one unit of work: the worker clones the fleet's base
  event-type registry, builds its own detector and recorder (recorders are
  worker-local by construction — they refuse to pickle), and drives the
  shard's windows through the exact same
  :func:`~repro.analysis.monitor.score_and_record_batch` plane the serial
  fleet uses;
* per-shard outcomes are marshalled back as plain picklable pieces
  (decisions, report, recorded indices, detector counters) and merged in
  **submission order**, so the resulting
  :class:`~repro.analysis.fleet.FleetResult` is bit-identical to the serial
  fleet's regardless of which worker finished first (the PR 2 equivalence
  suite runs against both backends).

Failure propagation: a worker exception is caught inside the worker, carried
back as data and re-raised in the parent as :class:`~repro.errors.FleetError`
naming the failing shard — never a hang, and never a lost traceback.  All
shards run to completion (closing their output files) before the error is
raised, so a single bad stream cannot leave sibling recordings truncated.

The one semantic difference from the serial backend: shard window iterables
are materialised in the parent before submission (workers must be able to
see them), so the parallel path trades memory proportional to the fleet for
multi-core scaling.  ``MonitorConfig.max_active_shards`` does not apply —
at most ``fleet_workers`` shards are in flight at any moment.  Two shard
kinds escape the up-front materialisation through **bounded per-shard
channels** instead (see `Chunked transport`_ below): live
:class:`~repro.trace.streaming.StreamingWindowSource` shards (always), and
plain window iterables when ``MonitorConfig.shard_chunk_windows`` is set.

Window transport
----------------
Scoring a window costs far less CPU than pickling its events (the batch
plane reduced per-window compute to a few microseconds, while a
``TraceWindow`` of a few hundred events costs milliseconds to serialise),
so shipping windows through the pool's pickle queue would make the parallel
fleet slower than the serial one at any core count.  On platforms with the
``fork`` start method the materialised shard windows are therefore
**inherited**: the parent parks them in a module global, pins a fork
context, and the work order carries only the shard label — the bulk data
crosses the process boundary through copy-on-write fork memory at zero
serialisation cost.  Where fork is unavailable the windows travel inside
the (pickled) work order instead; both transports are exercised by the
equivalence suite and produce bit-identical results.

Chunked transport
-----------------
A live :class:`~repro.trace.streaming.StreamingWindowSource` shard cannot
be materialised up front (it may be unbounded, and bounding memory is its
whole point), so the parent instead pumps its *decoded chunk stream*
(:meth:`~repro.trace.streaming.StreamingWindowSource.columns_chunks`) over
a bounded per-shard channel — ``MonitorConfig.stream_queue_depth`` chunks
deep — from one feeder thread per shard, and the worker rebuilds an
identical source over the channel with
:meth:`~repro.trace.streaming.StreamingWindowSource.with_columns_chunks`.
The same channel machinery feeds plain window-iterable shards in bounded
chunks of ``MonitorConfig.shard_chunk_windows`` windows when that knob is
set, so a wide fleet of generator-backed shards no longer needs the whole
fleet's windows in memory at once.  Backpressure is end-to-end: a full
channel blocks the feeder, which stops pulling from the source.  On fork
platforms the channels are fork-inherited :class:`multiprocessing.Queue`
objects (parked in :data:`_SHARD_CHANNELS`); elsewhere they are manager
proxies travelling inside the pickled work order.  Feeder-side failures
(e.g. a decode error halfway through a stream) are marshalled over the
channel as data and re-raised in the worker, so the resulting
:class:`~repro.errors.FleetError` still names the failing shard; a worker
that loses its parent mid-stream raises instead of waiting forever.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as _queue
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from itertools import chain
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

from ..config import DetectorConfig, MonitorConfig
from ..errors import FleetError, TraceStreamError
from ..logging_util import get_logger
from ..testing.faults import fault_point, shard_scope
from ..trace.columns import TraceColumns
from ..trace.stream import ColumnarWindowSource
from ..trace.streaming import StreamingWindowSource, StreamRecipe
from ..trace.window import TraceWindow
from .detector import WindowDecision
from .model import ReferenceModel
from .monitor import (
    MonitorResult,
    ShardOutcome,
    build_shard_pipeline,
    detector_stats_snapshot,
    score_and_record_batch,
    shard_batches,
    shard_output_path,
)
from .recorder import RecorderReport

__all__ = [
    "fork_transport_available",
    "monitor_shards_parallel",
    "source_replayable",
]

_LOGGER = get_logger("analysis.parallel")


@dataclass(frozen=True)
class _WorkerState:
    """Read-only context shipped to every worker once, at pool start-up."""

    model: ReferenceModel
    detector_config: DetectorConfig
    monitor_config: MonitorConfig
    registry_names: tuple[str, ...]


@dataclass(frozen=True)
class _ShardTask:
    """One shard's work order (everything here must pickle cheaply).

    ``windows`` is ``None`` when the shard's window source travels via fork
    inheritance (:data:`_SHARD_WINDOWS`) instead of the pickle queue.
    Columnar sources (:class:`~repro.trace.columns.TraceColumns` /
    :class:`~repro.trace.stream.ColumnarWindowSource`) are flat arrays plus
    one raw buffer, cheap enough to pickle that spawn-only platforms lose
    little to the queue.
    """

    label: str
    windows: (
        tuple[TraceWindow, ...] | TraceColumns | ColumnarWindowSource | None
    )
    output_path: Path | None
    keep_events: bool
    #: ``None`` for the materialised transports above; ``"columns"`` when
    #: the shard is fed decoded :class:`TraceColumns` chunks over a bounded
    #: channel (streaming sources), ``"windows"`` when it is fed bounded
    #: lists of :class:`TraceWindow` (``shard_chunk_windows``).
    chunk_kind: str | None = None
    #: Windowing recipe for ``chunk_kind == "columns"`` reconstruction.
    recipe: StreamRecipe | None = None
    #: Manager-queue proxy on pickle-transport platforms; ``None`` on fork
    #: platforms, where the channel is inherited via :data:`_SHARD_CHANNELS`.
    channel: object | None = None
    #: 1-based run number of this shard (grows across retry waves); threaded
    #: into the fault-injection scope so chaos plans stay deterministic.
    attempt: int = 1


@dataclass
class _ShardOutcome:
    """Picklable result of one shard run, model deliberately excluded.

    The parent re-attaches the shared model when assembling the
    :class:`MonitorResult`, so the (large) model never travels back through
    the result queue N times.
    """

    label: str
    decisions: list[WindowDecision] = field(default_factory=list)
    report: RecorderReport | None = None
    recorded_indices: list[int] = field(default_factory=list)
    detector_stats: dict[str, float] = field(default_factory=dict)
    error: str | None = None


#: Per-process worker context, set by :func:`_initialize_worker`.
_WORKER_STATE: _WorkerState | None = None  # repro: fork-shared

#: Fork-inheritance staging area: the parent parks every shard's
#: materialised window source (window tuple or columnar source) here
#: immediately before creating a fork-context pool, so the (forked) workers
#: read them from inherited copy-on-write memory instead of the pickle
#: queue.  Always reset to ``None`` in the parent once the pool is done.
_SHARD_WINDOWS: (
    dict[str, tuple[TraceWindow, ...] | TraceColumns | ColumnarWindowSource] | None
) = None  # repro: fork-shared

#: Fork-inheritance staging area for the chunked transport's per-shard
#: bounded channels (:class:`multiprocessing.Queue`), keyed by shard label.
#: Always reset to ``None`` in the parent once the pool is done.
_SHARD_CHANNELS: "dict[str, object] | None" = None  # repro: fork-shared

#: How long channel operations wait before re-checking for shutdown
#: (feeder side: the run was abandoned; worker side: the parent died).
_CHANNEL_POLL_S = 0.1

#: How long pool teardown waits for each feeder thread before abandoning it
#: (they are daemons); an abandoned feeder is surfaced as a diagnostic on
#: the fleet result, never silently ignored.  Module-level so tests can
#: shrink it.
_FEEDER_JOIN_TIMEOUT_S = 5.0


def source_replayable(source: object) -> bool:
    """Whether a shard's window source can be re-run from scratch.

    Retrying a shard re-builds its whole pipeline and re-iterates its
    windows, so only sources that yield the same windows again qualify:
    materialised sequences and columnar sources.  One-shot iterators and
    live streams are consumed by the failed attempt — retrying them would
    silently score a different (suffix) stream, so they fail terminally.
    """
    if isinstance(source, (TraceColumns, ColumnarWindowSource)):
        return True
    if isinstance(source, StreamingWindowSource):
        return False
    return isinstance(source, Sequence)


def fork_transport_available() -> bool:
    """Whether workers can inherit parent memory (fork start method).

    Deliberately keyed on the *configured default* start method rather than
    on fork being merely importable: on platforms where the default is
    spawn/forkserver (macOS, Windows, Linux from Python 3.14), forking from
    an arbitrary parent state is unsafe or unexpected, so the windows
    travel through the pickle queue instead.
    """
    return multiprocessing.get_start_method() == "fork"


def _channel_put(channel: Any, message: object, stop: threading.Event) -> bool:
    """Put ``message`` on a bounded channel; ``False`` once ``stop`` fires."""
    while not stop.is_set():
        try:
            channel.put(message, timeout=_CHANNEL_POLL_S)
            return True
        except _queue.Full:
            continue
    return False


def _feed_channel(
    channel: Any, chunks: Iterable, stop: threading.Event, label: str
) -> None:
    """Parent-side feeder: pump ``chunks`` over a bounded shard channel.

    Source failures (a decode error halfway through a live stream, a bad
    window iterable) are shipped to the worker as an ``("error", message)``
    message rather than raised here, so the shard's
    :class:`~repro.errors.FleetError` names the right shard and no worker
    is left waiting on a channel that will never complete.
    """
    try:
        for chunk in chunks:
            if not _channel_put(channel, ("chunk", chunk), stop):
                return
        _channel_put(channel, ("done", None), stop)
    except Exception as exc:  # noqa: BLE001 - re-raised worker-side
        _LOGGER.warning("shard %r feeder failed: %s", label, exc)
        _channel_put(
            channel, ("error", f"{type(exc).__name__}: {exc}"), stop
        )


def _window_chunks(
    source: Iterable[TraceWindow], size: int
) -> Iterator[list[TraceWindow]]:
    """Slice a window iterable into bounded lists of at most ``size``."""
    block: list[TraceWindow] = []
    for window in source:
        block.append(window)
        if len(block) >= size:
            yield block
            block = []
    if block:
        yield block


def _iter_channel_chunks(channel: Any, label: str) -> Iterator:
    """Worker-side channel reader: yield chunks until ``done`` or failure.

    Polls with a timeout and checks parent liveness between polls — a
    parent that died with the stream unfinished surfaces as a
    :class:`~repro.errors.TraceStreamError` instead of blocking the worker
    (and the pool shutdown behind it) forever.
    """
    parent = multiprocessing.parent_process()
    while True:
        try:
            kind, payload = channel.get(timeout=_CHANNEL_POLL_S)
        except _queue.Empty:
            if parent is not None and not parent.is_alive():
                raise TraceStreamError(
                    f"shard {label!r} chunk feeder (parent process) died "
                    "before completing the stream"
                ) from None
            continue
        if kind == "chunk":
            yield payload
        elif kind == "done":
            return
        else:
            raise TraceStreamError(
                f"shard {label!r} chunk feeder failed: {payload}"
            )


def _initialize_worker(payload: bytes) -> None:
    """Unpickle the shared worker context exactly once per worker process.

    The payload is pickled explicitly in the parent (rather than relying on
    ``initargs`` marshalling) so the model's ``__getstate__`` runs under
    every multiprocessing start method — fork included — and each worker
    gets its own deserialised model instance instead of a copy-on-write
    alias of the parent's.
    """
    global _WORKER_STATE
    fault_point("worker.boot")
    _WORKER_STATE = pickle.loads(payload)


def _run_shard(task: _ShardTask) -> _ShardOutcome:
    """Monitor one shard inside a worker process.

    Mirrors the serial fleet's per-shard pipeline exactly: cloned base
    registry, per-shard detector and recorder, ``score_and_record_batch``
    over ``batch_windows`` micro-batches.  Exceptions are marshalled back as
    data — raising across the pool boundary would lose the shard label and
    can hang brittle pool implementations on unpicklable exceptions.
    """
    state = _WORKER_STATE
    if state is None:
        return _ShardOutcome(
            label=task.label, error="worker process was never initialised"
        )
    recorder = None
    try:
        with shard_scope(task.label, task.attempt):
            fault_point("shard.start")
            if task.chunk_kind is not None:
                channel = task.channel
                if channel is None:
                    if _SHARD_CHANNELS is None or task.label not in _SHARD_CHANNELS:
                        return _ShardOutcome(
                            label=task.label,
                            error="shard channel was neither pickled nor "
                            "fork-inherited",
                        )
                    channel = _SHARD_CHANNELS[task.label]
                chunks = _iter_channel_chunks(channel, task.label)
                if task.chunk_kind == "columns":
                    recipe = (
                        task.recipe if task.recipe is not None else StreamRecipe()
                    )
                    windows = StreamingWindowSource(
                        columns_chunks=chunks, recipe=recipe
                    )
                else:
                    windows = chain.from_iterable(chunks)
            elif task.windows is not None:
                windows = task.windows
            elif _SHARD_WINDOWS is not None and task.label in _SHARD_WINDOWS:
                windows = _SHARD_WINDOWS[task.label]
            else:
                return _ShardOutcome(
                    label=task.label,
                    error="shard windows were neither pickled nor fork-inherited",
                )
            config = state.monitor_config
            registry, detector, recorder = build_shard_pipeline(
                state.model,
                state.detector_config,
                config,
                state.registry_names,
                output_path=task.output_path,
                keep_events=task.keep_events,
            )
            decisions: list[WindowDecision] = []
            for batch in shard_batches(windows, registry, config):
                fault_point("shard.batch")
                decisions.extend(score_and_record_batch(detector, recorder, batch))
            # Only a clean run commits the output file (atomic rename);
            # the failure path below discards the .partial instead, so a
            # failed shard never leaves output that looks valid.
            recorder.close()
        return _ShardOutcome(
            label=task.label,
            decisions=decisions,
            report=recorder.report(),
            recorded_indices=recorder.recorded_indices,
            detector_stats=detector_stats_snapshot(detector),
        )
    except Exception as exc:
        if recorder is not None:
            try:
                recorder.discard()
            except Exception:  # noqa: BLE001 - the original error must win
                _LOGGER.exception(
                    "shard %r recorder discard failed after shard error",
                    task.label,
                )
        return _ShardOutcome(
            label=task.label,
            error=f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
        )


def _run_wave(
    sources: "Mapping[str, Iterable[TraceWindow] | TraceColumns | ColumnarWindowSource | StreamingWindowSource]",
    attempts: Mapping[str, int],
    payload: bytes,
    monitor_config: MonitorConfig,
    output_dir: str | Path | None,
    keep_events: bool,
    diagnostics: list[str],
) -> dict[str, _ShardOutcome]:
    """Run one wave of shards through a fresh process pool.

    Every shard in the wave gets exactly one :class:`_ShardOutcome` — a
    worker exception arrives marshalled as data, and a pool-level failure
    (a worker hard-killed mid-shard breaks the whole
    :class:`ProcessPoolExecutor`) is converted into per-shard failures for
    the futures it took down, so the retry/isolation logic upstream can
    treat both uniformly.  The pool, channels and feeder threads are
    wave-local: a retry wave after a broken pool starts from clean state.
    """
    global _SHARD_WINDOWS, _SHARD_CHANNELS
    labels = list(sources)
    use_fork = fork_transport_available()
    # Shards routed through bounded channels instead of materialisation:
    # live streaming sources always (they may be unbounded), plain window
    # iterables when the shard_chunk_windows knob asks for it.
    chunked: dict[str, tuple[str, object]] = {}
    for label, source in sources.items():
        if isinstance(source, StreamingWindowSource):
            chunked[label] = ("columns", source)
        elif isinstance(source, (TraceColumns, ColumnarWindowSource)):
            continue
        elif monitor_config.shard_chunk_windows is not None:
            chunked[label] = ("windows", source)
    materialised = {
        label: (
            source
            if isinstance(source, (TraceColumns, ColumnarWindowSource))
            else tuple(source)
        )
        for label, source in sources.items()
        if label not in chunked
    }
    context = multiprocessing.get_context("fork") if use_fork else None
    manager = None
    channels: dict[str, object] = {}
    if chunked:
        depth = monitor_config.stream_queue_depth
        if use_fork:
            # Created before the pool (workers fork at first submission and
            # must inherit them); parked in _SHARD_CHANNELS below.
            channels = {
                label: context.Queue(maxsize=depth) for label in chunked
            }
        else:
            manager = multiprocessing.Manager()
            channels = {
                label: manager.Queue(maxsize=depth) for label in chunked
            }
    tasks = []
    for label in labels:
        output_path = (
            shard_output_path(output_dir, label, monitor_config)
            if output_dir is not None
            else None
        )
        if label in chunked:
            kind, source = chunked[label]
            tasks.append(
                _ShardTask(
                    label,
                    None,
                    output_path,
                    keep_events,
                    chunk_kind=kind,
                    recipe=source.recipe if kind == "columns" else None,
                    channel=None if use_fork else channels[label],
                    attempt=attempts[label],
                )
            )
        else:
            tasks.append(
                _ShardTask(
                    label,
                    None if use_fork else materialised[label],
                    output_path,
                    keep_events,
                    attempt=attempts[label],
                )
            )
    workers = max(1, min(monitor_config.fleet_workers, len(tasks)))
    _LOGGER.info(
        "parallel fleet wave: %d shards across %d worker processes "
        "(%s transport, %d chunked)",
        len(tasks),
        workers,
        "fork" if use_fork else "pickle",
        len(chunked),
    )
    outcomes: dict[str, _ShardOutcome] = {}
    stop_feeders = threading.Event()
    feeders: list[tuple[str, threading.Thread]] = []
    try:
        if use_fork:
            # Workers fork at first submission, inheriting this snapshot.
            _SHARD_WINDOWS = materialised
            _SHARD_CHANNELS = channels if channels else None
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_initialize_worker,
            initargs=(payload,),
        ) as pool:
            futures = [(task.label, pool.submit(_run_shard, task)) for task in tasks]
            # Feeders start only after every submission: on fork platforms
            # the workers fork during the submits above, and forking a
            # process with live feeder threads could snapshot held locks.
            for label, (kind, source) in chunked.items():
                chunks = (
                    source.columns_chunks()
                    if kind == "columns"
                    else _window_chunks(
                        source, monitor_config.shard_chunk_windows
                    )
                )
                feeder = threading.Thread(
                    target=_feed_channel,
                    args=(channels[label], chunks, stop_feeders, label),
                    name=f"repro-shard-feed-{label}",
                    daemon=True,
                )
                feeders.append((label, feeder))
                feeder.start()
            for label, future in futures:
                try:
                    outcomes[label] = future.result()
                except Exception as exc:
                    # A dead worker (hard kill, OOM) breaks the whole pool:
                    # every future it takes down becomes a per-shard
                    # failure, attributable and retriable like any other.
                    outcomes[label] = _ShardOutcome(
                        label=label,
                        error=f"worker process failed: "
                        f"{type(exc).__name__}: {exc}",
                    )
    finally:
        _SHARD_WINDOWS = None
        _SHARD_CHANNELS = None
        stop_feeders.set()
        for channel in channels.values():
            # Unblock any feeder stuck on a full channel (dead worker).
            while True:
                try:
                    channel.get_nowait()
                except _queue.Empty:
                    break
                except (OSError, ValueError):
                    break
        for label, feeder in feeders:
            feeder.join(timeout=_FEEDER_JOIN_TIMEOUT_S)
            if feeder.is_alive():
                # The 5 s grace expired with the (daemon) feeder still
                # running: surface the abandonment instead of silently
                # dropping it — it holds a chunk source that will never
                # finish cleanly.
                message = (
                    f"feeder thread for shard {label!r} did not exit within "
                    f"{_FEEDER_JOIN_TIMEOUT_S:g}s and was abandoned"
                )
                _LOGGER.warning(message)
                diagnostics.append(message)
        for channel in channels.values():
            close = getattr(channel, "close", None)
            if close is not None and manager is None:
                try:
                    channel.cancel_join_thread()
                    close()
                except (OSError, ValueError):
                    # Best-effort teardown: a channel whose queue feeder
                    # already died must not keep the rest from closing.
                    pass
        if manager is not None:
            manager.shutdown()
    return outcomes


def monitor_shards_parallel(
    shards: "Mapping[str, Iterable[TraceWindow] | TraceColumns | ColumnarWindowSource | StreamingWindowSource]",
    model: ReferenceModel,
    detector_config: DetectorConfig,
    monitor_config: MonitorConfig,
    registry_names: Sequence[str],
    output_dir: str | Path | None = None,
    keep_events: bool = False,
) -> tuple[dict[str, MonitorResult], dict[str, ShardOutcome], tuple[str, ...]]:
    """Run every shard in a process pool; results keyed in submission order.

    The caller (:meth:`ShardedTraceMonitor.monitor_shards`) has already
    validated the model and label uniqueness.  Failed shards are retried in
    fresh pool waves while ``MonitorConfig.shard_retries`` budget remains
    and their source is replayable (:func:`source_replayable`); a retried
    shard re-runs from scratch, so its results are bit-identical to a
    fault-free run.  Terminal failures follow
    ``MonitorConfig.shard_failure_policy``: ``"abort"`` raises
    :class:`FleetError` naming the first failing shard (in submission
    order) after every shard has finished, ``"isolate"`` quarantines the
    shard and returns the survivors.

    Returns ``(results, outcomes, diagnostics)``: per-shard
    :class:`MonitorResult` for succeeded shards, one
    :class:`~repro.analysis.monitor.ShardOutcome` per submitted shard, and
    teardown diagnostics (e.g. abandoned feeder threads).
    """
    labels = list(shards)
    retries = monitor_config.shard_retries
    backoff = monitor_config.shard_retry_backoff_s
    payload = pickle.dumps(
        _WorkerState(
            model, detector_config, monitor_config, tuple(registry_names)
        ),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    diagnostics: list[str] = []
    final: dict[str, _ShardOutcome] = {}
    attempts: dict[str, int] = {label: 1 for label in labels}
    wave = labels
    try:
        while wave:
            wave_outcomes = _run_wave(
                {label: shards[label] for label in wave},
                attempts,
                payload,
                monitor_config,
                output_dir,
                keep_events,
                diagnostics,
            )
            retry_next: list[str] = []
            for label in wave:
                outcome = wave_outcomes[label]
                if outcome.error is None:
                    final[label] = outcome
                    continue
                attempt = attempts[label]
                if attempt <= retries and source_replayable(shards[label]):
                    _LOGGER.warning(
                        "shard %r attempt %d failed, retrying: %s",
                        label,
                        attempt,
                        outcome.error,
                    )
                    attempts[label] = attempt + 1
                    retry_next.append(label)
                else:
                    final[label] = outcome
            if retry_next and backoff > 0.0:
                # All shards in a retry wave share the same attempt number
                # (wave k holds exactly the shards that failed k-1 times).
                time.sleep(backoff * (attempts[retry_next[0]] - 1))
            wave = retry_next
    except FleetError:
        raise
    except Exception as exc:
        # Pool construction / task pickling failures: anything that escaped
        # both the in-worker marshalling and the per-future capture.
        raise FleetError(f"parallel fleet execution failed: {exc}") from exc
    results: dict[str, MonitorResult] = {}
    outcomes: dict[str, ShardOutcome] = {}
    first_failure: ShardOutcome | None = None
    for label in labels:
        worker_outcome = final[label]
        if worker_outcome.error is not None:
            outcomes[label] = ShardOutcome(
                label, "failed", attempts[label], error=worker_outcome.error
            )
            if first_failure is None:
                first_failure = outcomes[label]
            _LOGGER.error(
                "shard %r failed after %d attempt(s): %s",
                label,
                attempts[label],
                worker_outcome.error,
            )
            continue
        outcomes[label] = ShardOutcome(label, "ok", attempts[label])
        results[label] = MonitorResult(
            decisions=worker_outcome.decisions,
            report=worker_outcome.report,
            model=model,
            recorded_indices=worker_outcome.recorded_indices,
            reference_window_count=0,
            detector_stats=worker_outcome.detector_stats,
        )
    if (
        first_failure is not None
        and monitor_config.shard_failure_policy == "abort"
    ):
        raise FleetError(
            f"shard {first_failure.label!r} failed in a worker process: "
            f"{first_failure.error}"
        )
    return results, outcomes, tuple(diagnostics)
