"""Process-parallel execution backend for the sharded monitoring fleet.

The serial :class:`~repro.analysis.fleet.ShardedTraceMonitor` interleaves
every shard in one Python thread, so adding streams adds wall-clock time
almost linearly.  This module moves whole shards to worker processes:

* the fitted :class:`~repro.analysis.model.ReferenceModel` is pickled **once**
  and shipped to each worker at pool start-up (the model drops its
  identity-keyed projection cache on pickling and is strictly read-only
  afterwards — workers never write to it);
* each shard is one unit of work: the worker clones the fleet's base
  event-type registry, builds its own detector and recorder (recorders are
  worker-local by construction — they refuse to pickle), and drives the
  shard's windows through the exact same
  :func:`~repro.analysis.monitor.score_and_record_batch` plane the serial
  fleet uses;
* per-shard outcomes are marshalled back as plain picklable pieces
  (decisions, report, recorded indices, detector counters) and merged in
  **submission order**, so the resulting
  :class:`~repro.analysis.fleet.FleetResult` is bit-identical to the serial
  fleet's regardless of which worker finished first (the PR 2 equivalence
  suite runs against both backends).

Failure propagation: a worker exception is caught inside the worker, carried
back as data and re-raised in the parent as :class:`~repro.errors.FleetError`
naming the failing shard — never a hang, and never a lost traceback.  All
shards run to completion (closing their output files) before the error is
raised, so a single bad stream cannot leave sibling recordings truncated.

The one semantic difference from the serial backend: shard window iterables
are materialised in the parent before submission (workers must be able to
see them), so the parallel path trades memory proportional to the fleet for
multi-core scaling.  ``MonitorConfig.max_active_shards`` does not apply —
at most ``fleet_workers`` shards are in flight at any moment.

Window transport
----------------
Scoring a window costs far less CPU than pickling its events (the batch
plane reduced per-window compute to a few microseconds, while a
``TraceWindow`` of a few hundred events costs milliseconds to serialise),
so shipping windows through the pool's pickle queue would make the parallel
fleet slower than the serial one at any core count.  On platforms with the
``fork`` start method the materialised shard windows are therefore
**inherited**: the parent parks them in a module global, pins a fork
context, and the work order carries only the shard label — the bulk data
crosses the process boundary through copy-on-write fork memory at zero
serialisation cost.  Where fork is unavailable the windows travel inside
the (pickled) work order instead; both transports are exercised by the
equivalence suite and produce bit-identical results.
"""

from __future__ import annotations

import multiprocessing
import pickle
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from ..config import DetectorConfig, MonitorConfig
from ..errors import FleetError
from ..logging_util import get_logger
from ..trace.columns import TraceColumns
from ..trace.stream import ColumnarWindowSource
from ..trace.window import TraceWindow
from .detector import WindowDecision
from .model import ReferenceModel
from .monitor import (
    MonitorResult,
    build_shard_pipeline,
    detector_stats_snapshot,
    score_and_record_batch,
    shard_batches,
    shard_output_path,
)
from .recorder import RecorderReport

__all__ = ["fork_transport_available", "monitor_shards_parallel"]

_LOGGER = get_logger("analysis.parallel")


@dataclass(frozen=True)
class _WorkerState:
    """Read-only context shipped to every worker once, at pool start-up."""

    model: ReferenceModel
    detector_config: DetectorConfig
    monitor_config: MonitorConfig
    registry_names: tuple[str, ...]


@dataclass(frozen=True)
class _ShardTask:
    """One shard's work order (everything here must pickle cheaply).

    ``windows`` is ``None`` when the shard's window source travels via fork
    inheritance (:data:`_SHARD_WINDOWS`) instead of the pickle queue.
    Columnar sources (:class:`~repro.trace.columns.TraceColumns` /
    :class:`~repro.trace.stream.ColumnarWindowSource`) are flat arrays plus
    one raw buffer, cheap enough to pickle that spawn-only platforms lose
    little to the queue.
    """

    label: str
    windows: (
        tuple[TraceWindow, ...] | TraceColumns | ColumnarWindowSource | None
    )
    output_path: Path | None
    keep_events: bool


@dataclass
class _ShardOutcome:
    """Picklable result of one shard run, model deliberately excluded.

    The parent re-attaches the shared model when assembling the
    :class:`MonitorResult`, so the (large) model never travels back through
    the result queue N times.
    """

    label: str
    decisions: list[WindowDecision] = field(default_factory=list)
    report: RecorderReport | None = None
    recorded_indices: list[int] = field(default_factory=list)
    detector_stats: dict[str, float] = field(default_factory=dict)
    error: str | None = None


#: Per-process worker context, set by :func:`_initialize_worker`.
_WORKER_STATE: _WorkerState | None = None

#: Fork-inheritance staging area: the parent parks every shard's
#: materialised window source (window tuple or columnar source) here
#: immediately before creating a fork-context pool, so the (forked) workers
#: read them from inherited copy-on-write memory instead of the pickle
#: queue.  Always reset to ``None`` in the parent once the pool is done.
_SHARD_WINDOWS: (
    dict[str, tuple[TraceWindow, ...] | TraceColumns | ColumnarWindowSource] | None
) = None


def fork_transport_available() -> bool:
    """Whether workers can inherit parent memory (fork start method).

    Deliberately keyed on the *configured default* start method rather than
    on fork being merely importable: on platforms where the default is
    spawn/forkserver (macOS, Windows, Linux from Python 3.14), forking from
    an arbitrary parent state is unsafe or unexpected, so the windows
    travel through the pickle queue instead.
    """
    return multiprocessing.get_start_method() == "fork"


def _initialize_worker(payload: bytes) -> None:
    """Unpickle the shared worker context exactly once per worker process.

    The payload is pickled explicitly in the parent (rather than relying on
    ``initargs`` marshalling) so the model's ``__getstate__`` runs under
    every multiprocessing start method — fork included — and each worker
    gets its own deserialised model instance instead of a copy-on-write
    alias of the parent's.
    """
    global _WORKER_STATE
    _WORKER_STATE = pickle.loads(payload)


def _run_shard(task: _ShardTask) -> _ShardOutcome:
    """Monitor one shard inside a worker process.

    Mirrors the serial fleet's per-shard pipeline exactly: cloned base
    registry, per-shard detector and recorder, ``score_and_record_batch``
    over ``batch_windows`` micro-batches.  Exceptions are marshalled back as
    data — raising across the pool boundary would lose the shard label and
    can hang brittle pool implementations on unpicklable exceptions.
    """
    state = _WORKER_STATE
    if state is None:
        return _ShardOutcome(
            label=task.label, error="worker process was never initialised"
        )
    try:
        if task.windows is not None:
            windows = task.windows
        elif _SHARD_WINDOWS is not None and task.label in _SHARD_WINDOWS:
            windows = _SHARD_WINDOWS[task.label]
        else:
            return _ShardOutcome(
                label=task.label,
                error="shard windows were neither pickled nor fork-inherited",
            )
        config = state.monitor_config
        registry, detector, recorder = build_shard_pipeline(
            state.model,
            state.detector_config,
            config,
            state.registry_names,
            output_path=task.output_path,
            keep_events=task.keep_events,
        )
        decisions: list[WindowDecision] = []
        try:
            for batch in shard_batches(windows, registry, config):
                decisions.extend(score_and_record_batch(detector, recorder, batch))
        finally:
            recorder.close()
        return _ShardOutcome(
            label=task.label,
            decisions=decisions,
            report=recorder.report(),
            recorded_indices=recorder.recorded_indices,
            detector_stats=detector_stats_snapshot(detector),
        )
    except Exception as exc:
        return _ShardOutcome(
            label=task.label,
            error=f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
        )


def monitor_shards_parallel(
    shards: "Mapping[str, Iterable[TraceWindow] | TraceColumns | ColumnarWindowSource]",
    model: ReferenceModel,
    detector_config: DetectorConfig,
    monitor_config: MonitorConfig,
    registry_names: Sequence[str],
    output_dir: str | Path | None = None,
    keep_events: bool = False,
) -> dict[str, MonitorResult]:
    """Run every shard in a process pool; results keyed in submission order.

    The caller (:meth:`ShardedTraceMonitor.monitor_shards`) has already
    validated the model and label uniqueness.  Raises :class:`FleetError`
    naming the first failing shard (in submission order) after every shard
    has finished and closed its output file.
    """
    global _SHARD_WINDOWS
    labels = list(shards)
    use_fork = fork_transport_available()
    materialised = {
        label: (
            source
            if isinstance(source, (TraceColumns, ColumnarWindowSource))
            else tuple(source)
        )
        for label, source in shards.items()
    }
    tasks = []
    for label in labels:
        output_path = (
            shard_output_path(output_dir, label, monitor_config)
            if output_dir is not None
            else None
        )
        tasks.append(
            _ShardTask(
                label,
                None if use_fork else materialised[label],
                output_path,
                keep_events,
            )
        )
    workers = max(1, min(monitor_config.fleet_workers, len(tasks)))
    _LOGGER.info(
        "parallel fleet: %d shards across %d worker processes (%s transport)",
        len(tasks),
        workers,
        "fork" if use_fork else "pickle",
    )
    context = multiprocessing.get_context("fork") if use_fork else None
    outcomes: dict[str, _ShardOutcome] = {}
    try:
        payload = pickle.dumps(
            _WorkerState(
                model, detector_config, monitor_config, tuple(registry_names)
            ),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        if use_fork:
            # Workers fork at first submission, inheriting this snapshot.
            _SHARD_WINDOWS = materialised
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_initialize_worker,
            initargs=(payload,),
        ) as pool:
            futures = [(task.label, pool.submit(_run_shard, task)) for task in tasks]
            for label, future in futures:
                outcomes[label] = future.result()
    except FleetError:
        raise
    except Exception as exc:
        # BrokenProcessPool, pickling failures of a result, pool start-up
        # errors: anything that escaped the in-worker marshalling.
        raise FleetError(f"parallel fleet execution failed: {exc}") from exc
    finally:
        _SHARD_WINDOWS = None
    for label in labels:
        outcome = outcomes[label]
        if outcome.error is not None:
            raise FleetError(
                f"shard {label!r} failed in a worker process: {outcome.error}"
            )
    return {
        label: MonitorResult(
            decisions=outcomes[label].decisions,
            report=outcomes[label].report,
            model=model,
            recorded_indices=outcomes[label].recorded_indices,
            reference_window_count=0,
            detector_stats=outcomes[label].detector_stats,
        )
        for label in labels
    }
