"""k-nearest-neighbour search used by the Local Outlier Factor.

Four interchangeable indexes are provided behind the :class:`KnnIndex`
interface:

* :class:`BruteForceKnn` — vectorised exhaustive search (numpy); exact, no
  build cost, and in practice the fastest option below a few thousand
  reference points;
* :class:`KdTreeKnn` — a from-scratch k-d tree; exact as well, provided as
  an independent implementation the tests cross-check the brute-force
  results against;
* :class:`GridSimplexKnn` — a grid hash over the probability simplex:
  reference pmf vectors are bucketed by quantised coordinates along the
  highest-spread axes and queries search expanding shells of neighbouring
  buckets until a provable distance bound guarantees no closer point
  remains.  Sublinear per query on clustered reference sets;
* :class:`BallTreeKnn` — a blocked ball tree: the reference set is split
  into leaf blocks with precomputed centroids and covering radii, and a
  query scans blocks in lower-bound order with vectorised per-block
  pruning.  Sublinear per query, robust to how the mass spreads over the
  simplex.

All return *distances to* and *indices of* the ``k`` nearest points using
the Euclidean metric on pmf probability vectors (the metric LOF's authors
use; the reference points live on the probability simplex so Euclidean and
cosine orderings are nearly identical there).

Determinism is the contract across backends:

* candidate distances are always computed with the exact same floating-point
  expression (the cdist-style ``|q|^2 - 2 q.p + |p|^2`` expansion with a
  fixed-order einsum reduction), so a distance never depends on *which*
  backend produced it or which candidate set it was computed in;
* ties are broken by ascending reference index — the ``k`` returned
  neighbours are the lexicographic minimum under ``(distance, index)`` —
  so duplicated reference points yield the same neighbour set everywhere;
* :meth:`KnnIndex.add_points` grows a fitted index incrementally and is
  required to answer every query exactly as a from-scratch rebuild over the
  combined point set would.

Backends are selected by name through :func:`make_index`; ``"auto"`` picks
brute force below :data:`AUTO_CROSSOVER_POINTS` reference points (where the
exhaustive scan's perfect vectorisation wins) and the blocked ball tree
above it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import ModelError

__all__ = [
    "KnnIndex",
    "BruteForceKnn",
    "KdTreeKnn",
    "GridSimplexKnn",
    "BallTreeKnn",
    "KNN_BACKENDS",
    "AUTO_CROSSOVER_POINTS",
    "resolve_backend",
    "make_index",
]

#: Names of the concrete index implementations (``"auto"`` resolves to one
#: of these through :func:`resolve_backend`).
KNN_BACKENDS = ("brute", "kdtree", "grid", "balltree")

#: Reference size below which ``"auto"`` keeps the brute-force scan: under a
#: few thousand points the exhaustive blocked distance matrix is fully
#: vectorised and beats any per-query traversal overhead.
AUTO_CROSSOVER_POINTS = 8192

#: Relative safety margin applied to pruning *bounds* (never to returned
#: distances): a bound is shrunk by this factor before it is allowed to
#: prune, so floating-point slack in the bound arithmetic can never discard
#: a point the exact arithmetic would keep.
_BOUND_MARGIN = 1e-9

#: Absolute slack subtracted from *squared* pruning bounds.  The canonical
#: expansion ``|q|^2 - 2 q.p + |p|^2`` cancels catastrophically for nearly
#: coincident points — a pair separated by ~1e-16 can come out at exactly
#: 0.0 — so a geometric bound may exceed a computed distance by up to a few
#: ulps of the squared norms (~1e-15 on the simplex).  Every prune therefore
#: compares squared quantities and forgives this much; it only weakens
#: pruning for k-th distances below ~3e-7, which never matters.
_BOUND_SLACK_SQ = 1e-13


def _validate_points(points: np.ndarray) -> np.ndarray:
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ModelError(f"points must be a 2-D array, got shape {points.shape}")
    if len(points) == 0:
        raise ModelError("cannot build a k-NN index over zero points")
    if not np.all(np.isfinite(points)):
        raise ModelError("points must be finite")
    return points


def resolve_backend(kind: str, n_points: int) -> str:
    """Resolve a backend name (possibly ``"auto"``) to a concrete backend.

    ``"auto"`` picks ``"brute"`` below :data:`AUTO_CROSSOVER_POINTS` points
    and ``"balltree"`` at or above it.
    """
    if kind == "auto":
        return "brute" if n_points < AUTO_CROSSOVER_POINTS else "balltree"
    if kind not in KNN_BACKENDS:
        raise ModelError(
            f"unknown k-NN backend: {kind!r} (expected one of "
            f"{', '.join(KNN_BACKENDS)} or 'auto')"
        )
    return kind


def make_index(kind: str, points: np.ndarray) -> "KnnIndex":
    """Build the k-NN index named ``kind`` (``"auto"`` resolves by size)."""
    points = _validate_points(points)
    resolved = resolve_backend(kind, len(points))
    if resolved == "brute":
        return BruteForceKnn(points)
    if resolved == "kdtree":
        return KdTreeKnn(points)
    if resolved == "grid":
        return GridSimplexKnn(points)
    return BallTreeKnn(points)


def _tie_safe_topk(distances: np.ndarray, k: int) -> np.ndarray:
    """Per-row column indices of the ``k`` nearest, ties by ascending index.

    The selected set of every row is the lexicographic minimum under
    ``(distance, column index)``.  A stable argsort handles the ``k >= n``
    case directly; otherwise an argpartition narrows each row to ``k``
    candidates and the rare rows where equal distances straddle the ``k``
    boundary (argpartition is arbitrary about which of them it keeps) are
    repaired with a full stable sort.
    """
    n = distances.shape[1]
    if k >= n:
        return np.argsort(distances, axis=1, kind="stable")
    nearest = np.argpartition(distances, k - 1, axis=1)[:, :k]
    # Ascending column order first, so the stable distance sort below breaks
    # ties inside the selected set by ascending index.
    nearest.sort(axis=1)
    nearest_distances = np.take_along_axis(distances, nearest, axis=1)
    suborder = np.argsort(nearest_distances, axis=1, kind="stable")
    order = np.take_along_axis(nearest, suborder, axis=1)
    # Boundary repair: if the k-th distance also occurs outside the selected
    # set, the lowest-index ties must win.
    kth = np.take_along_axis(distances, order[:, -1:], axis=1)
    full_ties = (distances == kth).sum(axis=1)
    kept_ties = (np.take_along_axis(distances, order, axis=1) == kth).sum(axis=1)
    for row in np.flatnonzero(full_ties != kept_ties):
        order[row] = np.argsort(distances[row], kind="stable")[:k]
    return order


def _select_k_sorted(
    distances: np.ndarray, indices: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """``k`` nearest of a 1-D candidate pool, ties by ascending index.

    Same selection semantics as :func:`_tie_safe_topk` but for the gathered
    per-query pools of the sublinear backends: an argpartition narrows the
    pool to ``k``, a lexsort canonicalises just those, and the rare pools
    where equal distances straddle the boundary fall back to a full lexsort.
    """
    if k < len(distances):
        part = np.argpartition(distances, k - 1)[:k]
        kth_value = distances[part].max()
        if np.count_nonzero(distances[part] == kth_value) == np.count_nonzero(
            distances == kth_value
        ):
            inner = np.lexsort((indices[part], distances[part]))
            chosen = part[inner]
            return distances[chosen], indices[chosen]
    chosen = np.lexsort((indices, distances))[:k]
    return distances[chosen], indices[chosen]


class KnnIndex(ABC):
    """Interface of a k-nearest-neighbour index over a growable point set."""

    def __init__(self, points: np.ndarray) -> None:
        self.points = _validate_points(points)

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return len(self.points)

    @property
    def dimension(self) -> int:
        """Dimensionality of the indexed points."""
        return self.points.shape[1]

    def query(self, point: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(distances, indices)`` of the ``k`` nearest points.

        Distances are sorted in non-decreasing order, equal distances by
        ascending point index.  ``k`` is clamped to the number of indexed
        points.
        """
        point, k = self._check_query(point, k)
        distances, indices = self.query_many(point[None, :], k)
        return distances[0], indices[0]

    @abstractmethod
    def query_many(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`query` over several query points, one row per query."""

    def add_points(self, new_points: np.ndarray) -> None:
        """Absorb additional reference points into the fitted index.

        The new points receive indices ``n_points .. n_points + len - 1`` in
        row order.  Every subsequent query answers exactly as a from-scratch
        rebuild over the combined point set would (same distances, same
        neighbour indices, same tie-breaking) — that equivalence is what the
        online-adaptation tests lock down.
        """
        new_points = np.atleast_2d(np.asarray(new_points, dtype=float))
        if new_points.ndim != 2 or new_points.shape[1] != self.dimension:
            raise ModelError(
                f"new points shape {new_points.shape} does not match index "
                f"dimension {self.dimension}"
            )
        if len(new_points) == 0:
            return
        if not np.all(np.isfinite(new_points)):
            raise ModelError("points must be finite")
        n_old = self.n_points
        self.points = np.vstack([self.points, new_points])
        self._absorb_points(n_old)

    @abstractmethod
    def _absorb_points(self, n_old: int) -> None:
        """Update internal structures after ``self.points`` grew past ``n_old``."""

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def _check_queries(self, queries: np.ndarray, k: int) -> np.ndarray:
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        if queries.ndim != 2 or queries.shape[1] != self.dimension:
            raise ModelError(
                f"query matrix shape {queries.shape} does not match index "
                f"dimension {self.dimension}"
            )
        if k <= 0:
            raise ModelError("k must be positive")
        return queries

    def _check_query(self, point: np.ndarray, k: int) -> tuple[np.ndarray, int]:
        point = np.asarray(point, dtype=float).reshape(-1)
        if len(point) != self.dimension:
            raise ModelError(
                f"query dimension {len(point)} does not match index dimension {self.dimension}"
            )
        if k <= 0:
            raise ModelError("k must be positive")
        return point, min(k, self.n_points)

    def _candidate_distances(
        self, query: np.ndarray, query_norm: float, indices: np.ndarray
    ) -> np.ndarray:
        """Canonical distances from one query to a gathered candidate set.

        Must stay bit-identical to the full-matrix expansion in
        :meth:`BruteForceKnn.query_many` for any candidate subset: the
        einsum contraction runs over the same fixed-length axis in the same
        order, and the per-element arithmetic is independent of which other
        candidates share the gather.  The cross-backend equivalence suite
        relies on this.
        """
        sq_norms = self._point_sq_norms()
        squared = (
            query_norm
            - 2.0 * np.einsum("d,nd->n", query, self.points[indices])
            + sq_norms[indices]
        )
        return np.sqrt(np.maximum(squared, 0.0))

    def _point_sq_norms(self) -> np.ndarray:
        norms = getattr(self, "_sq_norms", None)
        if norms is None or len(norms) != self.n_points:
            norms = np.einsum("ij,ij->i", self.points, self.points)
            self._sq_norms = norms
        return norms

    def _extend_sq_norms(self, n_old: int) -> None:
        norms = getattr(self, "_sq_norms", None)
        if norms is None:
            return
        fresh = self.points[n_old:]
        self._sq_norms = np.concatenate(
            [norms, np.einsum("ij,ij->i", fresh, fresh)]
        )


class BruteForceKnn(KnnIndex):
    """Exact k-NN by exhaustive vectorised distance computation."""

    #: Cap on the number of floats materialised per distance block, bounding
    #: query_many's peak memory at ~64 MB regardless of the query count.
    _BLOCK_ELEMENTS = 8_000_000

    def __init__(self, points: np.ndarray) -> None:
        super().__init__(points)
        self._sq_norms: np.ndarray | None = None

    def query_many(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised multi-query search over a blocked full distance matrix.

        Each block computes the full query-to-point distance matrix with the
        cdist-style expansion ``|q - p|^2 = |q|^2 - 2 q.p + |p|^2`` and
        selects the ``k`` nearest per row with a tie-safe partition + stable
        sort (equal distances resolve to ascending point index) — no
        per-query Python.  The cross term is an einsum rather than a BLAS
        matmul on purpose: BLAS picks different accumulation orders for
        different row counts, which would make a point's distances depend on
        its batch mates; einsum's fixed reduction order keeps every row
        bit-identical however the queries are batched (the batch/serial and
        cross-backend equivalence tests rely on it).
        """
        queries = self._check_queries(queries, k)
        n_queries = len(queries)
        k = min(k, self.n_points)
        out_distances = np.empty((n_queries, k))
        out_indices = np.empty((n_queries, k), dtype=int)
        sq_norms = self._point_sq_norms()
        block = max(1, self._BLOCK_ELEMENTS // max(1, self.n_points))
        for start in range(0, n_queries, block):
            chunk = queries[start:start + block]
            query_norms = np.einsum("ij,ij->i", chunk, chunk)
            squared = (
                query_norms[:, None]
                - 2.0 * np.einsum("qd,nd->qn", chunk, self.points)
                + sq_norms[None, :]
            )
            # The expansion can go slightly negative through cancellation.
            distances = np.sqrt(np.maximum(squared, 0.0))
            order = _tie_safe_topk(distances, k)
            out_distances[start:start + block] = np.take_along_axis(
                distances, order, axis=1
            )
            out_indices[start:start + block] = order
        return out_distances, out_indices

    def _absorb_points(self, n_old: int) -> None:
        self._extend_sq_norms(n_old)


@dataclass
class _KdNode:
    """A node of the k-d tree (leaf when ``indices`` is set)."""

    axis: int = -1
    split: float = 0.0
    left: "_KdNode | None" = None
    right: "_KdNode | None" = None
    indices: np.ndarray | None = None


class KdTreeKnn(KnnIndex):
    """Exact k-NN using a median-split k-d tree with leaf buckets."""

    def __init__(self, points: np.ndarray, leaf_size: int = 16) -> None:
        super().__init__(points)
        if leaf_size <= 0:
            raise ModelError("leaf_size must be positive")
        self.leaf_size = int(leaf_size)
        all_indices = np.arange(self.n_points)
        self._root = self._build(all_indices, depth=0)

    def _build(self, indices: np.ndarray, depth: int) -> _KdNode:
        if len(indices) <= self.leaf_size:
            return _KdNode(indices=indices)
        subset = self.points[indices]
        # Split along the axis with the largest spread; this keeps the tree
        # useful even though pmf vectors concentrate on few dimensions.
        spreads = subset.max(axis=0) - subset.min(axis=0)
        axis = int(np.argmax(spreads))
        if spreads[axis] <= 0:
            # All points identical along every axis: make a leaf to avoid
            # infinite recursion on duplicated points.
            return _KdNode(indices=indices)
        values = subset[:, axis]
        split = float(np.median(values))
        left_mask = values <= split
        # Guard against degenerate splits where the median equals the max.
        if left_mask.all() or not left_mask.any():
            left_mask = values < split
            if left_mask.all() or not left_mask.any():
                return _KdNode(indices=indices)
        node = _KdNode(axis=axis, split=split)
        node.left = self._build(indices[left_mask], depth + 1)
        node.right = self._build(indices[~left_mask], depth + 1)
        return node

    def query(self, point: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        point, k = self._check_query(point, k)
        # Same einsum form the batched paths use for query norms, so the
        # accumulated value (and therefore every distance) is bit-identical.
        point_norm = float(np.einsum("ij,ij->i", point[None, :], point[None, :])[0])
        # best: list of (distance, index) kept sorted, at most k entries.
        best_distances = np.full(k, np.inf)
        best_indices = np.full(k, -1, dtype=int)

        def _consider(indices: np.ndarray) -> None:
            nonlocal best_distances, best_indices
            # The shared canonical distance expression keeps leaf distances
            # bit-identical to the other backends' results.
            distances = self._candidate_distances(point, point_norm, indices)
            all_d = np.concatenate([best_distances, distances])
            all_i = np.concatenate([best_indices, indices])
            # Sort by distance, equal distances by ascending point index, so
            # duplicated points resolve identically to the other backends.
            order = np.lexsort((all_i, all_d))[:k]
            best_distances = all_d[order]
            best_indices = all_i[order]

        def _search(node: _KdNode) -> None:
            if node.indices is not None:
                _consider(node.indices)
                return
            value = point[node.axis]
            first, second = (
                (node.left, node.right) if value <= node.split else (node.right, node.left)
            )
            if first is not None:
                _search(first)
            # Only skip the far branch if the splitting plane is provably
            # further than the current k-th best distance; compared in
            # squared space with the slack that covers the canonical
            # expansion's cancellation error.
            plane_sq = (value - node.split) ** 2 * (1.0 - _BOUND_MARGIN)
            if second is not None and (
                plane_sq - _BOUND_SLACK_SQ <= best_distances[-1] ** 2
            ):
                _search(second)

        _search(self._root)
        valid = best_indices >= 0
        return best_distances[valid], best_indices[valid]

    def query_many(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        queries = self._check_queries(queries, k)
        distances = []
        indices = []
        for query in queries:
            d, i = self.query(query, k)
            distances.append(d)
            indices.append(i)
        return np.asarray(distances), np.asarray(indices)

    def _absorb_points(self, n_old: int) -> None:
        # A k-d tree has no cheap in-place insertion that preserves the
        # median-split structure; rebuilding from the combined point set is
        # exactly the from-scratch state, which is the contract.
        self._root = self._build(np.arange(self.n_points), depth=0)


class GridSimplexKnn(KnnIndex):
    """Grid-hashed exact k-NN over the probability simplex.

    Reference points are bucketed by their quantised coordinates along the
    ``projection_dims`` highest-spread axes (pmf vectors concentrate their
    variance on few event types, so a low-dimensional projection separates
    the behaviour clusters well).  Cell widths are scaled to the observed
    per-axis spread — pmf mass rarely covers the whole [0, 1] range, and an
    unscaled grid would collapse every cluster into a handful of cells.

    A query ranks the occupied cells by Chebyshev shell distance from its
    own cell — one vectorised pass over the occupied-cell table, never an
    enumeration of the exponentially many neighbouring offsets — and scans
    them in two phases: nearest cells until ``k`` candidates seed the
    running k-th distance, then one bulk gather of every remaining cell the
    distance bound cannot rule out.  The bound is provable: a point in a
    cell ``s`` shells away differs by at least ``s`` cells along some
    projected axis, i.e. by more than ``(s - 1) * width`` in that coordinate
    alone, so its full-space distance is at least ``(s - 1) * min_width``.

    Candidate distances use the shared canonical expansion, and the final
    ``k`` are the lexicographic minimum under ``(distance, index)``, so the
    results are bit-identical to :class:`BruteForceKnn` — only the number of
    points *examined* shrinks.  :meth:`add_points` hashes new points into
    their buckets directly, which reproduces the rebuild state exactly
    because buckets keep ascending insertion order.
    """

    def __init__(
        self,
        points: np.ndarray,
        resolution: int | None = None,
        projection_dims: int | None = None,
    ) -> None:
        super().__init__(points)
        if projection_dims is None:
            projection_dims = min(self.dimension, 3)
        projection_dims = int(projection_dims)
        if not 1 <= projection_dims <= self.dimension:
            raise ModelError(
                "projection_dims must be between 1 and the point dimension"
            )
        spreads = self.points.max(axis=0) - self.points.min(axis=0)
        # Highest-spread axes carry the discriminating mass; stable argsort
        # of the negated spreads keeps the axis choice deterministic.
        ranked = np.argsort(-spreads, kind="stable")[:projection_dims]
        self._axes = np.sort(ranked)
        if resolution is None:
            # Aim at a couple dozen points per occupied cell; finer cells
            # tighten the rectangle bound (less quantisation slack) at the
            # cost of a larger occupied-cell table to rank per query.
            target_cells = max(1.0, self.n_points / 16.0)
            resolution = int(round(target_cells ** (1.0 / projection_dims)))
            resolution = max(2, min(40, resolution))
        if resolution < 1:
            raise ModelError("resolution must be >= 1")
        self.resolution = int(resolution)
        self._lows = self.points[:, self._axes].min(axis=0)
        axis_spreads = self.points[:, self._axes].max(axis=0) - self._lows
        # Zero-spread axes put everything in one cell; width 1.0 keeps the
        # transform finite (and, as pmf coordinates live in [0, 1], keeps
        # the per-axis separation a valid lower bound).
        self._widths = np.where(
            axis_spreads > 0, axis_spreads / self.resolution, 1.0
        )
        self._buckets: dict[tuple[int, ...], np.ndarray] = {}
        self._insert(self.points, 0)

    # ------------------------------------------------------------------ #
    # Bucketing
    # ------------------------------------------------------------------ #
    def _cells(self, points: np.ndarray) -> np.ndarray:
        scaled = (points[:, self._axes] - self._lows) / self._widths
        return np.floor(scaled).astype(np.int64)

    def _insert(self, points: np.ndarray, base_index: int) -> None:
        grouped: dict[tuple[int, ...], list[int]] = {}
        for offset, cell in enumerate(map(tuple, self._cells(points).tolist())):
            grouped.setdefault(cell, []).append(base_index + offset)
        for cell, rows in grouped.items():
            fresh = np.asarray(rows, dtype=np.int64)
            held = self._buckets.get(cell)
            self._buckets[cell] = (
                fresh if held is None else np.concatenate([held, fresh])
            )
        # Flat occupied-cell table for the vectorised per-query shell
        # ranking (dict iteration order is insertion order, deterministic).
        self._cell_table = np.asarray(list(self._buckets.keys()), dtype=np.int64)
        self._cell_buckets = list(self._buckets.values())

    def _absorb_points(self, n_old: int) -> None:
        self._extend_sq_norms(n_old)
        self._insert(self.points[n_old:], n_old)

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def query_many(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        queries = self._check_queries(queries, k)
        k = min(k, self.n_points)
        n_queries = len(queries)
        out_distances = np.empty((n_queries, k))
        out_indices = np.empty((n_queries, k), dtype=int)
        query_norms = np.einsum("ij,ij->i", queries, queries)
        query_cells = self._cells(queries)
        buckets = self._cell_buckets
        bucket_sizes = np.asarray([len(bucket) for bucket in buckets])
        for row in range(n_queries):
            query = queries[row]
            # Rectangle lower bound of every occupied cell, vectorised: along
            # each axis a point whose cell differs by c is more than
            # (c - 1) * width away in that coordinate alone, and the per-axis
            # separations combine as a Euclidean sum of squares.
            cell_deltas = np.abs(self._cell_table - query_cells[row])
            separations = np.maximum(cell_deltas - 1, 0) * self._widths
            bounds_sq = np.einsum("ij,ij->i", separations, separations)
            order = np.argsort(bounds_sq, kind="stable")
            # Phase one: cells in bound order until k candidates seed the
            # running k-th distance (the home neighbourhood has bound zero).
            cumulative = np.cumsum(bucket_sizes[order])
            take = int(np.searchsorted(cumulative, k)) + 1
            take = min(take, len(order))
            indices = np.concatenate([buckets[cell] for cell in order[:take]])
            distances = self._candidate_distances(query, query_norms[row], indices)
            if len(distances) >= k:
                kth = np.partition(distances, k - 1)[k - 1]
            else:
                kth = np.inf
            # Phase two: one bulk gather of every unvisited cell the bound
            # cannot rule out.  The margin and slack absorb the quantisation
            # and cancellation ulps so an exact tie can never be dropped.
            rest = order[take:]
            if len(rest):
                viable = (
                    bounds_sq[rest] * (1.0 - _BOUND_MARGIN) - _BOUND_SLACK_SQ
                    <= kth * kth
                )
                rest = rest[viable]
            if len(rest):
                more = np.concatenate([buckets[cell] for cell in rest])
                indices = np.concatenate([indices, more])
                distances = np.concatenate(
                    [
                        distances,
                        self._candidate_distances(query, query_norms[row], more),
                    ]
                )
            out_distances[row], out_indices[row] = _select_k_sorted(
                distances, indices, k
            )
        return out_distances, out_indices


class BallTreeKnn(KnnIndex):
    """Blocked ball tree: leaf blocks with vectorised per-block pruning.

    The reference set is recursively median-split (highest-spread axis, as
    the k-d tree does) into leaf blocks of ``leaf_size`` points; each block
    stores its centroid and the covering radius.  A batched query computes
    every query-to-centroid distance in one vectorised pass, derives the
    per-block lower bound ``max(|q - c| - r, 0)``, and scans blocks in
    ascending bound order until the bound of the next block exceeds the
    running k-th distance — each scanned block is one vectorised candidate
    gather, never a per-point loop.

    Incremental :meth:`add_points` appends to a *tail* of points that is
    always scanned exhaustively (so results match a rebuild exactly) and
    re-splits the whole set once the tail outgrows
    ``tail_rebuild_fraction`` of the tree, keeping queries sublinear under
    sustained online adaptation.
    """

    def __init__(
        self,
        points: np.ndarray,
        leaf_size: int = 64,
        tail_rebuild_fraction: float = 0.25,
    ) -> None:
        super().__init__(points)
        if leaf_size <= 0:
            raise ModelError("leaf_size must be positive")
        if tail_rebuild_fraction <= 0:
            raise ModelError("tail_rebuild_fraction must be positive")
        self.leaf_size = int(leaf_size)
        self.tail_rebuild_fraction = float(tail_rebuild_fraction)
        self._rebuild_blocks()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _rebuild_blocks(self) -> None:
        blocks: list[np.ndarray] = []
        stack = [np.arange(self.n_points)]
        while stack:
            indices = stack.pop()
            if len(indices) <= self.leaf_size:
                blocks.append(indices)
                continue
            subset = self.points[indices]
            spreads = subset.max(axis=0) - subset.min(axis=0)
            axis = int(np.argmax(spreads))
            if spreads[axis] <= 0:
                blocks.append(indices)
                continue
            values = subset[:, axis]
            split = float(np.median(values))
            left = values <= split
            if left.all() or not left.any():
                left = values < split
                if left.all() or not left.any():
                    blocks.append(indices)
                    continue
            stack.append(indices[~left])
            stack.append(indices[left])
        centroids = np.stack([self.points[block].mean(axis=0) for block in blocks])
        radii = np.empty(len(blocks))
        for position, block in enumerate(blocks):
            deltas = self.points[block] - centroids[position]
            radii[position] = np.sqrt(
                np.einsum("ij,ij->i", deltas, deltas)
            ).max()
        self._blocks = blocks
        self._centroids = centroids
        # Pad the covering radii by a hair so floating-point slack in the
        # radius computation can never tighten a bound below a true distance.
        self._radii = radii * (1.0 + _BOUND_MARGIN) + 1e-15
        self._centroid_sq_norms = np.einsum("ij,ij->i", centroids, centroids)
        self._tail_start = self.n_points

    def _absorb_points(self, n_old: int) -> None:
        self._extend_sq_norms(n_old)
        tail_length = self.n_points - self._tail_start
        tree_size = max(self._tail_start, 1)
        if tail_length > max(self.leaf_size, self.tail_rebuild_fraction * tree_size):
            self._rebuild_blocks()

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def query_many(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        queries = self._check_queries(queries, k)
        k = min(k, self.n_points)
        n_queries = len(queries)
        out_distances = np.empty((n_queries, k))
        out_indices = np.empty((n_queries, k), dtype=int)
        query_norms = np.einsum("ij,ij->i", queries, queries)
        # One vectorised bound computation for every (query, block) pair.
        centroid_sq = (
            query_norms[:, None]
            - 2.0 * np.einsum("qd,bd->qb", queries, self._centroids)
            + self._centroid_sq_norms[None, :]
        )
        centroid_distances = np.sqrt(np.maximum(centroid_sq, 0.0))
        bounds = np.maximum(centroid_distances - self._radii[None, :], 0.0) * (
            1.0 - _BOUND_MARGIN
        )
        # Phase-one seeding goes by *centroid* distance — the block whose
        # centre is closest almost surely holds true near neighbours, which
        # makes the seeded k-th distance tight.  (The block with the
        # smallest lower *bound* may be a huge-radius block whose points are
        # all far away, which would seed a useless bound.)
        seed_order = np.argsort(centroid_distances, axis=1, kind="stable")
        block_sizes = np.asarray([len(block) for block in self._blocks])
        tail = np.arange(self._tail_start, self.n_points)
        for row in range(n_queries):
            query = queries[row]
            query_norm = query_norms[row]
            order = seed_order[row]
            # Phase one: the tail (always scanned — that is what makes
            # incremental adds exact) plus the closest-centroid blocks until
            # k candidates seed the running k-th distance.
            cumulative = tail.size + np.cumsum(block_sizes[order])
            take = int(np.searchsorted(cumulative, k)) + 1
            take = min(take, len(order))
            taken = order[:take]
            chunks = [self._blocks[position] for position in taken]
            if tail.size:
                chunks.append(tail)
            indices = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
            distances = self._candidate_distances(query, query_norm, indices)
            if len(distances) >= k:
                kth = np.partition(distances, k - 1)[k - 1]
            else:
                kth = np.inf
            # Phase two: one bulk gather of every remaining block whose
            # lower bound cannot rule it out.
            survives = bounds[row] ** 2 - _BOUND_SLACK_SQ <= kth * kth
            survives[taken] = False
            rest = np.flatnonzero(survives)
            if len(rest):
                more = np.concatenate([self._blocks[position] for position in rest])
                indices = np.concatenate([indices, more])
                distances = np.concatenate(
                    [distances, self._candidate_distances(query, query_norm, more)]
                )
            out_distances[row], out_indices[row] = _select_k_sorted(
                distances, indices, k
            )
        return out_distances, out_indices
