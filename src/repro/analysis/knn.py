"""k-nearest-neighbour search used by the Local Outlier Factor.

Two interchangeable indexes are provided behind the :class:`KnnIndex`
interface:

* :class:`BruteForceKnn` — vectorised exhaustive search (numpy); exact, no
  build cost, and in practice the fastest option for the dimensionalities
  (tens of event types) and model sizes (thousands of reference windows)
  this library deals with;
* :class:`KdTreeKnn` — a from-scratch k-d tree; exact as well, provided for
  larger reference models and as an independent implementation the tests
  cross-check the brute-force results against.

Both return *distances to* and *indices of* the ``k`` nearest points using
the Euclidean metric on pmf probability vectors (the metric LOF's authors
use; the reference points live on the probability simplex so Euclidean and
cosine orderings are nearly identical there).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..errors import ModelError

__all__ = ["KnnIndex", "BruteForceKnn", "KdTreeKnn"]


def _validate_points(points: np.ndarray) -> np.ndarray:
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ModelError(f"points must be a 2-D array, got shape {points.shape}")
    if len(points) == 0:
        raise ModelError("cannot build a k-NN index over zero points")
    if not np.all(np.isfinite(points)):
        raise ModelError("points must be finite")
    return points


class KnnIndex(ABC):
    """Interface of a k-nearest-neighbour index over a fixed point set."""

    def __init__(self, points: np.ndarray) -> None:
        self.points = _validate_points(points)

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return len(self.points)

    @property
    def dimension(self) -> int:
        """Dimensionality of the indexed points."""
        return self.points.shape[1]

    @abstractmethod
    def query(self, point: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(distances, indices)`` of the ``k`` nearest points.

        Distances are sorted in non-decreasing order.  ``k`` is clamped to
        the number of indexed points.
        """

    def query_many(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`query` over several query points, one row per query.

        The base implementation loops; :class:`BruteForceKnn` overrides it
        with a fully vectorised blocked distance-matrix computation.
        """
        queries = self._check_queries(queries, k)
        distances = []
        indices = []
        for query in queries:
            d, i = self.query(query, k)
            distances.append(d)
            indices.append(i)
        return np.asarray(distances), np.asarray(indices)

    def _check_queries(self, queries: np.ndarray, k: int) -> np.ndarray:
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        if queries.ndim != 2 or queries.shape[1] != self.dimension:
            raise ModelError(
                f"query matrix shape {queries.shape} does not match index "
                f"dimension {self.dimension}"
            )
        if k <= 0:
            raise ModelError("k must be positive")
        return queries

    def _check_query(self, point: np.ndarray, k: int) -> tuple[np.ndarray, int]:
        point = np.asarray(point, dtype=float).reshape(-1)
        if len(point) != self.dimension:
            raise ModelError(
                f"query dimension {len(point)} does not match index dimension {self.dimension}"
            )
        if k <= 0:
            raise ModelError("k must be positive")
        return point, min(k, self.n_points)


class BruteForceKnn(KnnIndex):
    """Exact k-NN by exhaustive vectorised distance computation."""

    #: Cap on the number of floats materialised per distance block, bounding
    #: query_many's peak memory at ~64 MB regardless of the query count.
    _BLOCK_ELEMENTS = 8_000_000

    def __init__(self, points: np.ndarray) -> None:
        super().__init__(points)
        self._sq_norms: np.ndarray | None = None

    def query(self, point: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        point, k = self._check_query(point, k)
        deltas = self.points - point
        distances = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
        if k >= len(distances):
            order = np.argsort(distances, kind="stable")
        else:
            nearest = np.argpartition(distances, k - 1)[:k]
            order = nearest[np.argsort(distances[nearest], kind="stable")]
        return distances[order], order

    def query_many(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised multi-query search over a blocked full distance matrix.

        Each block computes the full query-to-point distance matrix with the
        cdist-style expansion ``|q - p|^2 = |q|^2 - 2 q.p + |p|^2`` and
        selects the ``k`` nearest per row with the same argpartition +
        stable argsort sequence as :meth:`query` — no per-query Python.  The
        cross term is an einsum rather than a BLAS matmul on purpose: BLAS
        picks different accumulation orders for different row counts, which
        would make a point's distances depend on its batch mates; einsum's
        fixed reduction order keeps every row bit-identical however the
        queries are batched (the batch/serial equivalence tests rely on it).
        """
        queries = self._check_queries(queries, k)
        n_queries = len(queries)
        k = min(k, self.n_points)
        out_distances = np.empty((n_queries, k))
        out_indices = np.empty((n_queries, k), dtype=int)
        if self._sq_norms is None:
            self._sq_norms = np.einsum("ij,ij->i", self.points, self.points)
        block = max(1, self._BLOCK_ELEMENTS // max(1, self.n_points))
        for start in range(0, n_queries, block):
            chunk = queries[start:start + block]
            query_norms = np.einsum("ij,ij->i", chunk, chunk)
            squared = (
                query_norms[:, None]
                - 2.0 * np.einsum("qd,nd->qn", chunk, self.points)
                + self._sq_norms[None, :]
            )
            # The expansion can go slightly negative through cancellation.
            distances = np.sqrt(np.maximum(squared, 0.0))
            if k >= self.n_points:
                order = np.argsort(distances, axis=1, kind="stable")
            else:
                nearest = np.argpartition(distances, k - 1, axis=1)[:, :k]
                nearest_distances = np.take_along_axis(distances, nearest, axis=1)
                suborder = np.argsort(nearest_distances, axis=1, kind="stable")
                order = np.take_along_axis(nearest, suborder, axis=1)
            out_distances[start:start + block] = np.take_along_axis(
                distances, order, axis=1
            )
            out_indices[start:start + block] = order
        return out_distances, out_indices


@dataclass
class _KdNode:
    """A node of the k-d tree (leaf when ``indices`` is set)."""

    axis: int = -1
    split: float = 0.0
    left: "_KdNode | None" = None
    right: "_KdNode | None" = None
    indices: np.ndarray | None = None


class KdTreeKnn(KnnIndex):
    """Exact k-NN using a median-split k-d tree with leaf buckets."""

    def __init__(self, points: np.ndarray, leaf_size: int = 16) -> None:
        super().__init__(points)
        if leaf_size <= 0:
            raise ModelError("leaf_size must be positive")
        self.leaf_size = int(leaf_size)
        all_indices = np.arange(self.n_points)
        self._root = self._build(all_indices, depth=0)

    def _build(self, indices: np.ndarray, depth: int) -> _KdNode:
        if len(indices) <= self.leaf_size:
            return _KdNode(indices=indices)
        subset = self.points[indices]
        # Split along the axis with the largest spread; this keeps the tree
        # useful even though pmf vectors concentrate on few dimensions.
        spreads = subset.max(axis=0) - subset.min(axis=0)
        axis = int(np.argmax(spreads))
        if spreads[axis] <= 0:
            # All points identical along every axis: make a leaf to avoid
            # infinite recursion on duplicated points.
            return _KdNode(indices=indices)
        values = subset[:, axis]
        split = float(np.median(values))
        left_mask = values <= split
        # Guard against degenerate splits where the median equals the max.
        if left_mask.all() or not left_mask.any():
            left_mask = values < split
            if left_mask.all() or not left_mask.any():
                return _KdNode(indices=indices)
        node = _KdNode(axis=axis, split=split)
        node.left = self._build(indices[left_mask], depth + 1)
        node.right = self._build(indices[~left_mask], depth + 1)
        return node

    def query(self, point: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        point, k = self._check_query(point, k)
        # best: list of (distance, index) kept sorted, at most k entries.
        best_distances = np.full(k, np.inf)
        best_indices = np.full(k, -1, dtype=int)

        def _consider(indices: np.ndarray) -> None:
            nonlocal best_distances, best_indices
            deltas = self.points[indices] - point
            distances = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
            all_d = np.concatenate([best_distances, distances])
            all_i = np.concatenate([best_indices, indices])
            order = np.argsort(all_d, kind="stable")[:k]
            best_distances = all_d[order]
            best_indices = all_i[order]

        def _search(node: _KdNode) -> None:
            if node.indices is not None:
                _consider(node.indices)
                return
            value = point[node.axis]
            first, second = (
                (node.left, node.right) if value <= node.split else (node.right, node.left)
            )
            if first is not None:
                _search(first)
            # Only descend the far branch if the splitting plane is closer
            # than the current k-th best distance.
            if second is not None and abs(value - node.split) <= best_distances[-1]:
                _search(second)

        _search(self._root)
        valid = best_indices >= 0
        return best_distances[valid], best_indices[valid]
