"""Selective trace recording and size accounting.

The whole point of the approach is to write only the suspicious portions of
the trace to storage.  :class:`SelectiveTraceRecorder` receives every window
together with the detector's verdict, keeps byte-accurate accounting of what
the full trace would have weighed versus what was actually recorded, and can
optionally persist the recorded windows to a JSON-lines file.  An optional
pre/post *context* of non-anomalous windows can be recorded around each
anomaly so post-mortem analysis keeps some surrounding activity.

Recording used to dominate anomaly-heavy monitored runs because every
recorded window cost one Python write call per event.  The recorder now
batches its IO: recorded windows are encoded as one JSON-lines block
(:meth:`~repro.trace.codec.JsonTraceCodec.encode_events`) and accumulated in
a write buffer that is flushed to the file handle only every
``io_buffer_bytes`` bytes.  :meth:`SelectiveTraceRecorder.observe_batch` is
the batched entry point the monitor's vectorized plane drives; it replays
the exact per-window context semantics of :meth:`observe`, so batched and
serial recording are decision- and byte-identical.

:class:`FullTraceRecorder` is the trivial "record everything" baseline the
reduction factor is measured against.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Iterable, Sequence

from ..errors import RecorderError
from ..testing.faults import fault_point
from ..trace.codec import BinaryTraceCodec, JsonTraceCodec, encoded_trace_size
from ..trace.window import TraceWindow

__all__ = [
    "DEFAULT_IO_BUFFER_BYTES",
    "RecorderReport",
    "SelectiveTraceRecorder",
    "FullTraceRecorder",
    "partial_output_path",
]

#: Default size of the recorder's write buffer.  64 KiB keeps the flush
#: granularity close to a filesystem block while bounding buffered memory.
DEFAULT_IO_BUFFER_BYTES = 64 * 1024


def partial_output_path(path: Path) -> Path:
    """In-progress sibling of a recorder output path (``<name>.partial``).

    Recorders write here and atomically rename onto ``path`` only when
    :meth:`SelectiveTraceRecorder.close` completes — so a crashed writer
    can never leave a truncated file under the final name.  Exposed so the
    fleet can clean up after hard-killed workers.
    """
    return path.with_name(path.name + ".partial")


@dataclass(frozen=True)
class RecorderReport:
    """Summary of a recording session.

    Attributes
    ----------
    total_windows / total_events / total_bytes:
        What the complete trace contained (the "record everything" volume).
    recorded_windows / recorded_events / recorded_bytes:
        What was actually written to storage.
    """

    total_windows: int
    total_events: int
    total_bytes: int
    recorded_windows: int
    recorded_events: int
    recorded_bytes: int

    @property
    def reduction_factor(self) -> float:
        """How many times smaller the recorded trace is than the full trace.

        The paper reports a 14-fold reduction (418 MB recorded vs 5.9 GB
        full).  When nothing was recorded the factor is infinite; when the
        full trace is empty it is defined as 1.0.
        """
        if self.total_bytes == 0:
            return 1.0
        if self.recorded_bytes == 0:
            return float("inf")
        return self.total_bytes / self.recorded_bytes

    @property
    def recorded_fraction(self) -> float:
        """Fraction of bytes kept (0 when the full trace is empty)."""
        if self.total_bytes == 0:
            return 0.0
        return self.recorded_bytes / self.total_bytes

    def merged_with(self, other: "RecorderReport") -> "RecorderReport":
        """Field-wise sum of two reports (used by fleet aggregation)."""
        return RecorderReport(
            total_windows=self.total_windows + other.total_windows,
            total_events=self.total_events + other.total_events,
            total_bytes=self.total_bytes + other.total_bytes,
            recorded_windows=self.recorded_windows + other.recorded_windows,
            recorded_events=self.recorded_events + other.recorded_events,
            recorded_bytes=self.recorded_bytes + other.recorded_bytes,
        )

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by experiment reports)."""
        return {
            "total_windows": self.total_windows,
            "total_events": self.total_events,
            "total_bytes": self.total_bytes,
            "recorded_windows": self.recorded_windows,
            "recorded_events": self.recorded_events,
            "recorded_bytes": self.recorded_bytes,
            "reduction_factor": self.reduction_factor,
            "recorded_fraction": self.recorded_fraction,
        }


class SelectiveTraceRecorder:
    """Records only the windows the detector flagged (plus optional context).

    Parameters
    ----------
    context_windows:
        Number of non-anomalous windows recorded before and after each
        anomaly.
    output_path:
        Optional JSON-lines file the recorded events are persisted to.
    keep_events:
        Keep the recorded :class:`TraceWindow` objects in memory as well.
    io_buffer_bytes:
        Size of the write buffer; encoded windows are accumulated until the
        buffer holds at least this many bytes, then written in one call.
        ``0`` disables buffering (one write per recorded window).
    recording_format:
        ``"jsonl"`` (default) writes human-readable JSON lines;
        ``"binary"`` writes one self-describing
        :class:`~repro.trace.codec.BinaryTraceCodec` segment per recorded
        window — the segment *body* bytes equal the accounted
        ``window_bytes`` (fresh registry, deltas restarting per window),
        and the whole file round-trips through
        :func:`~repro.trace.reader.read_trace`.
    """

    def __init__(
        self,
        context_windows: int = 0,
        output_path: str | Path | None = None,
        keep_events: bool = False,
        io_buffer_bytes: int = DEFAULT_IO_BUFFER_BYTES,
        recording_format: str = "jsonl",
    ) -> None:
        if context_windows < 0:
            raise RecorderError("context_windows must be >= 0")
        if io_buffer_bytes < 0:
            raise RecorderError("io_buffer_bytes must be >= 0")
        if recording_format not in {"jsonl", "binary"}:
            raise RecorderError(
                f"unknown recording_format: {recording_format!r} "
                "(expected 'jsonl' or 'binary')"
            )
        self.context_windows = int(context_windows)
        self.keep_events = bool(keep_events)
        self.io_buffer_bytes = int(io_buffer_bytes)
        self.recording_format = recording_format
        self.output_path = Path(output_path) if output_path is not None else None
        self._codec = JsonTraceCodec()
        self._handle = None
        # Crash consistency: write to a ".partial" sibling and atomically
        # rename onto output_path only when close() completes, so a killed
        # process can never leave a truncated file under the final name.
        self._temp_path: Path | None = None
        if self.output_path is not None:
            self.output_path.parent.mkdir(parents=True, exist_ok=True)
            self._temp_path = partial_output_path(self.output_path)
            if recording_format == "binary":
                self._handle = self._temp_path.open("wb")
            else:
                self._handle = self._temp_path.open("w", encoding="utf-8")

        # Pre-context windows are buffered together with their encoded size,
        # so flushing them on an anomaly never re-encodes a window whose
        # size was already computed by observe().
        self._pre_context: Deque[tuple[TraceWindow, int]] = deque(
            maxlen=max(context_windows, 1)
        )
        self._post_context_remaining = 0
        self._recorded_indices: list[int] = []
        self._recorded_windows: list[TraceWindow] = []
        self._total_windows = 0
        self._total_events = 0
        self._total_bytes = 0
        self._recorded_events = 0
        self._recorded_bytes = 0
        # Holds encoded bytes blocks for the binary format, str for jsonl.
        self._write_buffer: list[bytes] | list[str] = []
        self._buffered_chars = 0
        self._n_io_writes = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # Feeding
    # ------------------------------------------------------------------ #
    def observe(
        self, window: TraceWindow, record: bool, window_bytes: int | None = None
    ) -> bool:
        """Account for ``window`` and record it if requested (or as context).

        ``window_bytes`` may be supplied by the caller when it already
        computed the encoded size (the monitor does), avoiding a second
        encoding pass.  Returns ``True`` when the window was written to
        storage.
        """
        if self._closed:
            raise RecorderError("recorder has already been closed")
        if window_bytes is None:
            window_bytes = encoded_trace_size(window.events)
        return self._observe_one(window, record, window_bytes)

    def observe_batch(
        self,
        windows: Sequence[TraceWindow] | Iterable[TraceWindow],
        record: Sequence[bool] | Iterable[bool],
        window_bytes: Sequence[int] | Iterable[int] | None = None,
    ) -> list[bool]:
        """Account for a batch of consecutive windows in one call.

        Semantically identical to calling :meth:`observe` per window in
        order (same context handling, same accounting, same recorded file
        contents); the batched entry point amortises the per-window call
        overhead and lets the write buffer coalesce the file IO of several
        recorded windows.  Returns one ``wrote`` flag per window.
        """
        if self._closed:
            raise RecorderError("recorder has already been closed")
        windows = list(windows)
        flags = [bool(flag) for flag in record]
        if len(flags) != len(windows):
            raise RecorderError(
                f"record flags length {len(flags)} does not match "
                f"window count {len(windows)}"
            )
        if window_bytes is None:
            sizes = [encoded_trace_size(window.events) for window in windows]
        else:
            sizes = [int(size) for size in window_bytes]
            if len(sizes) != len(windows):
                raise RecorderError(
                    f"window_bytes length {len(sizes)} does not match "
                    f"window count {len(windows)}"
                )
        observe_one = self._observe_one
        return [
            observe_one(window, flag, size)
            for window, flag, size in zip(windows, flags, sizes)
        ]

    def _observe_one(
        self, window: TraceWindow, record: bool, window_bytes: int
    ) -> bool:
        self._total_windows += 1
        self._total_events += len(window)
        self._total_bytes += window_bytes

        wrote = False
        if record:
            # Flush the pre-context first so the saved trace stays ordered.
            if self.context_windows > 0:
                while self._pre_context:
                    self._write(*self._pre_context.popleft())
            self._write(window, window_bytes)
            self._post_context_remaining = self.context_windows
            wrote = True
        elif self._post_context_remaining > 0:
            self._write(window, window_bytes)
            self._post_context_remaining -= 1
            wrote = True
        elif self.context_windows > 0:
            self._pre_context.append((window, window_bytes))
        return wrote

    def _write(self, window: TraceWindow, window_bytes: int) -> None:
        # The batched ingest plane hands over lazy window references; the
        # events are materialised here, i.e. only for windows actually
        # written (or kept) — accounting-only windows stay columnar.
        resolve = getattr(window, "resolve", None)
        if resolve is not None:
            window = resolve()
        self._recorded_indices.append(window.index)
        self._recorded_events += len(window)
        self._recorded_bytes += window_bytes
        if self.keep_events:
            self._recorded_windows.append(window)
        if self._handle is not None:
            if self.recording_format == "binary":
                # One self-describing segment per window: fresh registry,
                # deltas restarting at the window — the body bytes equal the
                # accounted window_bytes by construction.  Empty windows
                # write nothing, mirroring the JSON empty-block skip.
                block = (
                    BinaryTraceCodec().encode(window.events)
                    if window.events
                    else b""
                )
            else:
                block = self._codec.encode_events(window.events)
            if block:
                self._write_buffer.append(block)
                self._buffered_chars += len(block)
                if self._buffered_chars >= self.io_buffer_bytes:
                    self.flush()

    def flush(self) -> None:
        """Write the buffered encoded windows to the output file."""
        if self._handle is not None and self._write_buffer:
            fault_point("recorder.write")
            joiner = b"" if self.recording_format == "binary" else ""
            self._handle.write(joiner.join(self._write_buffer))
            self._n_io_writes += 1
        self._write_buffer = []
        self._buffered_chars = 0

    def __getstate__(self) -> dict:
        # Recorders hold an open file handle and mutable buffers; shipping
        # one across a process boundary can only corrupt the output file.
        # The parallel fleet creates recorders inside each worker instead.
        raise RecorderError(
            "SelectiveTraceRecorder is not picklable: recorders are "
            "worker-local (create one per process, next to its output file)"
        )

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (the output file is flushed shut)."""
        return self._closed

    @property
    def recorded_indices(self) -> list[int]:
        """Indices of every recorded window, in recording order."""
        return list(self._recorded_indices)

    @property
    def recorded_windows(self) -> list[TraceWindow]:
        """Recorded windows (only populated when ``keep_events`` is true)."""
        if not self.keep_events:
            raise RecorderError("recorder was created with keep_events=False")
        return list(self._recorded_windows)

    @property
    def io_write_count(self) -> int:
        """Number of write calls issued to the output file so far."""
        return self._n_io_writes

    def report(self) -> RecorderReport:
        """Return the size-accounting summary."""
        return RecorderReport(
            total_windows=self._total_windows,
            total_events=self._total_events,
            total_bytes=self._total_bytes,
            recorded_windows=len(self._recorded_indices),
            recorded_events=self._recorded_events,
            recorded_bytes=self._recorded_bytes,
        )

    def close(self) -> None:
        """Flush and close the output file (idempotent, exception-safe).

        The OS handle is released and the recorder marked closed even when
        the final flush fails mid-write; the flush error still propagates.
        Only a fully successful close commits the temp file onto
        ``output_path`` (atomic rename); after a failed close the
        ``.partial`` file is left behind for :meth:`discard` / the fleet's
        cleanup to remove, and the final name never appears.
        """
        handle = self._handle
        if handle is not None:
            try:
                self.flush()
            finally:
                self._handle = None
                self._closed = True
                handle.close()
            # Reached only when flush and the OS-level close both
            # succeeded: commit the finished file under its real name.
            if self._temp_path is not None and self.output_path is not None:
                os.replace(self._temp_path, self.output_path)
                self._temp_path = None
        self._closed = True

    def discard(self) -> None:
        """Close without committing: drop buffers, delete the temp file.

        Used when the shard this recorder serves failed — the output must
        not appear under its final name, and no half-written ``.partial``
        should linger.  Idempotent; never raises on a missing temp file.
        """
        handle = self._handle
        self._handle = None
        self._closed = True
        self._write_buffer = []
        self._buffered_chars = 0
        if handle is not None:
            handle.close()
        if self._temp_path is not None:
            self._temp_path.unlink(missing_ok=True)
            self._temp_path = None

    def __enter__(self) -> "SelectiveTraceRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class FullTraceRecorder:
    """Baseline recorder that keeps every window (what the paper compares to)."""

    def __init__(
        self,
        output_path: str | Path | None = None,
        io_buffer_bytes: int = DEFAULT_IO_BUFFER_BYTES,
        recording_format: str = "jsonl",
    ) -> None:
        self._inner = SelectiveTraceRecorder(
            output_path=output_path,
            io_buffer_bytes=io_buffer_bytes,
            recording_format=recording_format,
        )

    def observe(self, window: TraceWindow) -> bool:
        """Record ``window`` unconditionally."""
        return self._inner.observe(window, record=True)

    def observe_batch(
        self,
        windows: Sequence[TraceWindow] | Iterable[TraceWindow],
        window_bytes: Sequence[int] | Iterable[int] | None = None,
    ) -> list[bool]:
        """Record a batch of windows unconditionally."""
        windows = list(windows)
        return self._inner.observe_batch(
            windows, [True] * len(windows), window_bytes=window_bytes
        )

    def report(self) -> RecorderReport:
        """Size-accounting summary (recorded == total by construction)."""
        return self._inner.report()

    def close(self) -> None:
        """Close the underlying recorder."""
        self._inner.close()

    def __enter__(self) -> "FullTraceRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
