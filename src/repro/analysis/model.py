"""Reference behaviour model (the paper's learning step).

The model of correct behaviour is simply the set of pmf points obtained from
the windows of a reference trace ("the trace of the first few minutes of
application execution, during which the developer noticed no QoS errors"),
plus the fitted :class:`~repro.analysis.lof.LocalOutlierFactor` over those
points.  The model also remembers the average reference pmf, which seeds the
online detector's running past pmf.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from ..errors import ModelError, NotFittedError
from ..trace.batch import WindowBatch
from ..trace.event import EventTypeRegistry
from ..trace.window import TraceWindow
from .lof import LocalOutlierFactor
from .pmf import Pmf, pmf_matrix

__all__ = ["ReferenceModel"]


class ReferenceModel:
    """Model of correct behaviour learned from a reference trace.

    Parameters
    ----------
    k_neighbours:
        ``K`` used by the LOF computation.
    min_events_per_window:
        Reference windows with fewer events are skipped during learning: they
        correspond to start-up gaps and would pollute the model with
        near-empty pmfs.
    index_kind:
        Passed through to :class:`~repro.analysis.lof.LocalOutlierFactor`.
    """

    def __init__(
        self,
        k_neighbours: int = 20,
        min_events_per_window: int = 1,
        index_kind: str = "brute",
        deduplicate: bool = True,
    ) -> None:
        if min_events_per_window < 0:
            raise ModelError("min_events_per_window must be >= 0")
        self.k_neighbours = int(k_neighbours)
        self.min_events_per_window = int(min_events_per_window)
        self.index_kind = index_kind
        self.deduplicate = bool(deduplicate)
        self._type_names: tuple[str, ...] | None = None
        self._points: np.ndarray | None = None
        self._lof: LocalOutlierFactor | None = None
        self._mean_pmf_counts: np.ndarray | None = None
        self._n_windows_seen = 0
        self._n_windows_used = 0
        # registry id -> (registry ref, registry length, model-position ->
        # code map).  Keeping the registry reference pins its id() for the
        # cache key; storing only the newest map per registry (rebuilt when
        # the registry grows) bounds the cache at one entry per registry.
        self._projection_cache: dict[
            int, tuple[EventTypeRegistry, int, np.ndarray]
        ] = {}

    # ------------------------------------------------------------------ #
    # Pickling (worker handoff)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        """Pickle support for shipping a fitted model to worker processes.

        The projection cache is dropped: it is keyed by the ``id()`` of live
        registry objects, which is meaningless in another process (a new
        registry could even collide with a stale key and return the wrong
        projection map).  The cache is rebuilt lazily on first use, so an
        unpickled model scores bit-identically to the original.
        """
        state = self.__dict__.copy()
        state["_projection_cache"] = {}
        return state

    # ------------------------------------------------------------------ #
    # Learning
    # ------------------------------------------------------------------ #
    def learn(
        self, windows: Iterable[TraceWindow], registry: EventTypeRegistry
    ) -> "ReferenceModel":
        """Fit the model from reference windows.

        The registry is snapshotted at this point: the model's point space is
        the set of event types known when learning finishes.  Later windows
        containing new event types are still scorable — their extra mass
        simply falls outside the reference support, pushing them away from
        the reference points, which is the desired behaviour.

        Calling :meth:`learn` again on a fitted model routes the windows into
        :meth:`adapt` — the running index absorbs them incrementally instead
        of being refit from scratch.
        """
        if self.is_fitted:
            return self.adapt(windows, registry)
        usable: list[TraceWindow] = []
        for window in windows:
            self._n_windows_seen += 1
            if len(window) < max(self.min_events_per_window, 1):
                continue
            usable.append(window)
        if len(usable) <= self.k_neighbours:
            raise ModelError(
                "not enough usable reference windows "
                f"({len(usable)}) for K={self.k_neighbours}; use a longer reference trace"
            )
        self._n_windows_used = len(usable)
        # One vectorized pass: columnar batch -> counts matrix -> row-normalised
        # probability points, instead of one Pmf object per window.
        batch = WindowBatch.from_windows(usable, registry, keep_windows=False)
        self._type_names = registry.names
        counts_matrix = pmf_matrix(batch, registry)
        totals = counts_matrix.sum(axis=1)
        points = counts_matrix / totals[:, None]
        counts = counts_matrix.sum(axis=0) / len(usable)
        if self.deduplicate:
            # Exactly duplicated reference points make the LOF densities
            # degenerate (k-distance collapses to zero and every slightly
            # different query looks infinitely anomalous).  Very regular
            # applications do produce identical windows, so collapse exact
            # duplicates as long as enough distinct points remain for K.
            unique = np.unique(np.round(points, decimals=9), axis=0)
            if len(unique) > self.k_neighbours:
                points = unique
        self._points = points
        self._mean_pmf_counts = counts
        self._lof = LocalOutlierFactor(
            k_neighbours=self.k_neighbours, index_kind=self.index_kind
        ).fit(points)
        return self

    def adapt(
        self, windows: Iterable[TraceWindow], registry: EventTypeRegistry
    ) -> "ReferenceModel":
        """Absorb post-fit windows into the running model (online adaptation).

        The windows are projected onto the model's frozen point space (event
        types unknown to the model keep their mass outside the reference
        support, exactly as during scoring) and handed to the fitted index's
        incremental ``add_points`` path — no refit-and-redeploy.  Scoring
        after :meth:`adapt` is identical to a from-scratch fit over the
        combined point set.
        """
        self._require_fitted()
        assert self._points is not None and self._mean_pmf_counts is not None
        usable: list[TraceWindow] = []
        for window in windows:
            self._n_windows_seen += 1
            if len(window) < max(self.min_events_per_window, 1):
                continue
            usable.append(window)
        if not usable:
            return self
        batch = WindowBatch.from_windows(usable, registry, keep_windows=False)
        counts_matrix = pmf_matrix(batch, registry)
        totals = counts_matrix.sum(axis=1)
        probability_rows = counts_matrix / totals[:, None]
        vectors = self.vectors_for(probability_rows, registry)
        # Keep the seeded past pmf a running average over every window the
        # model has absorbed (projected onto the model space).
        new_counts = self.vectors_for(
            counts_matrix.sum(axis=0)[None, :] / len(usable), registry
        )[0]
        n_old = self._n_windows_used
        self._mean_pmf_counts = (
            self._mean_pmf_counts * n_old + new_counts * len(usable)
        ) / (n_old + len(usable))
        self._n_windows_used = n_old + len(usable)
        if self.deduplicate:
            # Mirror the learning-time deduplication: collapse duplicates
            # within the batch and drop points already in the reference set.
            vectors = np.unique(np.round(vectors, decimals=9), axis=0)
            existing = {row.tobytes() for row in np.round(self._points, decimals=9)}
            keep = [row for row in vectors if row.tobytes() not in existing]
            if not keep:
                return self
            vectors = np.asarray(keep)
        assert self._lof is not None
        self._lof.partial_fit(vectors)
        self._points = np.vstack([self._points, vectors])
        return self

    def reindex(self, index_kind: str) -> "ReferenceModel":
        """Swap the fitted model onto a different k-NN backend.

        Every backend is exact and bit-identical, so this changes only the
        speed profile.  No-op when the requested kind is already in use.
        """
        self._require_fitted()
        if index_kind == self.index_kind:
            return self
        assert self._points is not None
        self.index_kind = index_kind
        self._lof = LocalOutlierFactor(
            k_neighbours=self.k_neighbours, index_kind=index_kind
        ).fit(self._points)
        return self

    def fingerprint(self) -> dict:
        """Identity of the fitted model: dims, point count, registry hash.

        Stored in the reference-database catalogue and checked on load, so a
        stale catalogue entry fails loudly instead of silently scoring with
        the wrong model.
        """
        self._require_fitted()
        assert self._points is not None and self._type_names is not None
        registry_hash = hashlib.sha256(
            "\x00".join(self._type_names).encode("utf-8")
        ).hexdigest()[:16]
        return {
            "dimension": self.dimension,
            "n_points": int(len(self._points)),
            "type_registry_hash": registry_hash,
        }

    @classmethod
    def from_points(
        cls,
        points: np.ndarray,
        type_names: Sequence[str],
        k_neighbours: int = 20,
        index_kind: str = "brute",
    ) -> "ReferenceModel":
        """Build a model directly from pmf vectors (used by the reference DB).

        .. note::
           ``points`` are probability vectors, so the stored mean "counts"
           are really the mean reference *probabilities* (they sum to ~1
           instead of to a window's event count).  That is fine for every
           consumer — :meth:`mean_reference_pmf` feeds them into a
           :class:`~repro.analysis.pmf.Pmf`, which only ever uses the
           normalised form — but it does mean the seeded past pmf carries a
           nominal total of ~1 event rather than a realistic window total.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != len(type_names):
            raise ModelError(
                "points shape does not match the number of event-type names"
            )
        model = cls(k_neighbours=k_neighbours, index_kind=index_kind)
        model._type_names = tuple(str(name) for name in type_names)
        model._points = points
        model._mean_pmf_counts = points.mean(axis=0)
        model._n_windows_used = len(points)
        model._n_windows_seen = len(points)
        model._lof = LocalOutlierFactor(
            k_neighbours=k_neighbours, index_kind=index_kind
        ).fit(points)
        return model

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`learn` (or :meth:`from_points`) has run."""
        return self._lof is not None

    def _require_fitted(self) -> LocalOutlierFactor:
        if self._lof is None or self._points is None or self._type_names is None:
            raise NotFittedError("ReferenceModel used before learn()")
        return self._lof

    @property
    def n_reference_windows(self) -> int:
        """Number of windows actually used to build the model."""
        self._require_fitted()
        return self._n_windows_used

    @property
    def n_windows_seen(self) -> int:
        """Number of windows offered during learning (including skipped ones)."""
        return self._n_windows_seen

    @property
    def type_names(self) -> tuple[str, ...]:
        """Event-type names defining the model's point space."""
        self._require_fitted()
        assert self._type_names is not None
        return self._type_names

    @property
    def dimension(self) -> int:
        """Dimensionality of the model's point space."""
        return len(self.type_names)

    @property
    def points(self) -> np.ndarray:
        """The reference pmf vectors (copy)."""
        self._require_fitted()
        assert self._points is not None
        return self._points.copy()

    def mean_reference_pmf(self, registry: EventTypeRegistry) -> Pmf:
        """Average reference pmf, expressed against ``registry``.

        This is what seeds the detector's running past pmf at start-up.
        """
        self._require_fitted()
        assert self._mean_pmf_counts is not None and self._type_names is not None
        for name in self._type_names:
            registry.register(name)
        counts = np.zeros(len(registry))
        for name, value in zip(self._type_names, self._mean_pmf_counts):
            counts[registry.code(name)] = value
        return Pmf(counts, registry)

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def _projection_codes(self, registry: EventTypeRegistry) -> np.ndarray:
        """Registry code of each model type name (-1 when unknown), cached.

        The map only depends on the registry contents, which change solely by
        appending, so it is cached per (registry, length) and rebuilt when
        the registry grows.
        """
        assert self._type_names is not None
        cached = self._projection_cache.get(id(registry))
        if cached is not None and cached[1] == len(registry):
            return cached[2]
        codes = np.fromiter(
            (
                registry.code(name) if name in registry else -1
                for name in self._type_names
            ),
            dtype=np.int64,
            count=len(self._type_names),
        )
        self._projection_cache[id(registry)] = (registry, len(registry), codes)
        return codes

    def vector_for(self, pmf: Pmf) -> np.ndarray:
        """Project ``pmf`` onto the model's point space.

        Mass carried by event types unknown to the model is *not*
        redistributed: the projected vector then sums to less than one, which
        places it away from every reference point — new event types are by
        definition suspicious.
        """
        self._require_fitted()
        probabilities = pmf.probabilities()
        codes = self._projection_codes(pmf.registry)
        usable = (codes >= 0) & (codes < len(probabilities))
        vector = np.zeros(self.dimension)
        vector[usable] = probabilities[codes[usable]]
        return vector

    def vectors_for(
        self, probability_rows: np.ndarray, registry: EventTypeRegistry
    ) -> np.ndarray:
        """Project a matrix of probability rows onto the model's point space.

        Batched :meth:`vector_for`: ``probability_rows`` holds one window's
        probability vector per row, expressed against ``registry``; the
        result has one model-space point per row, produced by a single
        fancy-indexing gather (no per-name dict lookups).
        """
        self._require_fitted()
        rows = np.atleast_2d(np.asarray(probability_rows, dtype=float))
        codes = self._projection_codes(registry)
        usable = (codes >= 0) & (codes < rows.shape[1])
        vectors = np.zeros((len(rows), self.dimension))
        vectors[:, usable] = rows[:, codes[usable]]
        return vectors

    def lof_score(self, pmf: Pmf) -> float:
        """LOF score of a window pmf against the reference model."""
        lof = self._require_fitted()
        return lof.score(self.vector_for(pmf))

    def score_vectors(self, vectors: np.ndarray) -> np.ndarray:
        """Batched LOF scores of already-projected model-space points."""
        return self._require_fitted().score_many(vectors)

    def is_anomalous(self, pmf: Pmf, alpha: float) -> bool:
        """Whether the window pmf exceeds the LOF threshold ``alpha``."""
        return self.lof_score(pmf) >= alpha

    def training_scores(self) -> np.ndarray:
        """LOF scores of the reference windows themselves (diagnostics)."""
        return self._require_fitted().training_scores

    def suggest_alpha(self, quantile: float = 0.995) -> float:
        """Suggest an ``alpha`` from the distribution of training scores."""
        return max(1.0, self._require_fitted().threshold_for_quantile(quantile))

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path, include_index: bool = True) -> Path:
        """Save the model (point set + metadata) to ``path`` as ``.npz``.

        With ``include_index`` (the default) the fitted LOF — including its
        built k-NN index — is pickled into the archive, so :meth:`load` can
        restore the model without re-running the index build.  Pass
        ``include_index=False`` for a smaller, pickle-free file; loading then
        refits from the stored points (bit-identical scores either way).
        """
        self._require_fitted()
        assert self._points is not None and self._mean_pmf_counts is not None
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        metadata = {
            "k_neighbours": self.k_neighbours,
            "index_kind": self.index_kind,
            "type_names": list(self.type_names),
            "n_windows_seen": self._n_windows_seen,
            "n_windows_used": self._n_windows_used,
        }
        arrays: dict[str, np.ndarray] = {
            "points": self._points,
            "mean_counts": self._mean_pmf_counts,
            "metadata": np.frombuffer(
                json.dumps(metadata).encode("utf-8"), dtype=np.uint8
            ),
        }
        if include_index:
            arrays["lof_state"] = np.frombuffer(
                pickle.dumps(self._lof), dtype=np.uint8
            )
        np.savez_compressed(path, **arrays)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ReferenceModel":
        """Load a model previously written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise ModelError(f"reference model file does not exist: {path}")
        with np.load(path) as data:
            try:
                metadata = json.loads(bytes(data["metadata"]).decode("utf-8"))
                points = np.asarray(data["points"], dtype=float)
                mean_counts = np.asarray(data["mean_counts"], dtype=float)
                lof_blob = bytes(data["lof_state"]) if "lof_state" in data else None
            except (KeyError, json.JSONDecodeError) as exc:
                raise ModelError(f"malformed reference model file: {path}") from exc
        if lof_blob is not None:
            try:
                lof = pickle.loads(lof_blob)
            except Exception as exc:
                raise ModelError(
                    f"malformed fitted-index payload in model file: {path}"
                ) from exc
            if not isinstance(lof, LocalOutlierFactor) or not lof.is_fitted:
                raise ModelError(
                    f"model file {path} does not hold a fitted LOF index"
                )
            model = cls(
                k_neighbours=int(metadata["k_neighbours"]),
                index_kind=str(metadata.get("index_kind", "brute")),
            )
            model._type_names = tuple(
                str(name) for name in metadata["type_names"]
            )
            model._points = points
            model._lof = lof
        else:
            model = cls.from_points(
                points,
                metadata["type_names"],
                k_neighbours=int(metadata["k_neighbours"]),
                index_kind=str(metadata.get("index_kind", "brute")),
            )
        model._mean_pmf_counts = mean_counts
        model._n_windows_seen = int(metadata.get("n_windows_seen", len(points)))
        model._n_windows_used = int(metadata.get("n_windows_used", len(points)))
        return model
